//! Saturation-validated quantized construction: the margin re-probe loop.
//!
//! One-shot calibration ([`crate::CalibrationMode::OneShot`]) chooses
//! activation formats from a seeded probe set scaled by
//! `QuantConfig::probe_margin`. That margin is a bet: inputs the probes
//! never saw may still overflow the chosen formats, and the only honest
//! check is to *measure* saturation on a **distinct** validation probe set
//! (different seed than calibration, so the engine is never graded on its
//! own training data). [`quantize_with_reprobe`] closes the loop: build
//! the engine at the requested margin, measure the live
//! `QMatmulReport::saturation_rate` over the validation set, and — on
//! drift above the acceptance threshold — rebuild with a widened margin,
//! up to a bounded ladder. Every attempt is logged in the returned
//! [`ReprobeReport`], so deployment plans record the margin that actually
//! shipped, not the one that was asked for.
//!
//! Widening trades LSB precision for headroom (one widening step costs
//! `log2(widen_factor)` bits of the 16-bit depth), so the loop stops at
//! the **first** margin that passes — tightest format that is clean under
//! validation.

use crate::accelerator::probe_vectors;
use crate::config::QuantConfig;
use crate::qengine::QuantizedEngine;
use tie_core::Activation;
use tie_quant::QMatmulReport;
use tie_tensor::{Result, TensorError};
use tie_tt::TtMatrix;

/// Knobs of the validation/re-probe loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReprobeConfig {
    /// Seed of the validation probe set. Must differ from the calibration
    /// `probe_seed` — [`quantize_with_reprobe`] rejects a collision.
    pub validation_seed: u64,
    /// Validation vectors traced per attempt.
    pub validation_count: usize,
    /// Max-abs of validation probe components. Push it **above** the
    /// calibration `probe_amplitude` to model inputs hotter than the
    /// calibration data.
    pub validation_amplitude: f64,
    /// Acceptable measured saturation rate (events per output element).
    /// 0.0 demands a fully clean validation pass.
    pub max_saturation_rate: f64,
    /// Multiplier applied to the margin on each failed attempt (> 1).
    pub widen_factor: f64,
    /// Re-probe attempts after the first (bounds the ladder; the final
    /// attempt's engine is returned even if it still drifts).
    pub max_widenings: usize,
}

impl Default for ReprobeConfig {
    fn default() -> Self {
        ReprobeConfig {
            validation_seed: 0x7a11_da7e,
            validation_count: 8,
            validation_amplitude: 1.0,
            max_saturation_rate: 0.0,
            widen_factor: 1.6,
            max_widenings: 4,
        }
    }
}

/// One attempt of the re-probe ladder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReprobeAttempt {
    /// Margin the engine was calibrated with.
    pub margin: f64,
    /// Measured saturation rate over the validation set.
    pub saturation_rate: f64,
    /// The raw saturation counters behind the rate.
    pub report: QMatmulReport,
}

/// The audit trail of one [`quantize_with_reprobe`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct ReprobeReport {
    /// Every attempt, in ladder order (first entry = requested margin).
    pub attempts: Vec<ReprobeAttempt>,
}

impl ReprobeReport {
    /// The attempt whose engine was returned (always the last).
    #[must_use]
    pub fn accepted(&self) -> &ReprobeAttempt {
        self.attempts
            .last()
            .expect("at least one attempt always runs")
    }

    /// Margin of the shipped engine.
    #[must_use]
    pub fn final_margin(&self) -> f64 {
        self.accepted().margin
    }

    /// Measured saturation rate of the shipped engine.
    #[must_use]
    pub fn final_rate(&self) -> f64 {
        self.accepted().saturation_rate
    }

    /// True when the requested margin drifted and had to be widened.
    #[must_use]
    pub fn widened(&self) -> bool {
        self.attempts.len() > 1
    }

    /// True when even the last ladder step still exceeded the threshold
    /// (the caller may want to fall back to the float backend).
    #[must_use]
    pub fn exhausted(&self, cfg: &ReprobeConfig) -> bool {
        self.final_rate() > cfg.max_saturation_rate
    }
}

/// Measures the engine's saturation rate over a seeded validation set
/// run as one batch (batching is bit-identical to per-sample runs under
/// one-shot calibration).
fn validation_rate(engine: &QuantizedEngine, cfg: &ReprobeConfig) -> Result<QMatmulReport> {
    let n = engine.num_cols();
    let b = cfg.validation_count;
    let probes = probe_vectors(cfg.validation_seed, b, n, cfg.validation_amplitude)?;
    // Row-major N × b, batch inner-most.
    let mut xs = vec![0.0f64; n * b];
    for (s, p) in probes.iter().enumerate() {
        for (i, &v) in p.data().iter().enumerate() {
            xs[i * b + s] = v;
        }
    }
    let mut ys = vec![0.0f64; engine.num_rows() * b];
    engine.matvec_batch_into(&xs, b, &mut ys)
}

/// Builds a [`QuantizedEngine`] whose one-shot calibration is validated
/// against live saturation measurement, widening the probe margin on
/// drift. See the module docs for the loop contract.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] for a degenerate
/// [`ReprobeConfig`] (no probes, non-positive threshold geometry,
/// `widen_factor ≤ 1`, or a validation seed equal to the calibration
/// seed), and propagates construction/execution errors.
pub fn quantize_with_reprobe(
    matrix: &TtMatrix<f64>,
    quant: QuantConfig,
    activation: Activation,
    cfg: &ReprobeConfig,
) -> Result<(QuantizedEngine, ReprobeReport)> {
    if cfg.validation_count == 0 {
        return Err(TensorError::InvalidArgument {
            message: "re-probe needs at least one validation vector".into(),
        });
    }
    if cfg.validation_seed == quant.probe_seed {
        return Err(TensorError::InvalidArgument {
            message: "validation probes must use a different seed than calibration".into(),
        });
    }
    if !(cfg.widen_factor > 1.0 && cfg.widen_factor.is_finite()) {
        return Err(TensorError::InvalidArgument {
            message: format!("widen_factor must exceed 1, got {}", cfg.widen_factor),
        });
    }
    if cfg.max_saturation_rate.is_nan() || cfg.max_saturation_rate < 0.0 {
        return Err(TensorError::InvalidArgument {
            message: "max_saturation_rate must be non-negative".into(),
        });
    }

    let mut margin = quant.probe_margin;
    let mut attempts = Vec::with_capacity(1 + cfg.max_widenings);
    loop {
        let engine = QuantizedEngine::new(matrix.clone(), quant.with_probe_margin(margin))?
            .with_activation(activation);
        let report = validation_rate(&engine, cfg)?;
        let rate = report.saturation_rate();
        attempts.push(ReprobeAttempt {
            margin,
            saturation_rate: rate,
            report,
        });
        if rate <= cfg.max_saturation_rate || attempts.len() > cfg.max_widenings {
            return Ok((engine, ReprobeReport { attempts }));
        }
        margin *= cfg.widen_factor;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use tie_tt::TtShape;

    fn layer() -> TtMatrix<f64> {
        let shape = TtShape::uniform_rank(vec![4, 4], vec![4, 4], 3).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        TtMatrix::random(&mut rng, &shape, 0.7).unwrap()
    }

    #[test]
    fn clean_margin_passes_first_try() {
        let (_, report) = quantize_with_reprobe(
            &layer(),
            QuantConfig::default(),
            Activation::Identity,
            &ReprobeConfig::default(),
        )
        .unwrap();
        assert!(!report.widened(), "default margin should validate clean");
        assert_eq!(report.final_rate(), 0.0);
        assert_eq!(report.final_margin(), QuantConfig::default().probe_margin);
    }

    #[test]
    fn tight_margin_triggers_widening() {
        // Calibrate at amplitude 0.05 but validate at 1.0: the formats are
        // chosen for tiny probes, so hot validation inputs must saturate
        // until the ladder widens the margin enough to cover them.
        let quant = QuantConfig {
            probe_amplitude: 0.05,
            probe_margin: 1.0,
            ..QuantConfig::default()
        };
        let cfg = ReprobeConfig {
            widen_factor: 2.0,
            max_widenings: 8,
            ..ReprobeConfig::default()
        };
        let (engine, report) =
            quantize_with_reprobe(&layer(), quant, Activation::Identity, &cfg).unwrap();
        assert!(report.widened(), "drift must trigger a re-probe");
        assert!(report.attempts[0].saturation_rate > 0.0);
        assert!(!report.exhausted(&cfg), "ladder should recover: {report:?}");
        assert!(report.final_margin() > 1.0);
        // The shipped engine really is the validated one.
        let live = validation_rate(&engine, &cfg).unwrap();
        assert_eq!(live.saturation_rate(), report.final_rate());
    }

    #[test]
    fn ladder_is_bounded() {
        let quant = QuantConfig {
            probe_amplitude: 1e-6,
            probe_margin: 1.0,
            ..QuantConfig::default()
        };
        let cfg = ReprobeConfig {
            widen_factor: 1.01, // far too timid to ever recover
            max_widenings: 3,
            ..ReprobeConfig::default()
        };
        let (_, report) =
            quantize_with_reprobe(&layer(), quant, Activation::Identity, &cfg).unwrap();
        assert_eq!(report.attempts.len(), cfg.max_widenings + 1);
        assert!(report.exhausted(&cfg));
    }

    #[test]
    fn rejects_degenerate_configs() {
        let q = QuantConfig::default();
        let base = ReprobeConfig::default();
        for bad in [
            ReprobeConfig {
                validation_count: 0,
                ..base
            },
            ReprobeConfig {
                validation_seed: q.probe_seed,
                ..base
            },
            ReprobeConfig {
                widen_factor: 1.0,
                ..base
            },
            ReprobeConfig {
                max_saturation_rate: -0.5,
                ..base
            },
        ] {
            assert!(quantize_with_reprobe(&layer(), q, Activation::Identity, &bad).is_err());
        }
    }
}
