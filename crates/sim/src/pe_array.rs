//! The PE array datapath (paper Fig. 7).
//!
//! Every cycle, one column of the unfolded core `G̃_h` is broadcast to all
//! PEs (each MAC unit `i` receives element `i` of the column), while each
//! PE `j` receives one element of the current `V'_{h+1}` row tile. After
//! `N_Gcol` cycles an `N_MAC × N_PE` block of `V_h = G̃_h · V'_{h+1}` is
//! complete in the PE registers and is written back.

use tie_quant::Accumulator;

/// Outcome of one stage executed on the PE array.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageOutcome {
    /// Cycles consumed (including input-gather conflict serialization).
    pub cycles: u64,
    /// Real MAC operations performed (padding lanes excluded).
    pub macs: u64,
    /// Accumulator (24-bit) saturation events.
    pub acc_saturations: u64,
    /// Output (16-bit requantization) saturation events.
    pub out_saturations: u64,
}

/// The `N_PE × N_MAC` MAC array.
#[derive(Debug, Clone, Copy)]
pub struct PeArray {
    n_pe: usize,
    n_mac: usize,
}

impl PeArray {
    /// Array of `n_pe` PEs with `n_mac` MAC units each.
    pub fn new(n_pe: usize, n_mac: usize) -> Self {
        PeArray { n_pe, n_mac }
    }

    /// PE count.
    pub fn n_pe(&self) -> usize {
        self.n_pe
    }

    /// MAC units per PE.
    pub fn n_mac(&self) -> usize {
        self.n_mac
    }

    /// Executes one stage `V_h = G̃_h · V'_{h+1}` on the array.
    ///
    /// * `read_weights(row_tile, col)` returns the `N_MAC`-wide weight
    ///   word (zero-padded past the matrix edge),
    /// * `read_acts(gcol, pe_tile)` returns the `N_PE` elements of
    ///   `V'_{h+1}[gcol, pe_tile·N_PE ..]` (zero-padded) plus the physical
    ///   cycles the gather took (1 when conflict-free),
    /// * `write_block(row_tile, pe_tile, block)` receives the finished
    ///   `N_MAC × N_PE` block (row-major `block[i][j]`, padding lanes
    ///   included as zeros),
    /// * `prod_shift` / `out_shift` set the fixed-point alignment (see
    ///   `tie_quant::qmatmul` for the convention).
    ///
    /// Returns the stage outcome; the schedule is
    /// `for row_tile { for pe_tile { N_Gcol cycles (+ pass_overhead);
    /// writeback } }` with write-back overlapped with the next pass (no
    /// cycle cost, traffic counted by the caller). `pass_overhead`
    /// models pipeline fill/drain per pass (0 = the paper's idealized
    /// steady state).
    #[allow(clippy::too_many_arguments)]
    #[allow(clippy::type_complexity)] // the callbacks model SRAM ports: (codes, conflict cycles)
    pub fn run_stage(
        &self,
        gtilde_rows: usize,
        gtilde_cols: usize,
        v_cols: usize,
        read_weights: &mut dyn FnMut(usize, usize) -> Vec<i16>,
        read_acts: &mut dyn FnMut(usize, usize) -> (Vec<i16>, u64),
        write_block: &mut dyn FnMut(usize, usize, &[Vec<i16>]),
        prod_shift: u32,
        out_shift: u32,
        pass_overhead: u64,
    ) -> StageOutcome {
        let row_tiles = gtilde_rows.div_ceil(self.n_mac);
        let pe_tiles = v_cols.div_ceil(self.n_pe);
        let mut outcome = StageOutcome::default();
        for rt in 0..row_tiles {
            let live_rows = (gtilde_rows - rt * self.n_mac).min(self.n_mac);
            for pt in 0..pe_tiles {
                outcome.cycles += pass_overhead;
                let live_cols = (v_cols - pt * self.n_pe).min(self.n_pe);
                let mut accs = vec![vec![Accumulator::new(prod_shift); self.n_pe]; self.n_mac];
                for gcol in 0..gtilde_cols {
                    let w = read_weights(rt, gcol);
                    debug_assert_eq!(w.len(), self.n_mac);
                    let (a, gather_cycles) = read_acts(gcol, pt);
                    debug_assert_eq!(a.len(), self.n_pe);
                    for (i, &wi) in w.iter().enumerate() {
                        for (j, &aj) in a.iter().enumerate() {
                            accs[i][j].mac(wi, aj);
                        }
                    }
                    outcome.cycles += gather_cycles;
                    outcome.macs += (live_rows * live_cols) as u64;
                }
                // Drain: requantize and hand the block to the writer.
                let mut block = vec![vec![0i16; self.n_pe]; self.n_mac];
                for i in 0..live_rows {
                    for j in 0..live_cols {
                        if accs[i][j].saturated() {
                            outcome.acc_saturations += 1;
                        }
                        let (v, sat) = accs[i][j].to_i16(out_shift);
                        if sat {
                            outcome.out_saturations += 1;
                        }
                        block[i][j] = v;
                    }
                }
                write_block(rt, pt, &block);
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs a stage with in-memory matrices and no conflicts.
    fn run_simple(
        pe: &PeArray,
        g: &[Vec<i16>], // rows × cols
        v: &[Vec<i16>], // cols × w
    ) -> (Vec<Vec<i32>>, StageOutcome) {
        let rows = g.len();
        let cols = g[0].len();
        let w = v[0].len();
        let mut out = vec![vec![0i32; w]; rows];
        let outcome = {
            let out_ref = &mut out;
            pe.run_stage(
                rows,
                cols,
                w,
                &mut |rt, c| {
                    (0..pe.n_mac())
                        .map(|i| {
                            let r = rt * pe.n_mac() + i;
                            if r < rows {
                                g[r][c]
                            } else {
                                0
                            }
                        })
                        .collect()
                },
                &mut |gcol, pt| {
                    (
                        (0..pe.n_pe())
                            .map(|j| {
                                let c = pt * pe.n_pe() + j;
                                if c < w {
                                    v[gcol][c]
                                } else {
                                    0
                                }
                            })
                            .collect(),
                        1,
                    )
                },
                &mut |rt, pt, block| {
                    for (i, row) in block.iter().enumerate() {
                        for (j, &val) in row.iter().enumerate() {
                            let (r, c) = (rt * pe.n_mac() + i, pt * pe.n_pe() + j);
                            if r < rows && c < w {
                                out_ref[r][c] = val as i32;
                            }
                        }
                    }
                },
                0,
                0,
                0,
            )
        };
        (out, outcome)
    }

    #[test]
    fn computes_integer_matmul_exactly() {
        let pe = PeArray::new(2, 3);
        let g = vec![vec![1i16, 2], vec![3, 4], vec![-1, 0], vec![2, -2]];
        let v = vec![vec![1i16, 0, 2], vec![-1, 1, 1]];
        let (out, outcome) = run_simple(&pe, &g, &v);
        // Expected G·V.
        let want = [[-1, 2, 4], [-1, 4, 10], [-1, 0, -2], [4, -2, 2]];
        for r in 0..4 {
            for c in 0..3 {
                assert_eq!(out[r][c], want[r][c], "({r},{c})");
            }
        }
        // Tiling: rows 4 -> 2 tiles of 3?? n_mac=3 -> 2 tiles; cols 3 -> 2 pe tiles.
        // cycles = 2*2*2 (gtilde_cols = 2) = 8.
        assert_eq!(outcome.cycles, 8);
        // real macs: per gcol, live_rows*live_cols summed over tiles:
        // tiles (3,2),(3,1),(1,2),(1,1) → (6+3+2+1) per gcol × 2 = 24.
        assert_eq!(outcome.macs, 24);
    }

    #[test]
    fn cycle_count_matches_tiling_formula() {
        let pe = PeArray::new(16, 16);
        let (rows, cols, w) = (20usize, 7usize, 33usize);
        let g = vec![vec![1i16; cols]; rows];
        let v = vec![vec![1i16; w]; cols];
        let (_, outcome) = run_simple(&pe, &g, &v);
        let expect = (rows.div_ceil(16) * w.div_ceil(16) * cols) as u64;
        assert_eq!(outcome.cycles, expect);
    }

    #[test]
    fn gather_conflicts_add_cycles() {
        let pe = PeArray::new(2, 2);
        let g = vec![vec![1i16]; 2];
        let v = vec![vec![1i16, 1]];
        let mut out = vec![vec![0i32; 2]; 2];
        let outcome = pe.run_stage(
            2,
            1,
            2,
            &mut |_, _| vec![1, 1],
            &mut |_, _| (vec![1, 1], 3), // pretend every gather takes 3 cycles
            &mut |_, _, block| {
                for (i, row) in block.iter().enumerate() {
                    for (j, &val) in row.iter().enumerate() {
                        out[i][j] = val as i32;
                    }
                }
            },
            0,
            0,
            0,
        );
        assert_eq!(outcome.cycles, 3);
        let _ = g;
        let _ = v;
    }

    #[test]
    fn saturation_events_are_counted() {
        let pe = PeArray::new(1, 1);
        // 30000*30000 > 24-bit: accumulator saturates, then i16 output too.
        let g = vec![vec![30000i16]];
        let v = vec![vec![30000i16]];
        let (_, outcome) = run_simple(&pe, &g, &v);
        assert_eq!(outcome.acc_saturations, 1);
        assert_eq!(outcome.out_saturations, 1);
    }
}
