//! Execution statistics reported by the simulator.

use serde::Serialize;

/// Per-stage execution statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct StageStats {
    /// 1-based stage index `h` (core processed at this stage).
    pub h: usize,
    /// Cycles spent, including serialized bank-conflict cycles.
    pub cycles: u64,
    /// Real multiply-accumulate operations (excludes padding lanes).
    pub macs: u64,
    /// Weight SRAM word reads (each `N_MAC` elements).
    pub weight_word_reads: u64,
    /// Working SRAM element reads.
    pub act_reads: u64,
    /// Working SRAM word writes.
    pub act_writes: u64,
    /// Extra cycles lost to working-SRAM bank conflicts.
    pub conflict_cycles: u64,
    /// Outputs whose 24-bit accumulator saturated.
    pub acc_saturations: u64,
    /// Outputs that saturated at 16-bit requantization.
    pub out_saturations: u64,
}

/// Whole-run statistics of one layer inference on TIE.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct RunStats {
    /// Per-stage breakdown, in execution order (`h = d` first).
    pub stages: Vec<StageStats>,
}

impl RunStats {
    /// Total cycles.
    pub fn cycles(&self) -> u64 {
        self.stages.iter().map(|s| s.cycles).sum()
    }

    /// Total real MAC operations.
    pub fn macs(&self) -> u64 {
        self.stages.iter().map(|s| s.macs).sum()
    }

    /// Total weight SRAM word reads.
    pub fn weight_word_reads(&self) -> u64 {
        self.stages.iter().map(|s| s.weight_word_reads).sum()
    }

    /// Total working SRAM element reads.
    pub fn act_reads(&self) -> u64 {
        self.stages.iter().map(|s| s.act_reads).sum()
    }

    /// Total working SRAM word writes.
    pub fn act_writes(&self) -> u64 {
        self.stages.iter().map(|s| s.act_writes).sum()
    }

    /// Total saturation events (accumulator + output).
    pub fn saturations(&self) -> u64 {
        self.stages
            .iter()
            .map(|s| s.acc_saturations + s.out_saturations)
            .sum()
    }

    /// MAC-array utilization: real MACs over `cycles × N_PE × N_MAC`.
    pub fn utilization(&self, n_pe: usize, n_mac: usize) -> f64 {
        let peak = self.cycles() as f64 * (n_pe * n_mac) as f64;
        if peak == 0.0 {
            0.0
        } else {
            self.macs() as f64 / peak
        }
    }

    /// Latency in seconds at `freq_mhz`.
    pub fn latency_seconds(&self, freq_mhz: f64) -> f64 {
        self.cycles() as f64 / (freq_mhz * 1e6)
    }

    /// Dense-equivalent throughput in ops/s: `2·M·N / latency` — the
    /// convention the paper (and EIE / CirCNN) use for "equivalent TOPS".
    pub fn equivalent_ops_per_sec(&self, dense_ops: u64, freq_mhz: f64) -> f64 {
        dense_ops as f64 / self.latency_seconds(freq_mhz)
    }

    /// Cycle model of the same run executed as a stage pipeline under
    /// `cut` with `chunks` streamed micro-batch chunks: fill latency (one
    /// chunk crossing every pipeline stage) plus steady-state drain at the
    /// bottleneck stage's rate. Chunk scale-down is exact because every
    /// per-stage cycle term in the Fig. 7 model is linear in the column
    /// count; with `depth == 1` or `chunks == 1` this degenerates to
    /// [`RunStats::cycles`].
    pub fn pipelined_cycles(&self, cut: &tie_core::pipeline::CutPlan, chunks: u64) -> u64 {
        if chunks == 0 {
            return 0;
        }
        let bottleneck = cut
            .runs()
            .iter()
            .map(|r| {
                self.stages[r.lo..r.hi]
                    .iter()
                    .map(|s| s.cycles)
                    .sum::<u64>()
            })
            .max()
            .unwrap_or(0);
        // fill/chunks + (chunks-1)·bottleneck/chunks, in one exact ceil:
        // one chunk crosses every stage, the remaining chunks drain at the
        // bottleneck stage's per-chunk rate.
        (self.cycles() + (chunks - 1) * bottleneck).div_ceil(chunks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage(h: usize, cycles: u64, macs: u64) -> StageStats {
        StageStats {
            h,
            cycles,
            macs,
            weight_word_reads: cycles,
            act_reads: cycles * 16,
            act_writes: 16,
            conflict_cycles: 0,
            acc_saturations: 0,
            out_saturations: 1,
        }
    }

    #[test]
    fn totals_sum_stages() {
        let r = RunStats {
            stages: vec![stage(2, 100, 1000), stage(1, 50, 600)],
        };
        assert_eq!(r.cycles(), 150);
        assert_eq!(r.macs(), 1600);
        assert_eq!(r.weight_word_reads(), 150);
        assert_eq!(r.act_reads(), 2400);
        assert_eq!(r.act_writes(), 32);
        assert_eq!(r.saturations(), 2);
    }

    #[test]
    fn utilization_and_latency() {
        let r = RunStats {
            stages: vec![stage(1, 100, 12800)],
        };
        // 12800 MACs over 100 cycles × 256 lanes = 0.5
        assert!((r.utilization(16, 16) - 0.5).abs() < 1e-12);
        assert!((r.latency_seconds(1000.0) - 1e-7).abs() < 1e-18);
        // equivalent throughput: dense_ops / latency
        assert!((r.equivalent_ops_per_sec(1000, 1000.0) - 1e10).abs() < 1.0);
    }

    #[test]
    fn empty_stats_are_zero() {
        let r = RunStats::default();
        assert_eq!(r.cycles(), 0);
        assert_eq!(r.utilization(16, 16), 0.0);
    }
}
