//! Per-layer design-space autotuning of deployment plans.
//!
//! `compile_table4` ships the paper's hand-picked Table 4 settings; this
//! module *searches* instead. For one [`LayerSpec`] the tuner walks a
//! [`SearchSpace`] of candidate TT layouts (divisor-based mode splits of
//! the in/out dims via [`crate::factorize`]), rank budgets, SVD routes,
//! serving batch widths, pipeline cut depths/micro-batches, and quant
//! calibration margins, and emits the winning knobs as a serializable
//! [`DeploymentPlan`] the serving registry loads directly
//! (`EngineRegistry::insert_from_plan`).
//!
//! The search runs in three phases:
//!
//! 1. **Analytic enumeration** — every `(layout, rank)` candidate that
//!    fits the SRAM budgets ([`crate::factorize::fits_budget`]) is scored
//!    with the closed-form [`tie_core::CostModel`] over every
//!    `(batch, depth, micro_batch)` knob setting; only the best knobs per
//!    layout survive. Thousands of candidates cost microseconds — no
//!    weights are touched.
//! 2. **Compile & gate** — the top-`k` surviving layouts (per SVD route)
//!    are actually TT-SVD-compiled, with wall-clock seconds measured and
//!    sampled reconstruction error checked against the default plan's
//!    error times [`TunerConfig::error_tolerance`]; candidates that lose
//!    accuracy (e.g. under-ranked layouts on planted-rank weights) or
//!    blow the optional [`TunerConfig::compile_budget_s`] are dropped.
//!    Survivors are re-scored on their **achieved** ranks (TT-SVD may
//!    come out below the cap), and the cheapest wins.
//! 3. **Quantized validation** — for a `Quantized` backend, the winner's
//!    calibration margin is chosen by walking the searched margins
//!    ascending against live measured saturation
//!    ([`tie_sim::quantize_with_reprobe`] on a held-out validation probe
//!    set); if even the widest searched margin drifts, the automatic
//!    widening ladder takes over. The plan records the margin that
//!    *validated*, not the one that was wished for.
//!
//! Everything is seed-deterministic: with `compile_budget_s = None`
//! (the default) the same spec and config produce the identical plan at
//! any worker-pool size — pinned by the tier-2 determinism suite.

use std::collections::BTreeSet;

use tie_core::{CostModel, DeploymentPlan, InferencePlan, PlanBackend};
use tie_serve::EngineRegistry;
use tie_sim::{quantize_with_reprobe, QuantConfig, ReprobeAttempt, ReprobeConfig, TieConfig};
use tie_tensor::linalg::{SvdMethod, Truncation};
use tie_tensor::{Result, Tensor, TensorError};
use tie_tt::{TtMatrix, TtShape};

use crate::benchmarks::{table4_layer_specs, LayerSpec};
use crate::compile::{compile_dense_layer, spec_weights, CompileOptions, ErrorCheck};
use crate::factorize::{fits_budget, propose_layouts, LayoutProposal};

/// The candidate axes the tuner enumerates. Empty layout/rank/SVD lists
/// mean "the spec's own setting only"; the knob lists always contain at
/// least the default serving point.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchSpace {
    /// Candidate mode counts `d` for divisor-based re-factorization
    /// (empty ⇒ only the spec's own `d`). The spec's layout is always a
    /// candidate at its own `d`.
    pub dims: Vec<usize>,
    /// Balanced layout proposals taken per `(d, rank)` pair.
    pub layouts_per_dim: usize,
    /// Candidate uniform rank caps (empty ⇒ the spec's rank only).
    pub ranks: Vec<usize>,
    /// Serving batch widths to score.
    pub batch_sizes: Vec<usize>,
    /// Pipeline cut depths to score (1 = sequential).
    pub pipeline_depths: Vec<usize>,
    /// Micro-batch chunk widths to score for pipelined candidates.
    pub micro_batches: Vec<usize>,
    /// SVD routes to compile the survivors with (empty ⇒ the default
    /// seeded [`SvdMethod`]).
    pub svd_methods: Vec<SvdMethod>,
    /// Datapath the emitted plan targets. `Quantized` adds phase 3.
    pub backend: PlanBackend,
    /// Quant calibration margins, walked ascending during validation
    /// (tightest clean margin wins LSB precision).
    pub quant_margins: Vec<f64>,
}

impl Default for SearchSpace {
    fn default() -> Self {
        SearchSpace {
            dims: Vec::new(),
            layouts_per_dim: 4,
            ranks: Vec::new(),
            batch_sizes: vec![1, 8, 16],
            pipeline_depths: vec![1, 2, 4],
            micro_batches: vec![1],
            svd_methods: Vec::new(),
            backend: PlanBackend::Quantized,
            quant_margins: vec![1.25, 1.5, 2.0],
        }
    }
}

/// Tuner configuration: the search space, the hardware model scoring it,
/// and the validation knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct TunerConfig {
    /// The enumerated axes.
    pub space: SearchSpace,
    /// Hardware the plans are scored against (cost model geometry + SRAM
    /// feasibility budgets).
    pub hardware: TieConfig,
    /// Layout survivors compiled per SVD route in phase 2.
    pub top_k: usize,
    /// A candidate's sampled reconstruction error may exceed the default
    /// plan's by at most this factor.
    pub error_tolerance: f64,
    /// Sampled entries per reconstruction-error check.
    pub error_entries: usize,
    /// Seed of the error-sample positions.
    pub error_seed: u64,
    /// Validation/re-probe loop settings for `Quantized` plans.
    pub reprobe: ReprobeConfig,
    /// Base quantization config (formats, calibration probes); the
    /// searched margin overrides its `probe_margin`.
    pub quant: QuantConfig,
    /// Optional wall-clock cap per candidate compile, in seconds.
    /// Candidates that measured over budget are dropped. **Trades
    /// determinism for bounded tuning time** — leave `None` (default)
    /// when reproducible plans matter.
    pub compile_budget_s: Option<f64>,
}

impl Default for TunerConfig {
    fn default() -> Self {
        TunerConfig {
            space: SearchSpace::default(),
            hardware: TieConfig::default(),
            top_k: 3,
            error_tolerance: 2.0,
            error_entries: 1 << 12,
            error_seed: 0x00C0_FFEE,
            reprobe: ReprobeConfig::default(),
            quant: QuantConfig::default(),
            compile_budget_s: None,
        }
    }
}

/// One compiled-and-gated candidate, for the audit trail.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateReport {
    /// The candidate layout (rank-capped request).
    pub shape: TtShape,
    /// SVD route it was compiled with.
    pub svd: SvdMethod,
    /// Best analytic cycles/sample over the knob grid (capped ranks).
    pub analytic_cycles_per_sample: f64,
    /// Cycles/sample re-scored on the achieved ranks (`None` if the
    /// candidate was dropped before/at compile).
    pub achieved_cycles_per_sample: Option<f64>,
    /// Measured compile seconds.
    pub compile_seconds: f64,
    /// Sampled relative reconstruction error.
    pub rel_error: Option<f64>,
    /// Why the candidate is out (`None` = survived).
    pub rejected: Option<String>,
}

/// The tuner's full result for one layer: the winning plan plus
/// everything needed to judge it against the default.
#[derive(Debug, Clone, PartialEq)]
pub struct TunedLayer {
    /// The winning deployment plan.
    pub plan: DeploymentPlan,
    /// The spec's default plan (paper layout, batch 1, sequential) in the
    /// same format, for apples-to-apples comparison.
    pub default_plan: DeploymentPlan,
    /// Modeled cycles/sample of the default plan.
    pub default_cycles_per_sample: f64,
    /// Modeled cycles/sample of the tuned plan.
    pub tuned_cycles_per_sample: f64,
    /// Sampled reconstruction error of the default compile.
    pub default_error: Option<f64>,
    /// Sampled reconstruction error of the tuned compile.
    pub tuned_error: Option<f64>,
    /// Wall-clock seconds the winning candidate's compile took.
    pub compile_seconds: f64,
    /// Margin-validation trail of the tuned plan (`None` for `Float`).
    pub reprobe_attempts: Option<Vec<ReprobeAttempt>>,
    /// Measured saturation rate of the *default* plan's engine on the
    /// same validation probes (`None` for `Float`).
    pub default_saturation_rate: Option<f64>,
    /// Measured saturation rate of the tuned plan's engine.
    pub tuned_saturation_rate: Option<f64>,
    /// Phase-2 audit trail (compiled candidates, in rank order).
    pub candidates: Vec<CandidateReport>,
    /// Layout×knob combinations scored analytically in phase 1.
    pub candidates_scored: usize,
}

impl TunedLayer {
    /// Modeled speedup of the tuned plan over the default (> 1 = win).
    #[must_use]
    pub fn modeled_speedup(&self) -> f64 {
        self.default_cycles_per_sample / self.tuned_cycles_per_sample.max(f64::MIN_POSITIVE)
    }
}

fn invalid(message: impl Into<String>) -> TensorError {
    TensorError::InvalidArgument {
        message: message.into(),
    }
}

/// Best `(cycles/sample, batch, depth, micro)` of one plan over the knob
/// grid — deterministic tie-break on grid order.
fn best_knobs(
    model: &CostModel,
    plan: &InferencePlan,
    space: &SearchSpace,
) -> (f64, usize, usize, usize) {
    let mut best = (f64::INFINITY, 1, 1, 1);
    for &b in &space.batch_sizes {
        for &depth in &space.pipeline_depths {
            for &micro in &space.micro_batches {
                if b == 0 || micro == 0 {
                    continue;
                }
                let cps = model.cycles_per_sample(plan, b, depth, micro);
                if cps < best.0 {
                    best = (cps, b, depth, micro);
                }
            }
        }
    }
    best
}

/// Wraps a bare shape as a [`LayoutProposal`] (the spec's own layout
/// enters the pool through here).
fn proposal_of(shape: TtShape) -> Result<LayoutProposal> {
    let plan = InferencePlan::new(&shape)?;
    Ok(LayoutProposal {
        params: shape.num_params(),
        compression: shape.compression_ratio(),
        muls: plan.total_muls(),
        peak_intermediate: plan.max_intermediate_elems(),
        shape,
    })
}

/// One phase-1 survivor: a feasible layout with its best analytic
/// `(cycles/sample, batch, depth, micro)` over the knob grid.
type ScoredCandidate = (LayoutProposal, (f64, usize, usize, usize));

/// Phase 1: enumerate SRAM-feasible layout candidates and score each with
/// the analytic model over the knob grid. Returns candidates sorted best
/// first, plus the number of layout×knob points scored.
fn enumerate_candidates(
    spec: &LayerSpec,
    cfg: &TunerConfig,
) -> Result<(Vec<ScoredCandidate>, usize)> {
    let space = &cfg.space;
    let (rows, cols) = spec.size();
    let model = cfg.hardware.cost_model();
    let ranks: Vec<usize> = if space.ranks.is_empty() {
        vec![spec.rank]
    } else {
        space.ranks.clone()
    };
    let mut dims: Vec<usize> = if space.dims.is_empty() {
        vec![spec.row_modes.len()]
    } else {
        space.dims.clone()
    };
    dims.sort_unstable();
    dims.dedup();

    // Candidate pool: the spec's own layout (at every candidate rank) plus
    // balanced divisor-split proposals per (d, rank).
    let mut pool: Vec<LayoutProposal> = Vec::new();
    let mut seen: BTreeSet<(Vec<usize>, Vec<usize>, usize)> = BTreeSet::new();
    let mut push = |pool: &mut Vec<LayoutProposal>, p: LayoutProposal| {
        let max_rank = p.shape.ranks.iter().copied().max().unwrap_or(1);
        let key = (
            p.shape.row_modes.clone(),
            p.shape.col_modes.clone(),
            max_rank,
        );
        if seen.insert(key) {
            pool.push(p);
        }
    };
    for &rank in &ranks {
        push(
            &mut pool,
            proposal_of(TtShape::uniform_rank(
                spec.row_modes.clone(),
                spec.col_modes.clone(),
                rank,
            )?)?,
        );
        for &d in &dims {
            // A dim with no non-trivial d-factorization still yields the
            // padded-with-ones layout; propose_layouts errors only on
            // degenerate inputs, which a valid spec can't produce.
            for p in propose_layouts(rows, cols, d, rank, space.layouts_per_dim)? {
                push(&mut pool, p);
            }
        }
    }

    let knob_points =
        space.batch_sizes.len() * space.pipeline_depths.len() * space.micro_batches.len();
    let mut scored = 0usize;
    let mut candidates = Vec::new();
    for p in pool {
        if !fits_budget(
            &p,
            cfg.hardware.weight_capacity_elems(),
            cfg.hardware.working_capacity_elems(),
            cfg.hardware.n_mac,
        ) {
            continue;
        }
        let plan = InferencePlan::new(&p.shape)?;
        scored += knob_points;
        let knobs = best_knobs(&model, &plan, space);
        if knobs.0.is_finite() {
            candidates.push((p, knobs));
        }
    }
    if candidates.is_empty() {
        return Err(invalid(format!(
            "no SRAM-feasible layout candidate for layer `{}`",
            spec.name
        )));
    }
    // Deterministic order: analytic score, then pool insertion order
    // (stable sort).
    candidates.sort_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).expect("finite scores"));
    Ok((candidates, scored))
}

/// Phase 3: margin selection against live saturation. Walks the searched
/// margins ascending with no widening; falls back to the automatic
/// widening ladder from the widest searched margin if none validates.
/// Returns the accepted engine's matrix-agnostic outcome: the margin, the
/// measured rate, and the full attempt trail.
fn validate_margins(
    matrix: &TtMatrix<f64>,
    spec: &LayerSpec,
    cfg: &TunerConfig,
) -> Result<(f64, f64, Vec<ReprobeAttempt>)> {
    let mut margins = cfg.space.quant_margins.clone();
    if margins.is_empty() {
        margins.push(cfg.quant.probe_margin);
    }
    margins.sort_by(|a, b| a.partial_cmp(b).expect("finite margins"));
    let mut trail: Vec<ReprobeAttempt> = Vec::new();
    for (i, &margin) in margins.iter().enumerate() {
        let last = i + 1 == margins.len();
        let probe = ReprobeConfig {
            // Searched margins are tried as-is; the widest one is allowed
            // to auto-widen (the re-probe ladder proper).
            max_widenings: if last { cfg.reprobe.max_widenings } else { 0 },
            ..cfg.reprobe
        };
        let (_, report) = quantize_with_reprobe(
            matrix,
            cfg.quant.with_probe_margin(margin),
            spec.activation,
            &probe,
        )?;
        trail.extend(report.attempts.iter().copied());
        let accepted = report.accepted();
        if accepted.saturation_rate <= cfg.reprobe.max_saturation_rate || last {
            return Ok((accepted.margin, accepted.saturation_rate, trail));
        }
    }
    unreachable!("the last margin always returns");
}

/// Measures one margin's live saturation rate without widening (used to
/// grade the *default* plan on the same validation probes the tuned plan
/// was accepted on).
fn measure_saturation(
    matrix: &TtMatrix<f64>,
    spec: &LayerSpec,
    cfg: &TunerConfig,
    margin: f64,
) -> Result<f64> {
    let probe = ReprobeConfig {
        max_widenings: 0,
        ..cfg.reprobe
    };
    let (_, report) = quantize_with_reprobe(
        matrix,
        cfg.quant.with_probe_margin(margin),
        spec.activation,
        &probe,
    )?;
    Ok(report.final_rate())
}

/// Runs the full three-phase search for one layer over its synthetic
/// weights ([`spec_weights`]). See the module docs for the phases.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] when no candidate survives
/// (no feasible layout, or every compile failed the error gate), and
/// propagates compile/validation errors.
pub fn autotune_layer(spec: &LayerSpec, cfg: &TunerConfig) -> Result<TunedLayer> {
    let w = spec_weights(spec)?;
    autotune_layer_weights(spec, &w, cfg)
}

/// [`autotune_layer`] over caller-provided dense weights (the spec still
/// supplies the name, default layout, rank, and epilogue).
///
/// # Errors
///
/// As [`autotune_layer`].
pub fn autotune_layer_weights(
    spec: &LayerSpec,
    w: &Tensor<f64>,
    cfg: &TunerConfig,
) -> Result<TunedLayer> {
    let model = cfg.hardware.cost_model();
    let space = &cfg.space;
    let svd_methods: Vec<SvdMethod> = if space.svd_methods.is_empty() {
        vec![SvdMethod::default()]
    } else {
        space.svd_methods.clone()
    };
    let error_check = ErrorCheck::Sampled {
        entries: cfg.error_entries,
        seed: cfg.error_seed,
    };

    // ----- The default (reference) compile: the spec's own setting. -----
    let default_opts = CompileOptions {
        method: svd_methods[0],
        error_check,
    };
    let default_compiled =
        compile_dense_layer(spec.name, w, &spec.shape(), spec.paper_cr, &default_opts)?;
    let default_shape = default_compiled.engine.matrix().shape().clone();
    let default_cps = model.cycles_per_sample(default_compiled.engine.plan(), 1, 1, 1);
    let default_margin = cfg.quant.probe_margin;
    let default_plan = DeploymentPlan {
        layer: spec.name.to_string(),
        shape: default_shape,
        svd: svd_methods[0],
        backend: space.backend,
        batch: 1,
        pipeline_depth: 1,
        micro_batch: 1,
        activation: spec.activation,
        quant_margin: default_margin,
        modeled_cycles_per_sample: default_cps,
    };
    let error_gate = default_compiled
        .report
        .rel_error
        .map(|e| (e * cfg.error_tolerance).max(1e-12));

    // ----- Phase 1: analytic enumeration. -----
    let (candidates, candidates_scored) = enumerate_candidates(spec, cfg)?;

    // ----- Phase 2: compile the top-k survivors, gate, re-score. -----
    struct Winner {
        matrix: TtMatrix<f64>,
        cps: f64,
        knobs: (usize, usize, usize),
        svd: SvdMethod,
        seconds: f64,
        rel_error: Option<f64>,
    }
    let mut reports: Vec<CandidateReport> = Vec::new();
    let mut winner: Option<Winner> = None;
    for (compiled_count, (proposal, (analytic_cps, b, depth, micro))) in
        candidates.into_iter().enumerate()
    {
        // Compile the analytic top-k; keep descending past k only while
        // every compiled candidate has been rejected (the gate must never
        // leave the tuner empty-handed when a feasible candidate exists).
        if compiled_count >= cfg.top_k.max(1) && winner.is_some() {
            break;
        }
        for &svd in &svd_methods {
            let max_rank = proposal.shape.ranks.iter().copied().max().unwrap_or(1);
            let t0 = std::time::Instant::now();
            let compiled = TtMatrix::from_dense_with(
                w,
                &proposal.shape.row_modes,
                &proposal.shape.col_modes,
                Truncation::rank(max_rank),
                svd,
            );
            let seconds = t0.elapsed().as_secs_f64();
            let mut report = CandidateReport {
                shape: proposal.shape.clone(),
                svd,
                analytic_cycles_per_sample: analytic_cps,
                achieved_cycles_per_sample: None,
                compile_seconds: seconds,
                rel_error: None,
                rejected: None,
            };
            let matrix = match compiled {
                Ok(m) => m,
                Err(e) => {
                    report.rejected = Some(format!("compile failed: {e}"));
                    reports.push(report);
                    continue;
                }
            };
            // Grade the matrix we already have — no recompile.
            let rel_error = match sampled_error(w, &matrix, cfg) {
                Ok(e) => Some(e),
                Err(e) => {
                    report.rejected = Some(format!("error check failed: {e}"));
                    reports.push(report);
                    continue;
                }
            };
            report.rel_error = rel_error;
            if let (Some(gate), Some(err)) = (error_gate, rel_error) {
                if err > gate {
                    report.rejected = Some(format!(
                        "reconstruction error {err:.3e} over gate {gate:.3e}"
                    ));
                    reports.push(report);
                    continue;
                }
            }
            if let Some(budget) = cfg.compile_budget_s {
                if seconds > budget {
                    report.rejected = Some(format!(
                        "compile took {seconds:.2}s, over budget {budget:.2}s"
                    ));
                    reports.push(report);
                    continue;
                }
            }
            // Re-score on the achieved ranks.
            let achieved_plan = InferencePlan::new(matrix.shape())?;
            let cps = model.cycles_per_sample(&achieved_plan, b, depth, micro);
            report.achieved_cycles_per_sample = Some(cps);
            reports.push(report);
            let better = winner.as_ref().is_none_or(|best| cps < best.cps);
            if better {
                winner = Some(Winner {
                    matrix,
                    cps,
                    knobs: (b, depth, micro),
                    svd,
                    seconds,
                    rel_error,
                });
            }
        }
    }
    let winner = winner.ok_or_else(|| {
        invalid(format!(
            "every compiled candidate for `{}` was rejected: {:?}",
            spec.name,
            reports
                .iter()
                .filter_map(|r| r.rejected.clone())
                .collect::<Vec<_>>()
        ))
    })?;

    // ----- Phase 3: quantized margin validation (live saturation). -----
    let (quant_margin, tuned_rate, trail, default_rate) = match space.backend {
        PlanBackend::Float => (default_margin, None, None, None),
        PlanBackend::Quantized => {
            let (margin, rate, trail) = validate_margins(&winner.matrix, spec, cfg)?;
            let default_rate =
                measure_saturation(default_compiled.engine.matrix(), spec, cfg, default_margin)?;
            (margin, Some(rate), Some(trail), Some(default_rate))
        }
    };

    let (batch, pipeline_depth, micro_batch) = winner.knobs;
    let plan = DeploymentPlan {
        layer: spec.name.to_string(),
        shape: winner.matrix.shape().clone(),
        svd: winner.svd,
        backend: space.backend,
        batch,
        pipeline_depth,
        micro_batch,
        activation: spec.activation,
        quant_margin,
        modeled_cycles_per_sample: winner.cps,
    };
    plan.validate()?;
    Ok(TunedLayer {
        plan,
        default_plan,
        default_cycles_per_sample: default_cps,
        tuned_cycles_per_sample: winner.cps,
        default_error: default_compiled.report.rel_error,
        tuned_error: winner.rel_error,
        compile_seconds: winner.seconds,
        reprobe_attempts: trail,
        default_saturation_rate: default_rate,
        tuned_saturation_rate: tuned_rate,
        candidates: reports,
        candidates_scored,
    })
}

/// Sampled relative reconstruction error of an already-compiled TT matrix
/// (the phase-2 gate; same estimator as [`ErrorCheck::Sampled`]).
fn sampled_error(w: &Tensor<f64>, ttm: &TtMatrix<f64>, cfg: &TunerConfig) -> Result<f64> {
    use rand::{Rng, SeedableRng};
    let (rows, cols) = (w.nrows()?, w.ncols()?);
    if cfg.error_entries == 0 {
        return Err(invalid("sampled error check needs at least one entry"));
    }
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(cfg.error_seed);
    let (mut num, mut den) = (0.0f64, 0.0f64);
    for _ in 0..cfg.error_entries {
        let i = rng.gen_range(0..rows);
        let j = rng.gen_range(0..cols);
        let dense = w.data()[i * cols + j];
        let diff = dense - ttm.get(i, j)?;
        num += diff * diff;
        den += dense * dense;
    }
    Ok((num / den.max(f64::MIN_POSITIVE)).sqrt())
}

/// Autotunes every Table 4 layer ([`table4_layer_specs`]).
///
/// # Errors
///
/// As [`autotune_layer`], per layer.
pub fn autotune_table4(cfg: &TunerConfig) -> Result<Vec<TunedLayer>> {
    table4_layer_specs()
        .iter()
        .map(|spec| autotune_layer(spec, cfg))
        .collect()
}

/// Compiles the TT matrix a [`DeploymentPlan`] describes from dense
/// weights: TT-SVD at the plan's layout, rank cap, and SVD route.
///
/// # Errors
///
/// Propagates factorization-mismatch and SVD errors.
pub fn compile_plan_matrix(plan: &DeploymentPlan, w: &Tensor<f64>) -> Result<TtMatrix<f64>> {
    let max_rank = plan.shape.ranks.iter().copied().max().unwrap_or(1);
    TtMatrix::from_dense_with(
        w,
        &plan.shape.row_modes,
        &plan.shape.col_modes,
        Truncation::rank(max_rank),
        plan.svd,
    )
}

/// Builds a serving registry from deployment plans: for each plan, find
/// its [`LayerSpec`] by name, synthesize the spec's weights, compile the
/// plan's layout ([`compile_plan_matrix`]) and register the engine the
/// plan's backend/pipeline/epilogue describe
/// (`EngineRegistry::insert_from_plan`). This is the load path a tuned
/// deployment ships with — no search re-run, just plan + weights.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] when a plan names a layer the
/// spec table doesn't have, and propagates compile errors.
pub fn registry_from_plans(
    plans: &[DeploymentPlan],
    specs: &[LayerSpec],
    quant: QuantConfig,
) -> Result<EngineRegistry> {
    let mut registry = EngineRegistry::new();
    for plan in plans {
        let spec = specs
            .iter()
            .find(|s| s.name == plan.layer)
            .ok_or_else(|| invalid(format!("no layer spec named `{}`", plan.layer)))?;
        let w = spec_weights(spec)?;
        let matrix = compile_plan_matrix(plan, &w)?;
        registry.insert_from_plan(plan, matrix, quant)?;
    }
    Ok(registry)
}

/// One-command tuned Table 4 deployment: search every layer, then build
/// the registry the winning plans describe. Returns the registry and the
/// per-layer tuning results (whose `plan`s serialize via
/// [`tie_core::plans_to_json`]).
///
/// # Errors
///
/// As [`autotune_table4`] and [`registry_from_plans`].
pub fn tuned_table4_registry(cfg: &TunerConfig) -> Result<(EngineRegistry, Vec<TunedLayer>)> {
    let tuned = autotune_table4(cfg)?;
    let plans: Vec<DeploymentPlan> = tuned.iter().map(|t| t.plan.clone()).collect();
    let registry = registry_from_plans(&plans, &table4_layer_specs(), cfg.quant)?;
    Ok((registry, tuned))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::Task;
    use tie_core::Activation;

    /// A compile-in-milliseconds layer with planted rank 2: rank-1
    /// candidates must fail the error gate, rank-2 candidates must pass.
    fn small_spec() -> LayerSpec {
        LayerSpec {
            name: "tiny-fc",
            row_modes: vec![4, 4],
            col_modes: vec![4, 4],
            rank: 2,
            task: Task::ImageClassification,
            paper_cr: None,
            activation: Activation::Relu,
            noise: 1e-4,
        }
    }

    fn fast_cfg() -> TunerConfig {
        TunerConfig {
            space: SearchSpace {
                layouts_per_dim: 2,
                batch_sizes: vec![1, 8],
                pipeline_depths: vec![1, 2],
                ..SearchSpace::default()
            },
            top_k: 2,
            error_entries: 1 << 10,
            ..TunerConfig::default()
        }
    }

    #[test]
    fn tuned_plan_beats_the_default_on_modeled_cycles() {
        let tuned = autotune_layer(&small_spec(), &fast_cfg()).unwrap();
        assert!(
            tuned.tuned_cycles_per_sample < tuned.default_cycles_per_sample,
            "tuned {} vs default {}",
            tuned.tuned_cycles_per_sample,
            tuned.default_cycles_per_sample
        );
        assert!(tuned.modeled_speedup() > 1.0);
        // The searched knobs actually moved off the default point.
        assert!(tuned.plan.batch > 1 || tuned.plan.pipeline_depth > 1);
        assert!(tuned.candidates_scored > 0);
        // Plan JSON round-trips bit-identically.
        let back = DeploymentPlan::from_json(&tuned.plan.to_json()).unwrap();
        assert_eq!(back, tuned.plan);
    }

    #[test]
    fn error_gate_rejects_under_ranked_candidates() {
        let spec = small_spec();
        let cfg = TunerConfig {
            space: SearchSpace {
                ranks: vec![1, 2],
                ..fast_cfg().space
            },
            ..fast_cfg()
        };
        let tuned = autotune_layer(&spec, &cfg).unwrap();
        // Planted rank is 2: some rank-1 candidate must have been compiled
        // and rejected for accuracy, and the winner must keep rank 2.
        assert!(
            tuned
                .candidates
                .iter()
                .any(|c| c.rejected.as_deref().is_some_and(|r| r.contains("error"))),
            "expected an accuracy rejection: {:?}",
            tuned.candidates
        );
        assert_eq!(
            tuned.plan.shape.ranks.iter().copied().max().unwrap(),
            2,
            "winner must keep the planted rank"
        );
    }

    #[test]
    fn quantized_validation_reports_saturation_and_margin() {
        let tuned = autotune_layer(&small_spec(), &fast_cfg()).unwrap();
        let trail = tuned.reprobe_attempts.as_ref().unwrap();
        assert!(!trail.is_empty());
        let tuned_rate = tuned.tuned_saturation_rate.unwrap();
        let default_rate = tuned.default_saturation_rate.unwrap();
        assert!(
            tuned_rate <= default_rate,
            "tuned saturation {tuned_rate} must not exceed default {default_rate}"
        );
        // The accepted margin is one the trail actually measured.
        assert!(trail.iter().any(|a| a.margin == tuned.plan.quant_margin));
    }

    #[test]
    fn reprobe_ladder_is_exercised_on_saturation_drift() {
        // Calibrate far too tight: tiny probe amplitude with margin 1.0
        // while validation probes run at amplitude 1.0 — the first
        // searched margins must drift and the trail must widen.
        let spec = small_spec();
        let cfg = TunerConfig {
            quant: QuantConfig {
                probe_amplitude: 0.05,
                ..QuantConfig::default()
            },
            space: SearchSpace {
                quant_margins: vec![1.0, 2.0],
                ..fast_cfg().space
            },
            reprobe: ReprobeConfig {
                widen_factor: 2.0,
                max_widenings: 8,
                ..ReprobeConfig::default()
            },
            ..fast_cfg()
        };
        let tuned = autotune_layer(&spec, &cfg).unwrap();
        let trail = tuned.reprobe_attempts.as_ref().unwrap();
        assert!(
            trail.len() > 1,
            "drift must force more than one attempt: {trail:?}"
        );
        assert!(trail[0].saturation_rate > 0.0, "first margin must drift");
        assert!(
            tuned.plan.quant_margin > 1.0,
            "accepted margin must have widened: {}",
            tuned.plan.quant_margin
        );
        assert_eq!(tuned.tuned_saturation_rate.unwrap(), 0.0);
    }

    #[test]
    fn float_backend_skips_quant_validation() {
        let cfg = TunerConfig {
            space: SearchSpace {
                backend: PlanBackend::Float,
                ..fast_cfg().space
            },
            ..fast_cfg()
        };
        let tuned = autotune_layer(&small_spec(), &cfg).unwrap();
        assert!(tuned.reprobe_attempts.is_none());
        assert!(tuned.tuned_saturation_rate.is_none());
        assert_eq!(tuned.plan.backend, PlanBackend::Float);
    }

    #[test]
    fn tuned_registry_serves_the_plan_backends() {
        let spec = small_spec();
        let cfg = fast_cfg();
        let tuned = autotune_layer(&spec, &cfg).unwrap();
        let registry = registry_from_plans(
            std::slice::from_ref(&tuned.plan),
            std::slice::from_ref(&spec),
            cfg.quant,
        )
        .unwrap();
        assert_eq!(registry.names(), vec!["tiny-fc".to_string()]);
        assert!(registry.is_quantized("tiny-fc"));
        assert_eq!(
            registry.is_pipelined("tiny-fc"),
            tuned.plan.pipeline_depth > 1
        );
        // Unknown plan names are rejected.
        let mut stray = tuned.plan.clone();
        stray.layer = "nope".into();
        assert!(registry_from_plans(&[stray], &[spec], cfg.quant).is_err());
    }

    #[test]
    fn same_seed_same_plan() {
        let spec = small_spec();
        let cfg = fast_cfg();
        let a = autotune_layer(&spec, &cfg).unwrap();
        let b = autotune_layer(&spec, &cfg).unwrap();
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.plan.to_json(), b.plan.to_json());
    }
}
