//! Benchmark workload definitions for the TIE reproduction.
//!
//! * [`benchmarks`] — the paper's Table 4 workloads (VGG-FC6, VGG-FC7,
//!   LSTM-UCF11, LSTM-Youtube) with their exact TT settings,
//! * [`vgg_conv`] — the VGG-16 CONV stack as TT workloads (Table 9); the
//!   paper does not print its CONV TT settings, so the factorization and
//!   rank choice are documented here and swept in the experiments,
//! * [`sparsity`] — per-layer weight/activation density profiles for the
//!   EIE comparison (from the EIE paper's measurements),
//! * [`sweep`] — rank sweeps (Fig. 13) and random-workload generators for
//!   property tests and robustness experiments,
//! * [`factorize`] — automatic TT-layout planning (the paper picks its
//!   mode factorizations by hand; this searches balanced candidates and
//!   checks them against the SRAM budgets),
//! * [`compile`] — end-to-end model compilation: dense weights → TT-SVD →
//!   [`tie_core::CompactEngine`] registered in a serving
//!   `EngineRegistry`, with compression-ratio and reconstruction-error
//!   reporting against Table 4,
//! * [`autotune`] — per-layer design-space search over TT layouts, rank
//!   budgets, SVD routes, batch widths, pipeline cut depths and quant
//!   calibration margins, emitting serializable
//!   [`tie_core::DeploymentPlan`]s validated against live saturation
//!   measurement.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod autotune;
pub mod benchmarks;
pub mod compile;
pub mod factorize;
pub mod sparsity;
pub mod sweep;
pub mod vgg_conv;

pub use autotune::{
    autotune_layer, autotune_table4, registry_from_plans, tuned_table4_registry, SearchSpace,
    TunedLayer, TunerConfig,
};
pub use benchmarks::{
    layer_weight_seed, table4_benchmarks, table4_layer_specs, Benchmark, LayerSpec, Task,
};
pub use compile::{
    compile_dense_layer, compile_spec, compile_table4, spec_weights, synthetic_layer_weights,
    CompileOptions, CompiledLayer, ErrorCheck, LayerCompileReport,
};

pub use tie_tensor::{Result, TensorError};
