//! VGG-16 CONV layers as TT workloads (the paper's Table 9 experiment).
//!
//! Per paper Fig. 3, a CONV layer is executed as a matrix multiplication:
//! the kernel tensor becomes a `C_out × f²C_in` matrix and every output
//! pixel is one matrix-vector product. The TIE paper does not print its
//! VGG CONV TT settings; the factorization below uses `d = 3–4` modes and
//! interior rank 8, the largest uniform rank for which **every** layer's
//! cores fit the prototype's 16 KB weight SRAM (the binding constraint —
//! rank 12 already overflows on the 512-channel layers). The experiment
//! binaries sweep this rank.

use tie_tt::TtShape;

/// A VGG-16 CONV layer as a TIE workload.
#[derive(Debug, Clone)]
pub struct ConvWorkload {
    /// Layer name.
    pub name: &'static str,
    /// TT layout of the `C_out × f²C_in` kernel matrix.
    pub shape: TtShape,
    /// Output pixels per frame (`H' · W'`) = matrix-vector products per
    /// frame.
    pub pixels: usize,
}

impl ConvWorkload {
    /// Dense multiply-accumulates of this layer per frame.
    pub fn dense_macs(&self) -> u64 {
        (self.shape.num_rows() * self.shape.num_cols() * self.pixels) as u64
    }
}

/// The 13 VGG-16 CONV layers as TT workloads with uniform interior rank
/// `rank`.
///
/// # Panics
///
/// Never for ranks ≥ 1: all constant factorizations are valid.
pub fn vgg16_conv_workloads(rank: usize) -> Vec<ConvWorkload> {
    let mk = |name, m: Vec<usize>, n: Vec<usize>, pixels: usize| ConvWorkload {
        name,
        shape: TtShape::uniform_rank(m, n, rank).expect("valid factorization"),
        pixels,
    };
    vec![
        // name, m (C_out factors), n (f²·C_in factors), H'·W'
        mk("conv1_1", vec![4, 4, 4], vec![3, 3, 3], 224 * 224),
        mk("conv1_2", vec![4, 4, 4], vec![8, 8, 9], 224 * 224),
        mk("conv2_1", vec![8, 4, 4], vec![8, 8, 9], 112 * 112),
        mk("conv2_2", vec![8, 4, 4], vec![8, 12, 12], 112 * 112),
        mk("conv3_1", vec![4, 4, 4, 4], vec![2, 8, 8, 9], 56 * 56),
        mk("conv3_2", vec![4, 4, 4, 4], vec![4, 8, 8, 9], 56 * 56),
        mk("conv3_3", vec![4, 4, 4, 4], vec![4, 8, 8, 9], 56 * 56),
        mk("conv4_1", vec![8, 4, 4, 4], vec![4, 8, 8, 9], 28 * 28),
        mk("conv4_2", vec![8, 4, 4, 4], vec![8, 8, 8, 9], 28 * 28),
        mk("conv4_3", vec![8, 4, 4, 4], vec![8, 8, 8, 9], 28 * 28),
        mk("conv5_1", vec![8, 4, 4, 4], vec![8, 8, 8, 9], 14 * 14),
        mk("conv5_2", vec![8, 4, 4, 4], vec![8, 8, 8, 9], 14 * 14),
        mk("conv5_3", vec![8, 4, 4, 4], vec![8, 8, 8, 9], 14 * 14),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorizations_match_vgg_dimensions() {
        let expected: [(usize, usize); 13] = [
            (64, 27),
            (64, 576),
            (128, 576),
            (128, 1152),
            (256, 1152),
            (256, 2304),
            (256, 2304),
            (512, 2304),
            (512, 4608),
            (512, 4608),
            (512, 4608),
            (512, 4608),
            (512, 4608),
        ];
        for (w, (m, n)) in vgg16_conv_workloads(8).iter().zip(expected) {
            assert_eq!(w.shape.num_rows(), m, "{} rows", w.name);
            assert_eq!(w.shape.num_cols(), n, "{} cols", w.name);
        }
    }

    #[test]
    fn total_dense_macs_equal_the_known_vgg_conv_count() {
        let total: u64 = vgg16_conv_workloads(8).iter().map(|w| w.dense_macs()).sum();
        assert!(
            (15.0e9..15.8e9).contains(&(total as f64)),
            "VGG-16 CONV MACs {total}"
        );
    }

    #[test]
    fn rank8_fits_the_prototype_weight_sram() {
        // The documented constraint: every layer's TT params (padded to
        // 16-row tiles × 16-element words, the Fig. 9 layout) must fit
        // 8192 elements.
        for w in vgg16_conv_workloads(8) {
            let mut padded = 0usize;
            for k in 0..w.shape.ndim() {
                let (rows, cols) = w.shape.unfolded_core_dims(k);
                padded += rows.div_ceil(16) * 16 * cols;
            }
            assert!(
                padded <= 8192,
                "{}: padded weight footprint {padded} exceeds 8192",
                w.name
            );
        }
    }

    #[test]
    fn rank12_overflows_somewhere_justifying_the_choice() {
        let mut any_overflow = false;
        for w in vgg16_conv_workloads(12) {
            let mut padded = 0usize;
            for k in 0..w.shape.ndim() {
                let (rows, cols) = w.shape.unfolded_core_dims(k);
                padded += rows.div_ceil(16) * 16 * cols;
            }
            any_overflow |= padded > 8192;
        }
        assert!(any_overflow, "rank 12 should overflow the weight SRAM");
    }
}
