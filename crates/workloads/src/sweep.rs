//! Parameter sweeps and random workload generation.

use tie_tensor::Result;
use tie_tt::TtShape;

use rand::Rng;

/// The rank values swept in Fig. 13 (plus the paper default 4).
pub const FIG13_RANKS: [usize; 5] = [2, 4, 6, 8, 12];

/// Produces the Fig. 13 rank sweep for one workload: the same mode
/// factorization at every rank in `ranks`.
///
/// # Errors
///
/// Propagates shape-validation errors (cannot occur for valid inputs).
pub fn rank_sweep(base: &TtShape, ranks: &[usize]) -> Result<Vec<(usize, TtShape)>> {
    ranks
        .iter()
        .map(|&r| Ok((r, base.with_uniform_rank(r)?)))
        .collect()
}

/// Generates a random-but-valid TT layout for property tests: `d ∈ 2..=5`
/// dimensions, modes in `2..=6`, interior ranks in `1..=4`.
pub fn random_shape<R: Rng>(rng: &mut R) -> TtShape {
    let d = rng.gen_range(2..=5usize);
    let m: Vec<usize> = (0..d).map(|_| rng.gen_range(2..=6)).collect();
    let n: Vec<usize> = (0..d).map(|_| rng.gen_range(2..=6)).collect();
    let mut ranks = vec![1usize; d + 1];
    for r in ranks.iter_mut().take(d).skip(1) {
        *r = rng.gen_range(1..=4);
    }
    TtShape::new(m, n, ranks).expect("generated shape is valid by construction")
}

/// PE-count ablation points (the paper's architecture is 16×16).
pub const PE_SWEEP: [usize; 4] = [4, 8, 16, 32];

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn rank_sweep_changes_only_ranks() {
        let base = TtShape::uniform_rank(vec![4; 4], vec![4, 20, 20, 36], 4).unwrap();
        let sweep = rank_sweep(&base, &FIG13_RANKS).unwrap();
        assert_eq!(sweep.len(), 5);
        for (r, s) in &sweep {
            assert_eq!(s.row_modes, base.row_modes);
            assert_eq!(s.col_modes, base.col_modes);
            assert!(s.ranks[1..s.ndim()].iter().all(|v| v == r));
        }
    }

    #[test]
    fn random_shapes_are_valid_and_varied() {
        let mut rng = ChaCha8Rng::seed_from_u64(400);
        let mut ds = std::collections::HashSet::new();
        for _ in 0..50 {
            let s = random_shape(&mut rng);
            ds.insert(s.ndim());
            assert_eq!(s.ranks[0], 1);
            assert_eq!(s.ranks[s.ndim()], 1);
        }
        assert!(ds.len() >= 3, "should cover several d values: {ds:?}");
    }
}
