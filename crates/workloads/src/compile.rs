//! End-to-end model compilation: dense weight matrices → TT-compressed
//! [`CompactEngine`]s registered in a serving [`EngineRegistry`].
//!
//! This is the missing front half of the compile-to-serve path: the paper
//! assumes every FC layer has already been TT-compressed (Table 4 prints
//! the resulting layouts); `tie-serve` (PR 2) executes such engines at
//! speed. [`compile_dense_layer`] performs the compression — factorize the
//! dense matrix over the paper's mode layout, TT-SVD it with a rank cap
//! (routed through the fast randomized/Jacobi selector in
//! `tie_tensor::linalg`), wrap the cores in a [`CompactEngine`] — and
//! [`compile_table4`] does it for every Table 4 workload, reporting
//! compression ratio and reconstruction error against the paper's figures.

use std::time::Instant;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use tie_core::CompactEngine;
use tie_serve::EngineRegistry;
use tie_tensor::linalg::{SvdMethod, Truncation};
use tie_tensor::{init, Result, Tensor, TensorError};
use tie_tt::{TtMatrix, TtShape};

use crate::benchmarks::{table4_layer_specs, LayerSpec};

/// How [`compile_dense_layer`] validates the compressed layer against the
/// dense weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCheck {
    /// Densify the TT matrix and compute the exact relative Frobenius
    /// error. Memory and time scale with the dense layer — validation
    /// sizes only.
    Exact,
    /// Sample `entries` random positions and compare `W(i,j)` against the
    /// TT slice-product chain — O(entries · d · r²), independent of the
    /// layer size. This is the default for paper-scale layers.
    Sampled {
        /// Number of sampled matrix entries.
        entries: usize,
        /// Seed for the sample positions.
        seed: u64,
    },
    /// No error check (fastest; `rel_error` is reported as `None`).
    Skip,
}

/// Options for [`compile_dense_layer`] / [`compile_table4`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompileOptions {
    /// SVD algorithm selection for every internal truncated SVD. The
    /// default `Auto` sends the huge unfoldings of paper-scale layers to
    /// the seeded randomized path; pin [`SvdMethod::Jacobi`] to reproduce
    /// the legacy exact behaviour.
    pub method: SvdMethod,
    /// Post-compression validation mode.
    pub error_check: ErrorCheck,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            method: SvdMethod::default(),
            error_check: ErrorCheck::Sampled {
                entries: 1 << 14,
                seed: 0x00C0_FFEE,
            },
        }
    }
}

/// Everything measured while compiling one layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerCompileReport {
    /// Layer name (Table 4 workload name for [`compile_table4`]).
    pub name: String,
    /// Dense dimensions `(M, N)`.
    pub rows: usize,
    /// Dense dimensions `(M, N)`.
    pub cols: usize,
    /// Achieved TT ranks `r_0 … r_d`.
    pub ranks: Vec<usize>,
    /// `M · N`.
    pub dense_params: usize,
    /// Parameters actually stored in the TT cores.
    pub tt_params: usize,
    /// `dense_params / tt_params`.
    pub compression_ratio: f64,
    /// Table 4 compression ratio for cross-checking (`None` for ad-hoc
    /// layers).
    pub paper_cr: Option<f64>,
    /// Relative Frobenius reconstruction error (`None` with
    /// [`ErrorCheck::Skip`]; sampled estimate with
    /// [`ErrorCheck::Sampled`]).
    pub rel_error: Option<f64>,
    /// Wall-clock seconds for factorize + TT-SVD + engine preparation
    /// (excludes weight synthesis and the error check).
    pub seconds: f64,
}

/// A compiled layer: the prepared engine plus its compile report.
#[derive(Debug)]
pub struct CompiledLayer {
    /// Ready-to-serve compact engine.
    pub engine: CompactEngine<f64>,
    /// Compression / accuracy / timing record.
    pub report: LayerCompileReport,
}

/// Synthesizes dense weights with planted TT structure: a random TT
/// matrix of layout `shape` densified, plus i.i.d. Gaussian noise of the
/// given standard deviation.
///
/// Compiling such weights with `shape`'s rank cap must recover the
/// planted ranks and a reconstruction error at the noise floor — which is
/// what makes these weights useful as compile-path fixtures: accuracy
/// failures are observable, unlike with generic random weights where any
/// rank-capped result is equally (in)accurate.
///
/// # Errors
///
/// Propagates shape errors from the TT substrate.
pub fn synthetic_layer_weights(shape: &TtShape, noise: f64, seed: u64) -> Result<Tensor<f64>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let planted = TtMatrix::<f64>::random(&mut rng, shape, 0.7)?;
    let mut w = planted.to_dense()?;
    if noise > 0.0 {
        let e: Tensor<f64> = init::normal(&mut rng, w.dims().to_vec(), noise);
        w = w.add(&e)?;
    }
    Ok(w)
}

/// Compiles one dense layer into a served-ready [`CompactEngine`].
///
/// `shape` supplies the mode factorization and the rank cap (its maximum
/// interior rank); the achieved ranks may come out lower where the
/// unfoldings are rank-deficient. `paper_cr`, when given, is carried into
/// the report for cross-checking.
///
/// # Errors
///
/// Propagates factorization-mismatch and SVD errors.
pub fn compile_dense_layer(
    name: &str,
    w: &Tensor<f64>,
    shape: &TtShape,
    paper_cr: Option<f64>,
    opts: &CompileOptions,
) -> Result<CompiledLayer> {
    let max_rank = shape.ranks.iter().copied().max().unwrap_or(1);
    let t0 = Instant::now();
    let ttm = TtMatrix::from_dense_with(
        w,
        &shape.row_modes,
        &shape.col_modes,
        Truncation::rank(max_rank),
        opts.method,
    )?;
    let engine = CompactEngine::new(ttm)?;
    let seconds = t0.elapsed().as_secs_f64();

    let ttm = engine.matrix();
    let (rows, cols) = (ttm.shape().num_rows(), ttm.shape().num_cols());
    let rel_error = reconstruction_error(w, ttm, opts.error_check)?;
    let dense_params = rows * cols;
    let tt_params = ttm.num_params();
    let report = LayerCompileReport {
        name: name.to_string(),
        rows,
        cols,
        ranks: ttm.shape().ranks.clone(),
        dense_params,
        tt_params,
        compression_ratio: dense_params as f64 / tt_params as f64,
        paper_cr,
        rel_error,
        seconds,
    };
    Ok(CompiledLayer { engine, report })
}

/// Synthesizes the dense weights a [`LayerSpec`] describes: planted-TT
/// structure at the spec's layout, the spec's noise floor, and the
/// per-layer-name seed ([`LayerSpec::weight_seed`]) — so a layer's
/// weights are a pure function of its spec, never of its table position.
///
/// # Errors
///
/// Propagates shape errors from the TT substrate.
pub fn spec_weights(spec: &LayerSpec) -> Result<Tensor<f64>> {
    synthetic_layer_weights(&spec.shape(), spec.noise, spec.weight_seed())
}

/// Compiles one [`LayerSpec`] end-to-end: [`spec_weights`] →
/// [`compile_dense_layer`] at the spec's layout.
///
/// # Errors
///
/// Propagates [`compile_dense_layer`] errors.
pub fn compile_spec(spec: &LayerSpec, opts: &CompileOptions) -> Result<CompiledLayer> {
    let w = spec_weights(spec)?;
    compile_dense_layer(spec.name, &w, &spec.shape(), spec.paper_cr, opts)
}

/// Compiles every Table 4 FC layer end-to-end (synthetic planted-TT
/// weights → TT-SVD → [`CompactEngine`]) and registers the engines in an
/// [`EngineRegistry`] under the Table 4 workload names. Consumes the
/// [`table4_layer_specs`] table — the same source of truth the deployment
/// autotuner searches from.
///
/// # Errors
///
/// Propagates [`compile_dense_layer`] errors.
pub fn compile_table4(opts: &CompileOptions) -> Result<(EngineRegistry, Vec<LayerCompileReport>)> {
    let mut registry = EngineRegistry::new();
    let mut reports = Vec::new();
    for spec in table4_layer_specs() {
        let compiled = compile_spec(&spec, opts)?;
        registry.insert(spec.name, compiled.engine);
        reports.push(compiled.report);
    }
    Ok((registry, reports))
}

/// Relative Frobenius reconstruction error per the [`ErrorCheck`] mode.
fn reconstruction_error(
    w: &Tensor<f64>,
    ttm: &TtMatrix<f64>,
    check: ErrorCheck,
) -> Result<Option<f64>> {
    match check {
        ErrorCheck::Skip => Ok(None),
        ErrorCheck::Exact => Ok(Some(ttm.to_dense()?.relative_error(w)?)),
        ErrorCheck::Sampled { entries, seed } => {
            let (rows, cols) = (w.nrows()?, w.ncols()?);
            if entries == 0 {
                return Err(TensorError::InvalidArgument {
                    message: "sampled error check needs at least one entry".into(),
                });
            }
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let (mut num, mut den) = (0.0f64, 0.0f64);
            for _ in 0..entries {
                let i = rng.gen_range(0..rows);
                let j = rng.gen_range(0..cols);
                let dense = w.data()[i * cols + j];
                let diff = dense - ttm.get(i, j)?;
                num += diff * diff;
                den += dense * dense;
            }
            Ok(Some((num / den.max(f64::MIN_POSITIVE)).sqrt()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small layout so the whole compile path (including the exact error
    /// check) runs in milliseconds under `cargo test`.
    fn small_shape() -> TtShape {
        TtShape::uniform_rank(vec![2, 3, 2], vec![3, 2, 2], 2).unwrap()
    }

    #[test]
    fn compile_recovers_planted_structure() {
        let shape = small_shape();
        let w = synthetic_layer_weights(&shape, 0.0, 7).unwrap();
        let opts = CompileOptions {
            error_check: ErrorCheck::Exact,
            ..CompileOptions::default()
        };
        let compiled = compile_dense_layer("small", &w, &shape, None, &opts).unwrap();
        let r = &compiled.report;
        assert_eq!((r.rows, r.cols), (12, 12));
        assert!(r.ranks.iter().all(|&x| x <= 2));
        assert!(
            r.rel_error.unwrap() < 1e-8,
            "noise-free planted weights must compile exactly: {:?}",
            r.rel_error
        );
        assert!((r.compression_ratio - r.dense_params as f64 / r.tt_params as f64).abs() < 1e-12);
        // The engine serves the same matrix it was compiled from.
        let x = Tensor::from_vec(vec![12], vec![1.0; 12]).unwrap();
        let (y, _ops) = compiled.engine.matvec(&x).unwrap();
        let dense_y = tie_tensor::linalg::matvec(&w, &x).unwrap();
        assert!(y.approx_eq(&dense_y, 1e-7));
    }

    #[test]
    fn compile_methods_agree_on_small_layers() {
        let shape = small_shape();
        let w = synthetic_layer_weights(&shape, 1e-5, 8).unwrap();
        for method in [SvdMethod::Jacobi, SvdMethod::default()] {
            let opts = CompileOptions {
                method,
                error_check: ErrorCheck::Exact,
            };
            let c = compile_dense_layer("small", &w, &shape, None, &opts).unwrap();
            assert!(
                c.report.rel_error.unwrap() < 1e-3,
                "{method:?}: {:?}",
                c.report.rel_error
            );
        }
    }

    #[test]
    fn sampled_error_tracks_exact_error() {
        let shape = small_shape();
        let w = synthetic_layer_weights(&shape, 1e-3, 9).unwrap();
        let exact = compile_dense_layer(
            "s",
            &w,
            &shape,
            None,
            &CompileOptions {
                error_check: ErrorCheck::Exact,
                ..CompileOptions::default()
            },
        )
        .unwrap();
        // Sampling every entry (with replacement, many times over) must
        // land near the exact figure.
        let sampled = compile_dense_layer(
            "s",
            &w,
            &shape,
            None,
            &CompileOptions {
                error_check: ErrorCheck::Sampled {
                    entries: 1 << 14,
                    seed: 1,
                },
                ..CompileOptions::default()
            },
        )
        .unwrap();
        let (e, s) = (
            exact.report.rel_error.unwrap(),
            sampled.report.rel_error.unwrap(),
        );
        assert!(
            s < e * 3.0 + 1e-12 && e < s * 3.0 + 1e-12,
            "sampled {s} vs exact {e}"
        );
        let skipped = compile_dense_layer(
            "s",
            &w,
            &shape,
            None,
            &CompileOptions {
                error_check: ErrorCheck::Skip,
                ..CompileOptions::default()
            },
        )
        .unwrap();
        assert_eq!(skipped.report.rel_error, None);
    }

    #[test]
    fn compile_rejects_mismatched_weights() {
        let shape = small_shape();
        let w = Tensor::<f64>::zeros(vec![10, 12]);
        assert!(compile_dense_layer("bad", &w, &shape, None, &CompileOptions::default()).is_err());
    }
}
