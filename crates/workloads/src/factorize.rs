//! Automatic TT-layout planning.
//!
//! The paper chooses `(d, m, n)` factorizations by hand (§2.3, Table 4).
//! A deployable library should propose them: given a dense layer
//! `M × N`, a dimension count `d` and a rank budget, find balanced mode
//! factorizations (balanced modes minimize `Σ n_k r_{k-1} r_k` for fixed
//! products) and check the result against the accelerator's SRAM
//! feasibility constraints.

use tie_core::InferencePlan;
use tie_tensor::{Result, TensorError};
use tie_tt::TtShape;

/// All factorizations of `value` into exactly `d` factors ≥ 1, in
/// non-deterministic (recursion) order. Factors of 1 are allowed —
/// degenerate modes are legal TT layouts (and sometimes necessary, e.g.
/// a 4-class head as `[2, 2, 1, 1]`).
pub fn factorizations(value: usize, d: usize) -> Vec<Vec<usize>> {
    fn rec(value: usize, d: usize, min: usize, acc: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if d == 1 {
            if value >= min || value == 1 {
                let mut v = acc.clone();
                v.push(value);
                out.push(v);
            }
            return;
        }
        let mut f = 1usize;
        while f * f <= value || f == 1 {
            if value.is_multiple_of(f) {
                acc.push(f);
                rec(value / f, d - 1, 1, acc, out);
                acc.pop();
            }
            f += 1;
            if f > value {
                break;
            }
        }
        // Also allow factors above sqrt (the recursion above only walks
        // f ≤ sqrt(value) for efficiency; walk the complements too).
        let mut g = 2usize;
        while g * g <= value {
            if value.is_multiple_of(g) {
                let big = value / g;
                if big * big > value {
                    acc.push(big);
                    rec(g, d - 1, 1, acc, out);
                    acc.pop();
                }
            }
            g += 1;
        }
        // And the trivial complement value itself.
        if value > 1 {
            acc.push(value);
            rec(1, d - 1, 1, acc, out);
            acc.pop();
        }
    }
    let mut out = Vec::new();
    let mut acc = Vec::new();
    rec(value, d, 1, &mut acc, &mut out);
    // Dedup (the complement walk can duplicate).
    out.sort_unstable();
    out.dedup();
    out
}

/// Imbalance score of a factorization: ratio of largest to smallest
/// non-unit factor (1.0 = perfectly balanced), plus a penalty per unit
/// factor (wasted dimension).
pub fn imbalance(factors: &[usize]) -> f64 {
    let non_unit: Vec<usize> = factors.iter().copied().filter(|&f| f > 1).collect();
    if non_unit.is_empty() {
        return 1.0;
    }
    let max = *non_unit.iter().max().expect("nonempty") as f64;
    let min = *non_unit.iter().min().expect("nonempty") as f64;
    let unit_penalty = (factors.len() - non_unit.len()) as f64 * 0.5;
    max / min + unit_penalty
}

/// A proposed TT layout with its figures of merit.
#[derive(Debug, Clone)]
pub struct LayoutProposal {
    /// The proposed layout.
    pub shape: TtShape,
    /// Stored parameters.
    pub params: usize,
    /// Compression ratio vs dense.
    pub compression: f64,
    /// Compact-scheme multiply count.
    pub muls: u64,
    /// Peak intermediate elements (working-SRAM requirement).
    pub peak_intermediate: usize,
}

/// Proposes TT layouts for an `M × N` layer at dimension `d` and uniform
/// interior rank `rank`, ranked by compact-scheme multiply count (the
/// latency proxy) with parameter count as the tie-breaker. Up to
/// `max_proposals` results.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] if `M` or `N` has no
/// `d`-factor factorization other than padding with ones and not even
/// that (i.e. `d == 0`), or if no candidate exists.
pub fn propose_layouts(
    rows: usize,
    cols: usize,
    d: usize,
    rank: usize,
    max_proposals: usize,
) -> Result<Vec<LayoutProposal>> {
    if d == 0 || rows == 0 || cols == 0 {
        return Err(TensorError::InvalidArgument {
            message: format!("cannot factorize {rows}x{cols} into d={d} modes"),
        });
    }
    // Keep the candidate pool manageable: the most balanced row/col
    // factorizations.
    let mut row_cands = factorizations(rows, d);
    let mut col_cands = factorizations(cols, d);
    row_cands.sort_by(|a, b| imbalance(a).partial_cmp(&imbalance(b)).expect("finite"));
    col_cands.sort_by(|a, b| imbalance(a).partial_cmp(&imbalance(b)).expect("finite"));
    row_cands.truncate(12);
    col_cands.truncate(12);
    let mut proposals = Vec::new();
    for m in &row_cands {
        for n in &col_cands {
            let shape = TtShape::uniform_rank(m.clone(), n.clone(), rank)?;
            let plan = InferencePlan::new(&shape)?;
            proposals.push(LayoutProposal {
                params: shape.num_params(),
                compression: shape.compression_ratio(),
                muls: plan.total_muls(),
                peak_intermediate: plan.max_intermediate_elems(),
                shape,
            });
        }
    }
    if proposals.is_empty() {
        return Err(TensorError::InvalidArgument {
            message: format!("no TT layout candidates for {rows}x{cols} at d={d}"),
        });
    }
    proposals.sort_by(|a, b| a.muls.cmp(&b.muls).then(a.params.cmp(&b.params)));
    proposals.truncate(max_proposals.max(1));
    Ok(proposals)
}

/// Feasibility of a layout on a given SRAM budget (the Table 5
/// constraints, expressed in elements).
pub fn fits_budget(
    proposal: &LayoutProposal,
    weight_capacity_elems: usize,
    working_capacity_elems: usize,
    n_mac: usize,
) -> bool {
    let padded_weights: usize = (0..proposal.shape.ndim())
        .map(|k| {
            let (r, c) = proposal.shape.unfolded_core_dims(k);
            r.div_ceil(n_mac) * n_mac * c
        })
        .sum();
    padded_weights <= weight_capacity_elems && proposal.peak_intermediate <= working_capacity_elems
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorizations_cover_products() {
        let fs = factorizations(12, 2);
        for f in &fs {
            assert_eq!(f.iter().product::<usize>(), 12);
            assert_eq!(f.len(), 2);
        }
        // 12 = 1*12, 2*6, 3*4, 4*3, 6*2, 12*1
        assert!(fs.len() >= 6, "{fs:?}");
        assert!(fs.contains(&vec![3, 4]));
        assert!(fs.contains(&vec![12, 1]));
    }

    #[test]
    fn factorizations_of_one_and_primes() {
        assert_eq!(factorizations(1, 3), vec![vec![1, 1, 1]]);
        let fs = factorizations(7, 2);
        assert!(fs.contains(&vec![1, 7]) && fs.contains(&vec![7, 1]));
    }

    #[test]
    fn imbalance_prefers_balanced() {
        assert!(imbalance(&[4, 4, 4]) < imbalance(&[2, 4, 8]));
        assert!(imbalance(&[4, 4]) < imbalance(&[16, 1]));
        assert_eq!(imbalance(&[1, 1]), 1.0);
    }

    #[test]
    fn proposals_for_fc7_include_the_paper_layout_family() {
        // 4096 x 4096 at d=6, r=4: the paper uses m = n = [4; 6]. The
        // top-ranked balanced proposal must match its cost.
        let props = propose_layouts(4096, 4096, 6, 4, 5).unwrap();
        let paper = TtShape::uniform_rank(vec![4; 6], vec![4; 6], 4).unwrap();
        let paper_muls = tie_core::counts::mul_compact(&paper);
        assert!(
            props.iter().any(|p| p.muls <= paper_muls),
            "planner should find a layout at least as good as the paper's: best {} vs paper {}",
            props[0].muls,
            paper_muls
        );
        // All proposals factor correctly.
        for p in &props {
            assert_eq!(p.shape.num_rows(), 4096);
            assert_eq!(p.shape.num_cols(), 4096);
        }
    }

    #[test]
    fn proposals_are_sorted_by_cost() {
        let props = propose_layouts(256, 240, 3, 4, 8).unwrap();
        for w in props.windows(2) {
            assert!(w[0].muls <= w[1].muls);
        }
    }

    #[test]
    fn budget_check_matches_table5_constraints() {
        let props = propose_layouts(4096, 4096, 6, 4, 1).unwrap();
        assert!(fits_budget(&props[0], 8192, 196_608, 16));
        // A tiny weight budget rejects everything.
        assert!(!fits_budget(&props[0], 64, 196_608, 16));
    }

    #[test]
    fn errors_on_degenerate_requests() {
        assert!(propose_layouts(0, 4, 2, 2, 3).is_err());
        assert!(propose_layouts(4, 4, 0, 2, 3).is_err());
    }
}
