//! The paper's Table 4 benchmark workloads.
//!
//! [`LayerSpec`] is the **single source of truth** for a layer's
//! compile-time setting: the mode factorizations, the rank budget, the
//! fused epilogue, the synthetic-weight noise floor, and the
//! per-layer-name weight seed. Both the default compile path
//! ([`crate::compile::compile_table4`]) and the deployment autotuner
//! ([`crate::autotune`]) consume the same [`table4_layer_specs`] table, so
//! the two can never disagree about what "the default plan" is.

use tie_core::Activation;
use tie_tt::TtShape;

/// Task family of a benchmark layer (Table 4 "Tasks" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Task {
    /// CNN model for image classification.
    ImageClassification,
    /// RNN model for video classification.
    VideoClassification,
}

/// Deterministic per-layer-name weight seed (FNV-1a over the name).
///
/// Seeding by *name* instead of table position means adding, removing or
/// reordering layers never shifts any other layer's synthetic weights —
/// golden fixtures downstream stay pinned to the layer they were cut for.
#[must_use]
pub fn layer_weight_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.as_bytes() {
        h ^= u64::from(*byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One layer's complete compile-time setting — what the paper prints in
/// Table 4, plus the knobs our synthetic-weight pipeline needs.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerSpec {
    /// Layer name (registry key, Table 4 workload name).
    pub name: &'static str,
    /// Row-mode factorization of the output dimension `M`.
    pub row_modes: Vec<usize>,
    /// Column-mode factorization of the input dimension `N`.
    pub col_modes: Vec<usize>,
    /// Uniform interior TT-rank budget.
    pub rank: usize,
    /// Task family.
    pub task: Task,
    /// Compression ratio printed in Table 4 (`None` for ad-hoc layers).
    pub paper_cr: Option<f64>,
    /// Epilogue fused into the final stage when serving this layer.
    pub activation: Activation,
    /// Gaussian noise stddev planted on the synthetic weights (the
    /// reconstruction-error floor the compile must land at).
    pub noise: f64,
}

impl LayerSpec {
    /// The TT layout `(d, m, n, r)` this spec describes.
    ///
    /// # Panics
    ///
    /// Panics when the mode lists are inconsistent — the in-tree tables
    /// are all valid, and hand-built specs should fail loudly in tests.
    #[must_use]
    pub fn shape(&self) -> TtShape {
        TtShape::uniform_rank(self.row_modes.clone(), self.col_modes.clone(), self.rank)
            .expect("layer spec must describe a valid TT layout")
    }

    /// Dense layer size as `(rows, cols)` — Table 4 "Size".
    #[must_use]
    pub fn size(&self) -> (usize, usize) {
        (
            self.row_modes.iter().product(),
            self.col_modes.iter().product(),
        )
    }

    /// This layer's synthetic-weight seed ([`layer_weight_seed`] of its
    /// name).
    #[must_use]
    pub fn weight_seed(&self) -> u64 {
        layer_weight_seed(self.name)
    }
}

/// The Table 4 layer table — every printed TT setting as a [`LayerSpec`].
#[must_use]
pub fn table4_layer_specs() -> Vec<LayerSpec> {
    let spec = |name, row_modes, col_modes, task, paper_cr| LayerSpec {
        name,
        row_modes,
        col_modes,
        rank: 4,
        task,
        paper_cr: Some(paper_cr),
        activation: Activation::Identity,
        noise: 1e-4,
    };
    vec![
        spec(
            "VGG-FC6",
            vec![4; 6],
            vec![2, 7, 8, 8, 7, 4],
            Task::ImageClassification,
            50972.0,
        ),
        spec(
            "VGG-FC7",
            vec![4; 6],
            vec![4; 6],
            Task::ImageClassification,
            14564.0,
        ),
        spec(
            "LSTM-UCF11",
            vec![4; 4],
            vec![8, 20, 20, 18],
            Task::VideoClassification,
            4954.0,
        ),
        spec(
            "LSTM-Youtube",
            vec![4; 4],
            vec![4, 20, 20, 36],
            Task::VideoClassification,
            4608.0,
        ),
    ]
}

/// One evaluated workload: a TT-compressed layer with its full setting.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Workload name as printed in Table 4.
    pub name: &'static str,
    /// The TT layout (`d`, `m`, `n`, `r`).
    pub shape: TtShape,
    /// Task family.
    pub task: Task,
    /// Compression ratio printed in Table 4 (for cross-checking).
    pub paper_cr: f64,
}

impl Benchmark {
    /// Dense layer size as `(rows, cols)` — Table 4 "Size".
    pub fn size(&self) -> (usize, usize) {
        (self.shape.num_rows(), self.shape.num_cols())
    }
}

/// All four Table 4 workloads with their printed TT settings — a
/// [`Benchmark`] view over [`table4_layer_specs`].
///
/// # Panics
///
/// Never: the constant configurations are valid.
pub fn table4_benchmarks() -> Vec<Benchmark> {
    table4_layer_specs()
        .into_iter()
        .map(|spec| Benchmark {
            shape: spec.shape(),
            name: spec.name,
            task: spec.task,
            paper_cr: spec.paper_cr.expect("table4 specs carry the printed CR"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_table4() {
        let b = table4_benchmarks();
        assert_eq!(b[0].size(), (4096, 25088));
        assert_eq!(b[1].size(), (4096, 4096));
        assert_eq!(b[2].size(), (256, 57600));
        assert_eq!(b[3].size(), (256, 57600));
    }

    #[test]
    fn compression_ratios_match_table4_within_2_percent() {
        for b in table4_benchmarks() {
            let cr = b.shape.compression_ratio();
            assert!(
                (cr - b.paper_cr).abs() / b.paper_cr < 0.02,
                "{}: computed {cr:.0} vs paper {}",
                b.name,
                b.paper_cr
            );
        }
    }

    #[test]
    fn all_ranks_are_four() {
        for b in table4_benchmarks() {
            assert!(b.shape.ranks[1..b.shape.ndim()].iter().all(|&r| r == 4));
        }
    }

    #[test]
    fn benchmarks_are_a_view_over_the_spec_table() {
        let specs = table4_layer_specs();
        let benches = table4_benchmarks();
        assert_eq!(specs.len(), benches.len());
        for (s, b) in specs.iter().zip(&benches) {
            assert_eq!(s.name, b.name);
            assert_eq!(s.shape(), b.shape);
            assert_eq!(s.task, b.task);
            assert_eq!(s.paper_cr, Some(b.paper_cr));
            assert_eq!(s.size(), b.size());
        }
    }

    #[test]
    fn weight_seeds_depend_on_the_name_not_the_position() {
        let seeds: Vec<u64> = table4_layer_specs()
            .iter()
            .map(LayerSpec::weight_seed)
            .collect();
        // All distinct …
        let mut uniq = seeds.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), seeds.len());
        // … stable across calls, and a pure function of the name.
        assert_eq!(layer_weight_seed("VGG-FC7"), layer_weight_seed("VGG-FC7"));
        assert_ne!(layer_weight_seed("VGG-FC7"), layer_weight_seed("VGG-FC6"));
        assert_eq!(seeds[1], layer_weight_seed("VGG-FC7"));
    }
}
