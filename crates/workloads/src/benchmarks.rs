//! The paper's Table 4 benchmark workloads.

use tie_tt::TtShape;

/// Task family of a benchmark layer (Table 4 "Tasks" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Task {
    /// CNN model for image classification.
    ImageClassification,
    /// RNN model for video classification.
    VideoClassification,
}

/// One evaluated workload: a TT-compressed layer with its full setting.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Workload name as printed in Table 4.
    pub name: &'static str,
    /// The TT layout (`d`, `m`, `n`, `r`).
    pub shape: TtShape,
    /// Task family.
    pub task: Task,
    /// Compression ratio printed in Table 4 (for cross-checking).
    pub paper_cr: f64,
}

impl Benchmark {
    /// Dense layer size as `(rows, cols)` — Table 4 "Size".
    pub fn size(&self) -> (usize, usize) {
        (self.shape.num_rows(), self.shape.num_cols())
    }
}

/// All four Table 4 workloads with their printed TT settings.
///
/// # Panics
///
/// Never: the constant configurations are valid.
pub fn table4_benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "VGG-FC6",
            shape: TtShape::uniform_rank(vec![4; 6], vec![2, 7, 8, 8, 7, 4], 4)
                .expect("valid paper config"),
            task: Task::ImageClassification,
            paper_cr: 50972.0,
        },
        Benchmark {
            name: "VGG-FC7",
            shape: TtShape::uniform_rank(vec![4; 6], vec![4; 6], 4).expect("valid paper config"),
            task: Task::ImageClassification,
            paper_cr: 14564.0,
        },
        Benchmark {
            name: "LSTM-UCF11",
            shape: TtShape::uniform_rank(vec![4; 4], vec![8, 20, 20, 18], 4)
                .expect("valid paper config"),
            task: Task::VideoClassification,
            paper_cr: 4954.0,
        },
        Benchmark {
            name: "LSTM-Youtube",
            shape: TtShape::uniform_rank(vec![4; 4], vec![4, 20, 20, 36], 4)
                .expect("valid paper config"),
            task: Task::VideoClassification,
            paper_cr: 4608.0,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_table4() {
        let b = table4_benchmarks();
        assert_eq!(b[0].size(), (4096, 25088));
        assert_eq!(b[1].size(), (4096, 4096));
        assert_eq!(b[2].size(), (256, 57600));
        assert_eq!(b[3].size(), (256, 57600));
    }

    #[test]
    fn compression_ratios_match_table4_within_2_percent() {
        for b in table4_benchmarks() {
            let cr = b.shape.compression_ratio();
            assert!(
                (cr - b.paper_cr).abs() / b.paper_cr < 0.02,
                "{}: computed {cr:.0} vs paper {}",
                b.name,
                b.paper_cr
            );
        }
    }

    #[test]
    fn all_ranks_are_four() {
        for b in table4_benchmarks() {
            assert!(b.shape.ranks[1..b.shape.ndim()].iter().all(|&r| r == 4));
        }
    }
}
