//! Sparsity profiles for the EIE comparison (Fig. 12 / Table 7).
//!
//! EIE's performance depends on the pruned weight density and the dynamic
//! activation density of each layer. These profiles follow the EIE
//! paper's Table IV measurements for the VGG-16 FC layers.

/// Weight/activation density of one layer under EIE's compression.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparsityProfile {
    /// Layer name.
    pub name: &'static str,
    /// Fraction of weights kept after pruning.
    pub weight_density: f64,
    /// Fraction of input activations that are nonzero at inference time.
    pub act_density: f64,
}

/// VGG-16 FC6 under deep compression (EIE paper: 4% weights, ~18% of the
/// post-ReLU/pooling inputs nonzero).
pub const VGG_FC6: SparsityProfile = SparsityProfile {
    name: "VGG-FC6",
    weight_density: 0.04,
    act_density: 0.18,
};

/// VGG-16 FC7 under deep compression (4% weights, ~37% input activations
/// nonzero).
pub const VGG_FC7: SparsityProfile = SparsityProfile {
    name: "VGG-FC7",
    weight_density: 0.04,
    act_density: 0.37,
};

impl SparsityProfile {
    /// Expected multiply count for an `rows × cols` layer on EIE:
    /// `rows · cols · weight_density · act_density`.
    pub fn expected_macs(&self, rows: usize, cols: usize) -> f64 {
        rows as f64 * cols as f64 * self.weight_density * self.act_density
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_sane() {
        for p in [VGG_FC6, VGG_FC7] {
            assert!(p.weight_density > 0.0 && p.weight_density < 0.2);
            assert!(p.act_density > 0.0 && p.act_density < 1.0);
        }
    }

    #[test]
    fn expected_macs_fc6() {
        // 4096·25088·0.04·0.18 ≈ 740k MACs — EIE's per-inference work on
        // FC6, three orders below the dense 103M.
        let m = VGG_FC6.expected_macs(4096, 25088);
        assert!((m - 739_860.0).abs() / 739_860.0 < 0.01, "{m}");
    }
}
