//! Compile-path integration tests.
//!
//! The fast test exercises the full compile-to-registry path on a scaled-
//! down layer so the default `cargo test` sweep covers the wiring. The
//! `#[ignore]`d tests compile real Table 4 layers at paper scale — they
//! need a release build to meet their wall-clock budgets and are run
//! explicitly by `scripts/ci.sh` via `--release ... -- --ignored`.
//!
//! Budgets are wall-clock seconds per layer, overridable with
//! `TIE_COMPILE_BUDGET_S` (default 9: the acceptance criterion is
//! "single-digit seconds per layer on CI hardware").

use tie_tensor::linalg::SvdMethod;
use tie_workloads::{
    compile_dense_layer, compile_table4, synthetic_layer_weights, table4_benchmarks,
    CompileOptions, ErrorCheck,
};

fn budget_seconds() -> f64 {
    std::env::var("TIE_COMPILE_BUDGET_S")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(9.0)
}

#[test]
fn scaled_down_layer_compiles_into_registry() {
    // Same 6-mode structure as VGG-FC6, shrunk to 64×216.
    let shape = tie_tt::TtShape::uniform_rank(vec![2, 2, 2, 2, 2, 2], vec![2, 3, 2, 3, 2, 3], 4)
        .expect("valid layout");
    let w = synthetic_layer_weights(&shape, 1e-5, 3).unwrap();
    let opts = CompileOptions {
        error_check: ErrorCheck::Exact,
        ..CompileOptions::default()
    };
    let compiled = compile_dense_layer("mini-fc", &w, &shape, None, &opts).unwrap();
    assert!(compiled.report.rel_error.unwrap() < 1e-2);
    let mut registry = tie_serve::EngineRegistry::new();
    registry.insert("mini-fc", compiled.engine);
    assert_eq!(registry.dims("mini-fc"), Some((64, 216)));
}

/// FC6 (4096×25088, the paper's largest FC layer) at paper ranks: must
/// compile within the wall-clock budget and reproduce the Table 4
/// compression ratio within 2%.
#[test]
#[ignore = "paper-scale: run via scripts/ci.sh with --release"]
fn fc6_compiles_at_paper_scale_within_budget() {
    let bench = table4_benchmarks()
        .into_iter()
        .find(|b| b.name == "VGG-FC6")
        .expect("FC6 in Table 4");
    let w = synthetic_layer_weights(&bench.shape, 1e-4, 100).unwrap();
    let compiled = compile_dense_layer(
        "VGG-FC6",
        &w,
        &bench.shape,
        Some(bench.paper_cr),
        &CompileOptions::default(),
    )
    .unwrap();
    let r = &compiled.report;
    assert!(
        r.seconds <= budget_seconds(),
        "FC6 compile took {:.2}s (budget {:.0}s)",
        r.seconds,
        budget_seconds()
    );
    assert!(
        (r.compression_ratio - bench.paper_cr).abs() / bench.paper_cr < 0.02,
        "compression ratio {:.0} vs paper {:.0}",
        r.compression_ratio,
        bench.paper_cr
    );
    // Planted rank-4 structure + 1e-4 noise: the rank-capped compile must
    // sit near the noise floor, far below any rank-starved result.
    let err = r.rel_error.expect("sampled error check");
    assert!(err < 1e-2, "reconstruction error {err} above noise floor");
}

/// Every Table 4 layer compiles to a registered engine within budget.
#[test]
#[ignore = "paper-scale: run via scripts/ci.sh with --release"]
fn all_table4_layers_compile_and_register() {
    let (registry, reports) = compile_table4(&CompileOptions::default()).unwrap();
    assert_eq!(registry.len(), 4);
    for r in &reports {
        assert!(
            registry.dims(&r.name) == Some((r.rows, r.cols)),
            "{} not registered with its dimensions",
            r.name
        );
        assert!(
            r.seconds <= budget_seconds(),
            "{} took {:.2}s (budget {:.0}s)",
            r.name,
            r.seconds,
            budget_seconds()
        );
        let paper = r.paper_cr.expect("Table 4 layers carry a paper CR");
        assert!(
            (r.compression_ratio - paper).abs() / paper < 0.02,
            "{}: compression ratio {:.0} vs paper {:.0}",
            r.name,
            r.compression_ratio,
            paper
        );
        assert!(r.rel_error.expect("sampled check") < 1e-2, "{}", r.name);
    }
}

/// The randomized compile path is seeded: two runs with the same options
/// produce bit-identical engines (paper-scale determinism is asserted in
/// the unit/property suites; this uses one mid-size layer).
#[test]
#[ignore = "paper-scale: run via scripts/ci.sh with --release"]
fn paper_scale_compile_is_deterministic() {
    let bench = table4_benchmarks()
        .into_iter()
        .find(|b| b.name == "LSTM-UCF11")
        .expect("LSTM-UCF11 in Table 4");
    let w = synthetic_layer_weights(&bench.shape, 1e-4, 102).unwrap();
    let opts = CompileOptions {
        method: SvdMethod::default(),
        error_check: ErrorCheck::Skip,
    };
    let a = compile_dense_layer("l", &w, &bench.shape, None, &opts).unwrap();
    let b = compile_dense_layer("l", &w, &bench.shape, None, &opts).unwrap();
    for (ca, cb) in a
        .engine
        .matrix()
        .cores()
        .iter()
        .zip(b.engine.matrix().cores())
    {
        assert_eq!(ca.data(), cb.data());
    }
}
