//! The **naive** TT-format inference scheme (paper Eqn. (2)).
//!
//! Every output element `Y(i_1, …, i_d)` is computed independently by the
//! full sum over `(j_1, …, j_d)` of the core-slice product chain. This is
//! the scheme the paper identifies as the bottleneck: output elements that
//! share index prefixes redo identical slice products, so the multiply count
//! is `M · N · Σ_k r_k r_{k-1}` (Eqn. (3)) — orders of magnitude above the
//! compact scheme implemented in `tie-core`.
//!
//! It is retained here as (a) the ground-truth functional reference for the
//! compact scheme and the cycle simulator, and (b) the instrumented baseline
//! for the §3.1 redundancy analysis.

use crate::{matrix::decompose_index, TtMatrix};
use tie_tensor::{Result, Scalar, Tensor, TensorError};

/// Operation counters recorded while executing an inference scheme.
///
/// `mults`/`adds` count scalar arithmetic; `core_reads` counts scalar reads
/// of tensor-core weights (the paper's memory-access argument: the naive
/// scheme re-reads every core per output element, the compact scheme reads
/// each core once per stage).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCount {
    /// Scalar multiplications executed.
    pub mults: u64,
    /// Scalar additions executed.
    pub adds: u64,
    /// Scalar weight reads from tensor cores.
    pub core_reads: u64,
}

impl OpCount {
    /// Sum of two counters.
    pub fn merge(self, other: OpCount) -> OpCount {
        OpCount {
            mults: self.mults + other.mults,
            adds: self.adds + other.adds,
            core_reads: self.core_reads + other.core_reads,
        }
    }
}

/// Naive TT matrix-vector product `y = W x` per Eqn. (2), with counters.
///
/// `x` is the dense input of length `N = ∏ n_k` (row-major mode order,
/// `j_1` most significant — the same convention as
/// [`TtMatrix::from_dense`]).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `x` has the wrong length.
///
/// # Example
///
/// ```
/// use tie_tensor::{Tensor, linalg::{matvec, Truncation}};
/// use tie_tt::{TtMatrix, inference::naive_matvec};
///
/// # fn main() -> Result<(), tie_tensor::TensorError> {
/// let w = Tensor::<f64>::from_fn(vec![4, 6], |i| (i[0] * 6 + i[1]) as f64 * 0.1)?;
/// let x = Tensor::<f64>::from_fn(vec![6], |i| i[0] as f64)?;
/// let tt = TtMatrix::from_dense(&w, &[2, 2], &[2, 3], Truncation::none())?;
/// let (y, count) = naive_matvec(&tt, &x)?;
/// assert!(y.approx_eq(&matvec(&w, &x)?, 1e-9));
/// assert!(count.mults > 0);
/// # Ok(())
/// # }
/// ```
pub fn naive_matvec<T: Scalar>(w: &TtMatrix<T>, x: &Tensor<T>) -> Result<(Tensor<T>, OpCount)> {
    let shape = w.shape();
    let (rows, cols) = (shape.num_rows(), shape.num_cols());
    if x.ndim() != 1 || x.num_elements() != cols {
        return Err(TensorError::ShapeMismatch {
            left: vec![rows, cols],
            right: x.dims().to_vec(),
        });
    }
    let d = shape.ndim();
    let mut count = OpCount::default();
    let mut y = Tensor::zeros(vec![rows]);
    for i in 0..rows {
        let iks = decompose_index(i, &shape.row_modes);
        let mut acc = T::ZERO;
        for j in 0..cols {
            let jks = decompose_index(j, &shape.col_modes);
            // Product chain G_1[i1,j1] … G_d[id,jd]: a running 1 × r_k row
            // vector, exactly the d matrix-vector stages of Fig. 4.
            let mut v = vec![T::ONE];
            for k in 0..d {
                let core = w.cores()[k].data();
                let [_r0, m, n, r1] = {
                    let dd = w.cores()[k].dims();
                    [dd[0], dd[1], dd[2], dd[3]]
                };
                let mut next = vec![T::ZERO; r1];
                for (a, &va) in v.iter().enumerate() {
                    let base = ((a * m + iks[k]) * n + jks[k]) * r1;
                    for (b, nb) in next.iter_mut().enumerate() {
                        *nb += va * core[base + b];
                        count.mults += 1;
                        count.adds += 1;
                        count.core_reads += 1;
                    }
                }
                v = next;
            }
            acc += v[0] * x.data()[j];
            count.mults += 1;
            count.adds += 1;
        }
        y.data_mut()[i] = acc;
    }
    Ok((y, count))
}

/// The **partially parallel** scheme of paper Fig. 5: stage 1 (core `d`)
/// is computed as one matrix product over all inputs — eliminating the
/// redundancy involving `G_d` — but the remaining `d − 1` dimensions are
/// still walked per output element, so their redundancy remains.
///
/// This is the paper's pedagogical midpoint between Eqn. (2) and
/// Algorithm 1; its multiply count sits strictly between them
/// (see `tie_core::counts` for the closed forms).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `x` has the wrong length.
pub fn partial_parallel_matvec<T: Scalar>(
    w: &TtMatrix<T>,
    x: &Tensor<T>,
) -> Result<(Tensor<T>, OpCount)> {
    let shape = w.shape();
    let (rows, cols) = (shape.num_rows(), shape.num_cols());
    if x.ndim() != 1 || x.num_elements() != cols {
        return Err(TensorError::ShapeMismatch {
            left: vec![rows, cols],
            right: x.dims().to_vec(),
        });
    }
    let d = shape.ndim();
    let mut count = OpCount::default();
    // Stage 1: contract core d against the whole input at once:
    // V_d[(i_d, t_{d-1}), prefix] = Σ_{j_d} G_d(t, i_d, j_d, 1) · X(prefix, j_d),
    // where `prefix` is the row-major flat index over (j_1 … j_{d-1}).
    let n_d = shape.col_modes[d - 1];
    let m_d = shape.row_modes[d - 1];
    let r_dm1 = shape.ranks[d - 1];
    let prefixes = cols / n_d;
    let core_d = w.cores()[d - 1].data();
    // vd[(i_d * r + t) * prefixes + p]
    let mut vd = vec![T::ZERO; m_d * r_dm1 * prefixes];
    for p in 0..prefixes {
        for jd in 0..n_d {
            let xv = x.data()[p * n_d + jd];
            for id in 0..m_d {
                for t in 0..r_dm1 {
                    // 4-D core layout [r_{d-1}, m_d, n_d, 1].
                    let g = core_d[(t * m_d + id) * n_d + jd];
                    vd[(id * r_dm1 + t) * prefixes + p] += g * xv;
                    count.mults += 1;
                    count.adds += 1;
                    count.core_reads += 1;
                }
            }
        }
    }
    // Remaining dimensions: per output element, per prefix, walk the
    // slice chain G_1[i1,j1] … G_{d-1}[i_{d-1}, j_{d-1}] · v — the
    // residual redundancy Fig. 5 leaves in place.
    let mut y = Tensor::zeros(vec![rows]);
    let prefix_modes = &shape.col_modes[..d - 1];
    for i in 0..rows {
        let iks = decompose_index(i, &shape.row_modes);
        let id = iks[d - 1];
        let mut acc = T::ZERO;
        for p in 0..prefixes {
            let jks = decompose_index(p, prefix_modes);
            // Right-to-left chain: start with the r_{d-1} vector from V_d.
            let mut v: Vec<T> = (0..r_dm1)
                .map(|t| vd[(id * r_dm1 + t) * prefixes + p])
                .collect();
            for k in (0..d - 1).rev() {
                let core = w.cores()[k].data();
                let [r0, m, n, r1] = {
                    let dd = w.cores()[k].dims();
                    [dd[0], dd[1], dd[2], dd[3]]
                };
                let mut next = vec![T::ZERO; r0];
                for (a, nx) in next.iter_mut().enumerate() {
                    let base = ((a * m + iks[k]) * n + jks[k]) * r1;
                    for (b, &vb) in v.iter().enumerate() {
                        *nx += core[base + b] * vb;
                        count.mults += 1;
                        count.adds += 1;
                        count.core_reads += 1;
                    }
                }
                v = next;
            }
            acc += v[0];
        }
        y.data_mut()[i] = acc;
    }
    Ok((y, count))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TtShape;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use tie_tensor::init;
    use tie_tensor::linalg::matvec;

    #[test]
    fn naive_matches_dense_matvec() {
        let mut rng = ChaCha8Rng::seed_from_u64(40);
        let shape = TtShape::uniform_rank(vec![2, 3, 2], vec![3, 2, 2], 3).unwrap();
        let tt = TtMatrix::<f64>::random(&mut rng, &shape, 0.5).unwrap();
        let w = tt.to_dense().unwrap();
        let x: Tensor<f64> = init::uniform(&mut rng, vec![12], 1.0);
        let (y, _) = naive_matvec(&tt, &x).unwrap();
        let want = matvec(&w, &x).unwrap();
        assert!(
            y.approx_eq(&want, 1e-10),
            "naive TT matvec diverges from dense: {:?} vs {:?}",
            y.data(),
            want.data()
        );
    }

    #[test]
    fn multiplication_count_matches_eqn3_structure() {
        // Eqn. (3): MUL = M * N * Σ_k r_k r_{k-1}; our per-element chain
        // additionally multiplies by x once per (i, j), i.e. + M*N.
        let mut rng = ChaCha8Rng::seed_from_u64(41);
        let shape = TtShape::uniform_rank(vec![2, 2], vec![3, 2], 2).unwrap();
        let tt = TtMatrix::<f64>::random(&mut rng, &shape, 0.5).unwrap();
        let x: Tensor<f64> = init::uniform(&mut rng, vec![6], 1.0);
        let (_, count) = naive_matvec(&tt, &x).unwrap();
        let m = 4u64;
        let n = 6u64;
        let rr: u64 = 4; // r0*r1 + r1*r2 = 1*2 + 2*1
        assert_eq!(count.mults, m * n * rr + m * n);
    }

    #[test]
    fn rejects_wrong_input_length() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let shape = TtShape::uniform_rank(vec![2], vec![3], 1).unwrap();
        let tt = TtMatrix::<f64>::random(&mut rng, &shape, 0.5).unwrap();
        let x = Tensor::<f64>::zeros(vec![4]);
        assert!(naive_matvec(&tt, &x).is_err());
    }

    #[test]
    fn partial_parallel_matches_dense_and_sits_between_schemes() {
        let mut rng = ChaCha8Rng::seed_from_u64(45);
        let shape = TtShape::uniform_rank(vec![2, 3, 2], vec![3, 2, 2], 3).unwrap();
        let tt = TtMatrix::<f64>::random(&mut rng, &shape, 0.5).unwrap();
        let w = tt.to_dense().unwrap();
        let x: Tensor<f64> = init::uniform(&mut rng, vec![12], 1.0);
        let (y_partial, c_partial) = partial_parallel_matvec(&tt, &x).unwrap();
        let want = matvec(&w, &x).unwrap();
        assert!(
            y_partial.approx_eq(&want, 1e-10),
            "partial scheme diverges: {:?} vs {:?}",
            y_partial.data(),
            want.data()
        );
        // Fig. 5's point: fewer multiplies than naive, more than compact.
        let (_, c_naive) = naive_matvec(&tt, &x).unwrap();
        assert!(
            c_partial.mults < c_naive.mults,
            "partial {} !< naive {}",
            c_partial.mults,
            c_naive.mults
        );
        let compact = tie_core_mul_compact_equiv(&shape);
        assert!(
            c_partial.mults > compact,
            "partial {} !> compact {}",
            c_partial.mults,
            compact
        );
    }

    /// Local copy of the compact-count formula (tie-core depends on this
    /// crate, so the real function cannot be imported here).
    fn tie_core_mul_compact_equiv(shape: &TtShape) -> u64 {
        (1..=shape.ndim())
            .map(|h| {
                let n_left: u64 = shape.col_modes[..h - 1].iter().map(|&v| v as u64).product();
                let m_right: u64 = shape.row_modes[h..].iter().map(|&v| v as u64).product();
                (shape.row_modes[h - 1] * shape.ranks[h - 1]) as u64
                    * (shape.col_modes[h - 1] * shape.ranks[h]) as u64
                    * n_left
                    * m_right
            })
            .sum()
    }

    #[test]
    fn partial_parallel_count_matches_closed_form() {
        // mul_partial = r_{d-1}·N·m_d + M·(N/n_d)·Σ_{k<d} r_k r_{k-1}
        let mut rng = ChaCha8Rng::seed_from_u64(46);
        let shape = TtShape::uniform_rank(vec![2, 2, 3], vec![2, 3, 4], 2).unwrap();
        let tt = TtMatrix::<f64>::random(&mut rng, &shape, 0.5).unwrap();
        let x: Tensor<f64> = init::uniform(&mut rng, vec![24], 1.0);
        let (_, c) = partial_parallel_matvec(&tt, &x).unwrap();
        let d = shape.ndim();
        let (m, n) = (shape.num_rows() as u64, shape.num_cols() as u64);
        let stage1 = shape.ranks[d - 1] as u64 * n * shape.row_modes[d - 1] as u64;
        let chain: u64 = (1..d)
            .map(|k| (shape.ranks[k] * shape.ranks[k - 1]) as u64)
            .sum();
        let rest = m * (n / shape.col_modes[d - 1] as u64) * chain;
        assert_eq!(c.mults, stage1 + rest);
    }

    #[test]
    fn opcount_merge_adds_fields() {
        let a = OpCount {
            mults: 1,
            adds: 2,
            core_reads: 3,
        };
        let b = OpCount {
            mults: 10,
            adds: 20,
            core_reads: 30,
        };
        assert_eq!(
            a.merge(b),
            OpCount {
                mults: 11,
                adds: 22,
                core_reads: 33
            }
        );
    }
}
