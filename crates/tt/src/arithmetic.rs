//! Arithmetic in the TT format (no densification).
//!
//! Standard tensor-train algebra (Oseledets 2011 §4): addition and
//! Hadamard products concatenate/Kronecker the cores (ranks add /
//! multiply — recompress with [`crate::TtTensor::rounded`]), inner
//! products contract a Gram chain, and a TT-matrix applied to a TT-vector
//! yields a TT-vector with multiplied ranks. These operations round out
//! the substrate into a general-purpose TT library and power the
//! extension experiments.

use crate::{TtMatrix, TtTensor};
use tie_tensor::{Result, Scalar, Tensor, TensorError};

/// TT addition: `C = A + B` with ranks `r^C_k = r^A_k + r^B_k`
/// (block-diagonal core concatenation; boundary cores concatenate along
/// the single boundary rank).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if mode sizes differ.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use tie_tt::{arithmetic::tt_add, TtTensor};
/// # fn main() -> Result<(), tie_tensor::TensorError> {
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let a = TtTensor::<f64>::random(&mut rng, &[3, 4], &[1, 2, 1], 1.0)?;
/// let b = TtTensor::<f64>::random(&mut rng, &[3, 4], &[1, 2, 1], 1.0)?;
/// let c = tt_add(&a, &b)?;
/// assert_eq!(c.ranks(), vec![1, 4, 1]); // ranks add; round to recompress
/// let want = a.to_dense()?.add(&b.to_dense()?)?;
/// assert!(c.to_dense()?.approx_eq(&want, 1e-10));
/// # Ok(())
/// # }
/// ```
pub fn tt_add<T: Scalar>(a: &TtTensor<T>, b: &TtTensor<T>) -> Result<TtTensor<T>> {
    if a.mode_sizes() != b.mode_sizes() {
        return Err(TensorError::ShapeMismatch {
            left: a.mode_sizes(),
            right: b.mode_sizes(),
        });
    }
    let d = a.ndim();
    if d == 1 {
        // Single core: plain elementwise sum.
        let sum = a.cores()[0].add(&b.cores()[0])?;
        return TtTensor::new(vec![sum]);
    }
    let mut cores = Vec::with_capacity(d);
    for k in 0..d {
        let ca = &a.cores()[k];
        let cb = &b.cores()[k];
        let [ra0, n, ra1] = [ca.dims()[0], ca.dims()[1], ca.dims()[2]];
        let [rb0, _, rb1] = [cb.dims()[0], cb.dims()[1], cb.dims()[2]];
        let (r0, r1) = if k == 0 {
            (1, ra1 + rb1)
        } else if k == d - 1 {
            (ra0 + rb0, 1)
        } else {
            (ra0 + rb0, ra1 + rb1)
        };
        let mut core = Tensor::<T>::zeros(vec![r0, n, r1]);
        // A block at (0..ra0, :, 0..ra1); B block at the diagonal offset.
        let (a_off0, b_off0) = if k == 0 { (0, 0) } else { (0, ra0) };
        let (a_off1, b_off1) = if k == d - 1 { (0, 0) } else { (0, ra1) };
        for j in 0..n {
            for p in 0..ra0 {
                for q in 0..ra1 {
                    let v = ca.get(&[p, j, q])?;
                    core.set(&[a_off0 + p, j, a_off1 + q], v)?;
                }
            }
            for p in 0..rb0 {
                for q in 0..rb1 {
                    let v = cb.get(&[p, j, q])?;
                    core.set(&[b_off0 + p, j, b_off1 + q], v)?;
                }
            }
        }
        cores.push(core);
    }
    TtTensor::new(cores)
}

/// TT scalar multiplication (scales the first core only, so ranks are
/// untouched).
pub fn tt_scale<T: Scalar>(a: &TtTensor<T>, alpha: T) -> TtTensor<T> {
    let mut cores: Vec<Tensor<T>> = a.cores().to_vec();
    cores[0].scale(alpha);
    TtTensor::new(cores).expect("scaling preserves validity")
}

/// TT Hadamard (elementwise) product: `C = A ⊙ B` with ranks
/// `r^C_k = r^A_k · r^B_k` (slice-wise Kronecker products).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if mode sizes differ.
pub fn tt_hadamard<T: Scalar>(a: &TtTensor<T>, b: &TtTensor<T>) -> Result<TtTensor<T>> {
    if a.mode_sizes() != b.mode_sizes() {
        return Err(TensorError::ShapeMismatch {
            left: a.mode_sizes(),
            right: b.mode_sizes(),
        });
    }
    let mut cores = Vec::with_capacity(a.ndim());
    for (ca, cb) in a.cores().iter().zip(b.cores()) {
        let [ra0, n, ra1] = [ca.dims()[0], ca.dims()[1], ca.dims()[2]];
        let [rb0, _, rb1] = [cb.dims()[0], cb.dims()[1], cb.dims()[2]];
        let mut core = Tensor::<T>::zeros(vec![ra0 * rb0, n, ra1 * rb1]);
        for j in 0..n {
            for pa in 0..ra0 {
                for pb in 0..rb0 {
                    for qa in 0..ra1 {
                        for qb in 0..rb1 {
                            let v = ca.get(&[pa, j, qa])? * cb.get(&[pb, j, qb])?;
                            core.set(&[pa * rb0 + pb, j, qa * rb1 + qb], v)?;
                        }
                    }
                }
            }
        }
        cores.push(core);
    }
    TtTensor::new(cores)
}

/// TT inner product `⟨A, B⟩ = Σ A(j…)·B(j…)`, contracted core-by-core in
/// `O(d · n · r⁴)` without densifying.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if mode sizes differ.
pub fn tt_dot<T: Scalar>(a: &TtTensor<T>, b: &TtTensor<T>) -> Result<f64> {
    if a.mode_sizes() != b.mode_sizes() {
        return Err(TensorError::ShapeMismatch {
            left: a.mode_sizes(),
            right: b.mode_sizes(),
        });
    }
    // gram[p][q] over (r^A_k, r^B_k).
    let mut gram = vec![vec![1.0f64]];
    for (ca, cb) in a.cores().iter().zip(b.cores()) {
        let [ra0, n, ra1] = [ca.dims()[0], ca.dims()[1], ca.dims()[2]];
        let [rb0, _, rb1] = [cb.dims()[0], cb.dims()[1], cb.dims()[2]];
        let mut next = vec![vec![0.0f64; rb1]; ra1];
        for j in 0..n {
            // next[qa][qb] += Σ_{pa,pb} gram[pa][pb]·A[pa,j,qa]·B[pb,j,qb]
            #[allow(clippy::needless_range_loop)]
            // rank indices address gram and both cores symmetrically
            for pa in 0..ra0 {
                for pb in 0..rb0 {
                    let g = gram[pa][pb];
                    if g == 0.0 {
                        continue;
                    }
                    for qa in 0..ra1 {
                        let av = ca.get(&[pa, j, qa])?.to_f64();
                        if av == 0.0 {
                            continue;
                        }
                        for qb in 0..rb1 {
                            let bv = cb.get(&[pb, j, qb])?.to_f64();
                            next[qa][qb] += g * av * bv;
                        }
                    }
                }
            }
        }
        gram = next;
    }
    Ok(gram[0][0])
}

/// Applies a TT matrix to a TT vector: `y = W·x` entirely in TT format,
/// with output ranks `r^y_k = r^W_k · r^x_k`. This is how TT algebra
/// composes without ever touching a dense object; recompress the result
/// with [`crate::TtTensor::rounded`].
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the matrix column modes do
/// not match the vector modes.
pub fn tt_matvec<T: Scalar>(w: &TtMatrix<T>, x: &TtTensor<T>) -> Result<TtTensor<T>> {
    let shape = w.shape();
    if shape.col_modes != x.mode_sizes() {
        return Err(TensorError::ShapeMismatch {
            left: shape.col_modes.clone(),
            right: x.mode_sizes(),
        });
    }
    let mut cores = Vec::with_capacity(w.ndim());
    for (k, (cw, cx)) in w.cores().iter().zip(x.cores()).enumerate() {
        let [rw0, m, n, rw1] = [cw.dims()[0], cw.dims()[1], cw.dims()[2], cw.dims()[3]];
        let [rx0, _, rx1] = [cx.dims()[0], cx.dims()[1], cx.dims()[2]];
        let mut core = Tensor::<T>::zeros(vec![rw0 * rx0, m, rw1 * rx1]);
        for i in 0..m {
            for pw in 0..rw0 {
                for px in 0..rx0 {
                    for qw in 0..rw1 {
                        for qx in 0..rx1 {
                            let mut acc = T::ZERO;
                            for j in 0..n {
                                acc += cw.get(&[pw, i, j, qw])? * cx.get(&[px, j, qx])?;
                            }
                            core.set(&[pw * rx0 + px, i, qw * rx1 + qx], acc)?;
                        }
                    }
                }
            }
        }
        let _ = k;
        cores.push(core);
    }
    TtTensor::new(cores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TtShape;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use tie_tensor::linalg::Truncation;

    fn pair(seed: u64) -> (TtTensor<f64>, TtTensor<f64>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a = TtTensor::random(&mut rng, &[3, 4, 2], &[1, 2, 3, 1], 1.0).unwrap();
        let b = TtTensor::random(&mut rng, &[3, 4, 2], &[1, 3, 2, 1], 1.0).unwrap();
        (a, b)
    }

    #[test]
    fn add_matches_dense_sum_and_ranks_add() {
        let (a, b) = pair(600);
        let c = tt_add(&a, &b).unwrap();
        let want = a.to_dense().unwrap().add(&b.to_dense().unwrap()).unwrap();
        assert!(c.to_dense().unwrap().approx_eq(&want, 1e-10));
        assert_eq!(c.ranks(), vec![1, 5, 5, 1]);
        // And rounding recompresses the sum back down when possible.
        let zero_sum = tt_add(&a, &tt_scale(&a, -1.0)).unwrap();
        let rounded = zero_sum.rounded(Truncation::tolerance(1e-10)).unwrap();
        assert!(rounded.ranks().iter().all(|&r| r == 1));
        assert!(rounded.to_dense().unwrap().max_abs() < 1e-9);
    }

    #[test]
    fn add_single_core() {
        let a = TtTensor::new(vec![
            Tensor::from_vec(vec![1, 3, 1], vec![1., 2., 3.]).unwrap()
        ])
        .unwrap();
        let b = TtTensor::new(vec![
            Tensor::from_vec(vec![1, 3, 1], vec![4., 5., 6.]).unwrap()
        ])
        .unwrap();
        let c = tt_add(&a, &b).unwrap();
        assert_eq!(c.to_dense().unwrap().data(), &[5., 7., 9.]);
    }

    #[test]
    fn add_rejects_mode_mismatch() {
        let mut rng = ChaCha8Rng::seed_from_u64(601);
        let a = TtTensor::<f64>::random(&mut rng, &[2, 3], &[1, 2, 1], 1.0).unwrap();
        let b = TtTensor::<f64>::random(&mut rng, &[3, 2], &[1, 2, 1], 1.0).unwrap();
        assert!(tt_add(&a, &b).is_err());
        assert!(tt_hadamard(&a, &b).is_err());
        assert!(tt_dot(&a, &b).is_err());
    }

    #[test]
    fn scale_matches_dense() {
        let (a, _) = pair(602);
        let s = tt_scale(&a, -2.5);
        let want = a.to_dense().unwrap().scaled(-2.5);
        assert!(s.to_dense().unwrap().approx_eq(&want, 1e-10));
        assert_eq!(s.ranks(), a.ranks(), "scaling must not change ranks");
    }

    #[test]
    fn hadamard_matches_dense_and_ranks_multiply() {
        let (a, b) = pair(603);
        let c = tt_hadamard(&a, &b).unwrap();
        let want = a
            .to_dense()
            .unwrap()
            .hadamard(&b.to_dense().unwrap())
            .unwrap();
        assert!(c.to_dense().unwrap().approx_eq(&want, 1e-10));
        assert_eq!(c.ranks(), vec![1, 6, 6, 1]);
    }

    #[test]
    fn dot_matches_dense_inner_product() {
        let (a, b) = pair(604);
        let got = tt_dot(&a, &b).unwrap();
        let want: f64 = a
            .to_dense()
            .unwrap()
            .data()
            .iter()
            .zip(b.to_dense().unwrap().data())
            .map(|(&x, &y)| x * y)
            .sum();
        assert!((got - want).abs() < 1e-9, "{got} vs {want}");
        // Self inner product equals squared Frobenius norm.
        let self_dot = tt_dot(&a, &a).unwrap();
        assert!((self_dot.sqrt() - a.frobenius_norm()).abs() < 1e-9);
    }

    #[test]
    fn tt_matvec_matches_dense_path() {
        let mut rng = ChaCha8Rng::seed_from_u64(605);
        let shape = TtShape::uniform_rank(vec![2, 3], vec![3, 2], 2).unwrap();
        let w = TtMatrix::<f64>::random(&mut rng, &shape, 0.8).unwrap();
        let x = TtTensor::<f64>::random(&mut rng, &[3, 2], &[1, 2, 1], 1.0).unwrap();
        let y = tt_matvec(&w, &x).unwrap();
        assert_eq!(y.mode_sizes(), vec![2, 3]);
        assert_eq!(y.ranks(), vec![1, 4, 1]);
        // Dense check: y as tensor (m1, m2) vs W_dense · x_dense with
        // row-major index order on both sides.
        let dense_w = w.to_dense().unwrap();
        let dense_x = x.to_dense().unwrap().reshaped(vec![6]).unwrap();
        let want = tie_tensor::linalg::matvec(&dense_w, &dense_x).unwrap();
        let got = y.to_dense().unwrap().reshaped(vec![6]).unwrap();
        assert!(
            got.approx_eq(&want, 1e-9),
            "{:?} vs {:?}",
            got.data(),
            want.data()
        );
    }

    #[test]
    fn tt_matvec_rejects_mode_mismatch() {
        let mut rng = ChaCha8Rng::seed_from_u64(606);
        let shape = TtShape::uniform_rank(vec![2, 2], vec![3, 2], 2).unwrap();
        let w = TtMatrix::<f64>::random(&mut rng, &shape, 0.8).unwrap();
        let x = TtTensor::<f64>::random(&mut rng, &[2, 3], &[1, 2, 1], 1.0).unwrap();
        assert!(tt_matvec(&w, &x).is_err());
    }
}
