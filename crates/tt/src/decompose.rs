//! TT-SVD: decomposing a dense tensor into tensor-train format.
//!
//! This is the standard algorithm of Oseledets (2011), Algorithm 1: sweep
//! over the dimensions, at each step computing a truncated SVD of the
//! current unfolding matrix; the left factor becomes the next TT core and
//! the right factor carries on.

use crate::TtTensor;
use tie_tensor::linalg::{truncated_svd_with, SvdMethod, Truncation};
use tie_tensor::{Result, Scalar, Tensor};

/// Decomposes a dense tensor into TT format.
///
/// `trunc` controls the rank growth at every internal SVD:
/// [`Truncation::none`] gives an (up to numerical noise) exact
/// decomposition, [`Truncation::rank`] caps every interior rank (the
/// configuration used throughout the paper, e.g. `r = 4`), and
/// [`Truncation::tolerance`] implements the delta-truncation rule.
///
/// For a *relative* target error `ε` over the whole tensor, pass
/// `Truncation::tolerance(ε · ‖A‖_F / sqrt(d−1))` — each of the `d−1` SVDs
/// then contributes at most its share of the budget, and the total error is
/// bounded by `ε · ‖A‖_F` (Oseledets, Thm. 2.2). [`tt_svd_relative`] wraps
/// exactly that.
///
/// # Errors
///
/// Propagates SVD convergence failures and shape errors from the substrate.
///
/// # Example
///
/// ```
/// use tie_tensor::{Tensor, linalg::Truncation};
/// use tie_tt::decompose::tt_svd;
///
/// # fn main() -> Result<(), tie_tensor::TensorError> {
/// let a = Tensor::<f64>::from_fn(vec![2, 3, 4], |i| (i[0] + i[1] + i[2]) as f64)?;
/// let tt = tt_svd(&a, Truncation::none())?;
/// assert_eq!(tt.mode_sizes(), vec![2, 3, 4]);
/// assert!(tt.to_dense()?.approx_eq(&a, 1e-10));
/// # Ok(())
/// # }
/// ```
pub fn tt_svd<T: Scalar>(tensor: &Tensor<T>, trunc: Truncation) -> Result<TtTensor<T>> {
    tt_svd_with(tensor, trunc, SvdMethod::default())
}

/// [`tt_svd`] with explicit SVD algorithm selection per unfolding.
///
/// [`SvdMethod::default`] (`Auto`) sends small unfoldings to exact Jacobi
/// and large rank-capped or extremely thin ones to the seeded randomized
/// SVD; pass [`SvdMethod::Jacobi`] to pin the legacy exact path or
/// [`SvdMethod::Randomized`] to force the sketch with explicit parameters.
/// The method (and its seed) fully determines the result: the randomized
/// path is bit-identical for a fixed seed at any `TIE_THREADS` setting.
///
/// # Errors
///
/// Propagates SVD convergence failures and shape errors from the substrate.
pub fn tt_svd_with<T: Scalar>(
    tensor: &Tensor<T>,
    trunc: Truncation,
    method: SvdMethod,
) -> Result<TtTensor<T>> {
    tt_svd_owned(tensor.clone(), trunc, method)
}

/// [`tt_svd_with`] taking the tensor by value.
///
/// The sweep only ever *reshapes* the remainder between SVDs, which is a
/// metadata change on a row-major tensor — owning the input lets every
/// step run copy-free where the borrowed entry points must clone.  For a
/// paper-scale FC layer (822 MB dense) that removes several full-buffer
/// memcpys from the compile path; callers that already own the tensor
/// (e.g. `TtMatrix::from_dense`, which builds the fused tensor itself)
/// should prefer this entry point.
///
/// # Errors
///
/// Propagates SVD convergence failures and shape errors from the substrate.
pub fn tt_svd_owned<T: Scalar>(
    tensor: Tensor<T>,
    trunc: Truncation,
    method: SvdMethod,
) -> Result<TtTensor<T>> {
    let modes = tensor.dims().to_vec();
    let d = modes.len();
    let mut cores = Vec::with_capacity(d);
    // C is the remainder matrix, (r_{k-1} * n_k) × (rest) at step k.
    // All reshapes below are in-place metadata changes, never copies.
    let mut c = tensor;
    let mut r_prev = 1usize;
    for (k, &nk) in modes.iter().enumerate().take(d - 1) {
        let rest = c.num_elements() / (r_prev * nk);
        c.reshape(vec![r_prev * nk, rest])?;
        let svd = truncated_svd_with(&c, trunc, method)?;
        let rk = svd.s.len();
        let mut u = svd.u;
        u.reshape(vec![r_prev, nk, rk])?;
        cores.push(u);
        // C ← diag(S) · Vᵀ  (rk × rest)
        let mut sv = svd.vt;
        for i in 0..rk {
            let row = &mut sv.data_mut()[i * rest..(i + 1) * rest];
            for v in row.iter_mut() {
                *v *= svd.s[i];
            }
        }
        // Prepare for the next step: fold the produced rank into the row
        // dimension of the next unfolding.
        let next_n = modes[k + 1];
        sv.reshape(vec![rk * next_n, rest / next_n])?;
        c = sv;
        r_prev = rk;
    }
    // Last core is the remainder itself.
    c.reshape(vec![r_prev, modes[d - 1], 1])?;
    cores.push(c);
    TtTensor::new(cores)
}

/// TT-SVD with a *relative* Frobenius error target over the whole tensor.
///
/// Distributes the budget `rel_tol · ‖A‖_F` uniformly over the `d − 1`
/// internal SVDs. `max_rank`, when given, additionally caps every interior
/// rank.
///
/// # Errors
///
/// Propagates [`tt_svd`] errors.
pub fn tt_svd_relative<T: Scalar>(
    tensor: &Tensor<T>,
    rel_tol: f64,
    max_rank: Option<usize>,
) -> Result<TtTensor<T>> {
    tt_svd_relative_with(tensor, rel_tol, max_rank, SvdMethod::default())
}

/// [`tt_svd_relative`] with explicit SVD algorithm selection.
///
/// # Errors
///
/// Propagates [`tt_svd_with`] errors.
pub fn tt_svd_relative_with<T: Scalar>(
    tensor: &Tensor<T>,
    rel_tol: f64,
    max_rank: Option<usize>,
    method: SvdMethod,
) -> Result<TtTensor<T>> {
    let d = tensor.ndim().max(2);
    let budget = rel_tol * tensor.frobenius_norm() / ((d - 1) as f64).sqrt();
    let trunc = Truncation {
        max_rank,
        frobenius_tol: budget,
    };
    tt_svd_with(tensor, trunc, method)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use tie_tensor::init;

    #[test]
    fn exact_decomposition_roundtrips() {
        let mut rng = ChaCha8Rng::seed_from_u64(20);
        for dims in [vec![2, 3, 4], vec![5, 2], vec![2, 2, 2, 2, 2], vec![7]] {
            let a: Tensor<f64> = init::uniform(&mut rng, dims.clone(), 1.0);
            let tt = tt_svd(&a, Truncation::none()).unwrap();
            let back = tt.to_dense().unwrap();
            assert!(
                back.approx_eq(&a, 1e-9),
                "roundtrip failed for {dims:?}: rel err {}",
                back.relative_error(&a).unwrap()
            );
        }
    }

    #[test]
    fn ranks_bounded_by_unfolding_dims() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let a: Tensor<f64> = init::uniform(&mut rng, vec![3, 4, 5], 1.0);
        let tt = tt_svd(&a, Truncation::none()).unwrap();
        let r = tt.ranks();
        // r_1 <= n_1, r_2 <= n_3 (from the right), standard TT rank bounds.
        assert!(r[1] <= 3);
        assert!(r[2] <= 5);
    }

    #[test]
    fn low_rank_structure_is_detected() {
        // A separable tensor A(i,j,k) = x_i * y_j * z_k has all TT ranks 1.
        let x = [1.0, -2.0, 0.5];
        let y = [3.0, 1.0];
        let z = [0.2, 0.4, 0.8, 1.6];
        let a = Tensor::<f64>::from_fn(vec![3, 2, 4], |i| x[i[0]] * y[i[1]] * z[i[2]]).unwrap();
        let tt = tt_svd(&a, Truncation::tolerance(1e-10)).unwrap();
        assert_eq!(tt.ranks(), vec![1, 1, 1, 1]);
        assert!(tt.to_dense().unwrap().approx_eq(&a, 1e-10));
    }

    #[test]
    fn rank_cap_is_respected() {
        let mut rng = ChaCha8Rng::seed_from_u64(22);
        let a: Tensor<f64> = init::uniform(&mut rng, vec![4, 4, 4, 4], 1.0);
        let tt = tt_svd(&a, Truncation::rank(2)).unwrap();
        assert!(tt.ranks().iter().all(|&r| r <= 2));
        // With capped ranks the reconstruction is approximate but finite.
        let back = tt.to_dense().unwrap();
        assert!(back.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn relative_tolerance_bounds_total_error() {
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        // Low-rank + small noise: decomposing with rel_tol above the noise
        // floor must give error <= rel_tol.
        let base = crate::TtTensor::<f64>::random(&mut rng, &[4, 4, 4], &[1, 2, 2, 1], 1.0)
            .unwrap()
            .to_dense()
            .unwrap();
        let noise: Tensor<f64> = init::uniform(&mut rng, vec![4, 4, 4], 1e-6);
        let a = base.add(&noise).unwrap();
        let tt = tt_svd_relative(&a, 1e-3, None).unwrap();
        let err = tt.to_dense().unwrap().relative_error(&a).unwrap();
        assert!(err <= 1e-3, "relative error {err} exceeds target");
        // And it should have found the low ranks.
        assert!(tt.ranks().iter().all(|&r| r <= 2 || r == 1));
    }

    #[test]
    fn decomposition_of_2d_matrix_matches_svd_rank() {
        // For a 2-D tensor TT-SVD is just an SVD; rank of identity is n.
        let a = Tensor::<f64>::eye(4);
        let tt = tt_svd(&a, Truncation::tolerance(1e-12)).unwrap();
        assert_eq!(tt.ranks()[1], 4);
        assert!(tt.to_dense().unwrap().approx_eq(&a, 1e-10));
    }
}
