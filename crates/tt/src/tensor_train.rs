use tie_tensor::linalg::{matmul, qr, truncated_svd_with, SvdMethod, Truncation};
use tie_tensor::{Result, Scalar, Tensor, TensorError};

use rand::Rng;

/// A `d`-dimensional tensor stored in tensor-train format.
///
/// The tensor `A ∈ R^{n_1 × … × n_d}` is represented by `d` *cores*
/// `G_k ∈ R^{r_{k-1} × n_k × r_k}` with boundary ranks `r_0 = r_d = 1`
/// (paper §2.1, Eqn. (1)):
///
/// ```text
/// A(j_1, …, j_d) = G_1[j_1] · G_2[j_2] ⋯ G_d[j_d]
/// ```
///
/// where `G_k[j_k]` is the `r_{k-1} × r_k` slice of the `k`-th core.
///
/// # Example
///
/// ```
/// use tie_tensor::{Tensor, linalg::Truncation};
/// use tie_tt::decompose::tt_svd;
///
/// # fn main() -> Result<(), tie_tensor::TensorError> {
/// let a = Tensor::<f64>::from_fn(vec![3, 4, 5], |i| (i[0] + i[1] * i[2]) as f64)?;
/// let tt = tt_svd(&a, Truncation::none())?;
/// assert!(tt.to_dense()?.approx_eq(&a, 1e-9));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TtTensor<T: Scalar> {
    cores: Vec<Tensor<T>>,
}

impl<T: Scalar> TtTensor<T> {
    /// Builds a TT tensor from explicit cores, validating the rank chain.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if any core is not 3-D, the
    /// ranks do not chain (`r_k` of core `k` must equal `r_k` of core
    /// `k+1`), or the boundary ranks are not 1.
    pub fn new(cores: Vec<Tensor<T>>) -> Result<Self> {
        if cores.is_empty() {
            return Err(TensorError::InvalidArgument {
                message: "TT tensor needs at least one core".into(),
            });
        }
        for (k, c) in cores.iter().enumerate() {
            if c.ndim() != 3 {
                return Err(TensorError::InvalidArgument {
                    message: format!("core {k} must be 3-d, has {} dims", c.ndim()),
                });
            }
        }
        if cores[0].dims()[0] != 1 || cores[cores.len() - 1].dims()[2] != 1 {
            return Err(TensorError::InvalidArgument {
                message: "boundary TT ranks must be 1".into(),
            });
        }
        for w in cores.windows(2) {
            if w[0].dims()[2] != w[1].dims()[0] {
                return Err(TensorError::InvalidArgument {
                    message: format!(
                        "rank chain broken: {} -> {}",
                        w[0].dims()[2],
                        w[1].dims()[0]
                    ),
                });
            }
        }
        Ok(TtTensor { cores })
    }

    /// Random TT tensor with the given mode sizes and interior ranks
    /// (elements uniform in `[-scale, scale]`).
    ///
    /// `ranks` must have `modes.len() + 1` entries with 1 at both ends.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] on inconsistent arguments.
    pub fn random<R: Rng>(
        rng: &mut R,
        modes: &[usize],
        ranks: &[usize],
        scale: f64,
    ) -> Result<Self> {
        if ranks.len() != modes.len() + 1 {
            return Err(TensorError::InvalidArgument {
                message: format!("need {} ranks, got {}", modes.len() + 1, ranks.len()),
            });
        }
        let cores = (0..modes.len())
            .map(|k| tie_tensor::init::uniform(rng, vec![ranks[k], modes[k], ranks[k + 1]], scale))
            .collect();
        TtTensor::new(cores)
    }

    /// The TT cores.
    pub fn cores(&self) -> &[Tensor<T>] {
        &self.cores
    }

    /// Consumes the value and returns the cores.
    pub fn into_cores(self) -> Vec<Tensor<T>> {
        self.cores
    }

    /// Number of TT dimensions `d`.
    pub fn ndim(&self) -> usize {
        self.cores.len()
    }

    /// Mode sizes `n_1 … n_d`.
    pub fn mode_sizes(&self) -> Vec<usize> {
        self.cores.iter().map(|c| c.dims()[1]).collect()
    }

    /// Ranks `r_0 … r_d`.
    pub fn ranks(&self) -> Vec<usize> {
        let mut r: Vec<usize> = self.cores.iter().map(|c| c.dims()[0]).collect();
        r.push(1);
        r
    }

    /// Total parameters stored (`Σ_k r_{k-1} n_k r_k`).
    pub fn num_params(&self) -> usize {
        self.cores.iter().map(Tensor::num_elements).sum()
    }

    /// Number of elements of the represented dense tensor (`∏ n_k`).
    pub fn dense_elements(&self) -> usize {
        self.mode_sizes().iter().product()
    }

    /// Evaluates a single element `A(j_1, …, j_d)` by multiplying core
    /// slices (Eqn. (1) of the paper).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for a bad index.
    pub fn get(&self, index: &[usize]) -> Result<T> {
        if index.len() != self.ndim() {
            return Err(TensorError::IndexOutOfBounds {
                index: index.to_vec(),
                shape: self.mode_sizes(),
            });
        }
        // Running row vector of length r_k.
        let mut v = vec![T::ONE];
        for (k, core) in self.cores.iter().enumerate() {
            let [r0, n, r1] = [core.dims()[0], core.dims()[1], core.dims()[2]];
            let j = index[k];
            if j >= n {
                return Err(TensorError::IndexOutOfBounds {
                    index: index.to_vec(),
                    shape: self.mode_sizes(),
                });
            }
            let mut next = vec![T::ZERO; r1];
            let d = core.data();
            for (a, &va) in v.iter().enumerate() {
                if va == T::ZERO {
                    continue;
                }
                let base = a * n * r1 + j * r1;
                for (b, nb) in next.iter_mut().enumerate() {
                    *nb += va * d[base + b];
                }
            }
            debug_assert_eq!(v.len(), r0);
            v = next;
        }
        Ok(v[0])
    }

    /// Reconstructs the dense tensor by sequential core contraction.
    ///
    /// Memory scales with the dense size — intended for validation and for
    /// small layers, not for the full VGG-sized experiments.
    ///
    /// # Errors
    ///
    /// Propagates internal shape errors (cannot occur for a valid TT).
    pub fn to_dense(&self) -> Result<Tensor<T>> {
        // B starts as 1 × 1; after absorbing core k it is (∏_{t≤k} n_t) × r_k.
        let mut b = Tensor::<T>::filled(vec![1, 1], T::ONE)?;
        for core in &self.cores {
            let [r0, n, r1] = [core.dims()[0], core.dims()[1], core.dims()[2]];
            let unfolded = core.reshaped(vec![r0, n * r1])?;
            let prod = matmul(&b, &unfolded)?; // P × (n r1)
            let p = prod.nrows()?;
            b = prod.reshaped(vec![p * n, r1])?;
        }
        b.reshaped(self.mode_sizes())
    }

    /// TT rounding (recompression): re-truncates the ranks of an existing TT
    /// tensor without densifying, via a left-to-right QR sweep followed by a
    /// right-to-left truncated-SVD sweep (Oseledets 2011, Alg. 2).
    ///
    /// `trunc` is applied at every internal SVD; with
    /// [`Truncation::rank`] it caps every interior rank, with
    /// [`Truncation::tolerance`] the per-step absolute Frobenius budget.
    ///
    /// # Errors
    ///
    /// Propagates SVD convergence or shape errors.
    pub fn rounded(&self, trunc: Truncation) -> Result<Self> {
        self.rounded_with(trunc, SvdMethod::default())
    }

    /// [`TtTensor::rounded`] with explicit SVD algorithm selection for the
    /// right-to-left truncation sweep (see
    /// [`tie_tensor::linalg::truncated_svd_with`] for the `Auto` rule).
    ///
    /// # Errors
    ///
    /// Propagates SVD convergence or shape errors.
    pub fn rounded_with(&self, trunc: Truncation, method: SvdMethod) -> Result<Self> {
        let d = self.ndim();
        if d == 1 {
            return Ok(self.clone());
        }
        let mut cores = self.cores.clone();
        // Left-to-right QR orthogonalization.
        for k in 0..d - 1 {
            let [r0, n, r1] = [cores[k].dims()[0], cores[k].dims()[1], cores[k].dims()[2]];
            let unfolded = cores[k].reshaped(vec![r0 * n, r1])?;
            let f = qr(&unfolded)?;
            let rnew = f.q.ncols()?;
            cores[k] = f.q.reshaped(vec![r0, n, rnew])?;
            let [s0, m, s1] = [
                cores[k + 1].dims()[0],
                cores[k + 1].dims()[1],
                cores[k + 1].dims()[2],
            ];
            let next_unf = cores[k + 1].reshaped(vec![s0, m * s1])?;
            let merged = matmul(&f.r, &next_unf)?;
            cores[k + 1] = merged.reshaped(vec![rnew, m, s1])?;
        }
        // Right-to-left truncated SVD.
        for k in (1..d).rev() {
            let [r0, n, r1] = [cores[k].dims()[0], cores[k].dims()[1], cores[k].dims()[2]];
            let unfolded = cores[k].reshaped(vec![r0, n * r1])?;
            let svd = truncated_svd_with(&unfolded, trunc, method)?;
            let rnew = svd.s.len();
            cores[k] = svd.vt.reshaped(vec![rnew, n, r1])?;
            // Absorb U·diag(S) into the previous core.
            let mut us = svd.u; // r0 × rnew
            for i in 0..r0 {
                for j in 0..rnew {
                    let off = i * rnew + j;
                    let cur = us.data()[off];
                    us.data_mut()[off] = cur * svd.s[j];
                }
            }
            let [p0, m, _p1] = [
                cores[k - 1].dims()[0],
                cores[k - 1].dims()[1],
                cores[k - 1].dims()[2],
            ];
            let prev_unf = cores[k - 1].reshaped(vec![p0 * m, r0])?;
            let merged = matmul(&prev_unf, &us)?;
            cores[k - 1] = merged.reshaped(vec![p0, m, rnew])?;
        }
        TtTensor::new(cores)
    }

    /// Frobenius norm of the represented tensor, computed stably from a
    /// right-orthogonalized copy would be overkill here; we contract the
    /// Gram chain instead (exact, no densification).
    pub fn frobenius_norm(&self) -> f64 {
        // gram is the r_k × r_k matrix  Σ_{j≤k} (prefix contraction)ᵀ(prefix)
        let mut gram = vec![1.0f64];
        let mut rk = 1usize;
        for core in &self.cores {
            let [r0, n, r1] = [core.dims()[0], core.dims()[1], core.dims()[2]];
            let mut next = vec![0.0f64; r1 * r1];
            let d = core.data();
            for j in 0..n {
                // slice S = core[:, j, :] (r0 × r1): next += Sᵀ gram S
                for a in 0..r0 {
                    for b in 0..r0 {
                        let g = gram[a * rk + b];
                        if g == 0.0 {
                            continue;
                        }
                        for p in 0..r1 {
                            let sa = d[a * n * r1 + j * r1 + p].to_f64();
                            if sa == 0.0 {
                                continue;
                            }
                            for q in 0..r1 {
                                let sb = d[b * n * r1 + j * r1 + q].to_f64();
                                next[p * r1 + q] += sa * g * sb;
                            }
                        }
                    }
                }
            }
            gram = next;
            rk = r1;
        }
        gram[0].max(0.0).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::tt_svd;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn new_validates_chain() {
        let c1 = Tensor::<f64>::zeros(vec![1, 3, 2]);
        let c2 = Tensor::<f64>::zeros(vec![2, 4, 1]);
        assert!(TtTensor::new(vec![c1.clone(), c2.clone()]).is_ok());
        let bad = Tensor::<f64>::zeros(vec![3, 4, 1]);
        assert!(TtTensor::new(vec![c1.clone(), bad]).is_err());
        let not3d = Tensor::<f64>::zeros(vec![2, 2]);
        assert!(TtTensor::new(vec![not3d]).is_err());
        let badboundary = Tensor::<f64>::zeros(vec![2, 3, 1]);
        assert!(TtTensor::new(vec![badboundary]).is_err());
        assert!(TtTensor::<f64>::new(vec![]).is_err());
    }

    #[test]
    fn metadata_accessors() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let tt = TtTensor::<f64>::random(&mut rng, &[3, 4, 5], &[1, 2, 3, 1], 1.0).unwrap();
        assert_eq!(tt.ndim(), 3);
        assert_eq!(tt.mode_sizes(), vec![3, 4, 5]);
        assert_eq!(tt.ranks(), vec![1, 2, 3, 1]);
        assert_eq!(tt.num_params(), 6 + 24 + 15); // 1*3*2 + 2*4*3 + 3*5*1
        assert_eq!(tt.dense_elements(), 60);
    }

    #[test]
    fn get_matches_to_dense() {
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let tt = TtTensor::<f64>::random(&mut rng, &[2, 3, 4], &[1, 3, 2, 1], 1.0).unwrap();
        let dense = tt.to_dense().unwrap();
        for j0 in 0..2 {
            for j1 in 0..3 {
                for j2 in 0..4 {
                    let a = tt.get(&[j0, j1, j2]).unwrap();
                    let b = dense.get(&[j0, j1, j2]).unwrap();
                    assert!((a - b).abs() < 1e-12, "mismatch at ({j0},{j1},{j2})");
                }
            }
        }
    }

    #[test]
    fn get_rejects_bad_index() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let tt = TtTensor::<f64>::random(&mut rng, &[2, 2], &[1, 2, 1], 1.0).unwrap();
        assert!(tt.get(&[0]).is_err());
        assert!(tt.get(&[0, 2]).is_err());
    }

    #[test]
    fn frobenius_norm_matches_dense() {
        let mut rng = ChaCha8Rng::seed_from_u64(14);
        let tt = TtTensor::<f64>::random(&mut rng, &[3, 4, 2, 3], &[1, 2, 4, 2, 1], 1.0).unwrap();
        let dense = tt.to_dense().unwrap();
        assert!(
            (tt.frobenius_norm() - dense.frobenius_norm()).abs() < 1e-9,
            "gram-chain norm {} vs dense {}",
            tt.frobenius_norm(),
            dense.frobenius_norm()
        );
    }

    #[test]
    fn rounding_reduces_inflated_ranks_exactly() {
        // Build a genuinely low-rank tensor, then inflate its ranks by
        // decomposing the dense form with no truncation, and check rounding
        // recovers a small rank without losing accuracy.
        let mut rng = ChaCha8Rng::seed_from_u64(15);
        let low = TtTensor::<f64>::random(&mut rng, &[4, 4, 4], &[1, 2, 2, 1], 1.0).unwrap();
        let dense = low.to_dense().unwrap();
        let fat = tt_svd(&dense, Truncation::none()).unwrap();
        let rounded = fat.rounded(Truncation::tolerance(1e-10)).unwrap();
        assert!(rounded.ranks().iter().max() <= low.ranks().iter().max());
        assert!(rounded.to_dense().unwrap().approx_eq(&dense, 1e-8));
    }

    #[test]
    fn rounding_with_rank_cap() {
        let mut rng = ChaCha8Rng::seed_from_u64(16);
        let tt = TtTensor::<f64>::random(&mut rng, &[4, 4, 4], &[1, 4, 4, 1], 1.0).unwrap();
        let rounded = tt.rounded(Truncation::rank(2)).unwrap();
        assert!(rounded.ranks().iter().all(|&r| r <= 2 || r == 1));
        // Error should equal the best rank-2 approximation's error scale
        // (not checked numerically here; just shape sanity).
        assert_eq!(rounded.mode_sizes(), tt.mode_sizes());
    }

    #[test]
    fn single_core_roundtrip() {
        let c = Tensor::<f64>::from_vec(vec![1, 5, 1], vec![1., 2., 3., 4., 5.]).unwrap();
        let tt = TtTensor::new(vec![c]).unwrap();
        let dense = tt.to_dense().unwrap();
        assert_eq!(dense.dims(), &[5]);
        assert_eq!(dense.data(), &[1., 2., 3., 4., 5.]);
        let rounded = tt.rounded(Truncation::none()).unwrap();
        assert_eq!(rounded, tt);
    }
}
