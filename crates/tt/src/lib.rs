//! Tensor-train (TT) decomposition substrate for the TIE reproduction.
//!
//! The TIE paper (ISCA '19) accelerates inference over DNN layers stored in
//! the TT format of Oseledets (SIAM J. Sci. Comput. 2011), as applied to
//! neural networks by Novikov et al. (NIPS '15). This crate implements that
//! representation from scratch:
//!
//! * [`TtShape`] — the `(d, m, n, r)` bookkeeping the whole workspace shares
//!   (it is exactly the per-workload tuple of the paper's Table 4),
//! * [`TtTensor`] — a `d`-dimensional tensor in TT format (3-D cores
//!   `r_{k-1} × n_k × r_k`), built by [`decompose::tt_svd`],
//! * [`TtMatrix`] — a matrix in TT-matrix format (4-D cores
//!   `r_{k-1} × m_k × n_k × r_k`, Eqn. (2) of the paper),
//! * [`inference`] — the *naive* TT inference scheme of Eqn. (2), kept as the
//!   reference (and redundancy-counting) baseline for `tie-core`'s compact
//!   scheme,
//! * [`compression`] — parameter-count and compression-ratio arithmetic
//!   (Tables 1–4),
//! * [`ring`] — the tensor-ring (TT-ring) variant the paper cites as an
//!   extension.
//!
//! # Example
//!
//! ```
//! use tie_tensor::Tensor;
//! use tie_tt::{TtMatrix, TtShape};
//! use tie_tensor::linalg::Truncation;
//!
//! # fn main() -> Result<(), tie_tensor::TensorError> {
//! // A 6x6 weight matrix factored as (2*3) x (3*2), full rank.
//! let shape = TtShape::new(vec![2, 3], vec![3, 2], vec![1, 6, 1])?;
//! let w = Tensor::<f64>::from_fn(vec![6, 6], |i| (i[0] * 6 + i[1]) as f64 * 0.1)?;
//! let tt = TtMatrix::from_dense(&w, &shape.row_modes, &shape.col_modes, Truncation::none())?;
//! let back = tt.to_dense()?;
//! assert!(back.approx_eq(&w, 1e-9));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod matrix;
mod shape;
mod tensor_train;

pub mod arithmetic;
pub mod compression;
pub mod decompose;
pub mod inference;
pub mod ring;

pub use matrix::{compose_index, decompose_index, TtMatrix};
pub use shape::TtShape;
pub use tensor_train::TtTensor;

pub use tie_tensor::{Result, TensorError};
