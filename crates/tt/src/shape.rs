use tie_tensor::{Result, TensorError};

/// The TT-matrix layout tuple `(d, m, n, r)` of a TT-compressed layer.
///
/// This is exactly the per-workload configuration row of the paper's
/// Table 4: a weight matrix `W ∈ R^{M×N}` with `M = ∏ m_k`, `N = ∏ n_k`
/// stored as `d` cores `G_k ∈ R^{r_{k-1} × m_k × n_k × r_k}`. `ranks` has
/// `d + 1` entries with `r_0 = r_d = 1` (the paper's boundary condition).
///
/// `TtShape` is pure metadata: the compact-scheme planner (`tie-core`), the
/// cycle-accurate simulator (`tie-sim`) and the analytical counters all
/// consume it without touching weight values.
///
/// # Example
///
/// ```
/// use tie_tt::TtShape;
///
/// # fn main() -> Result<(), tie_tensor::TensorError> {
/// // VGG-16 FC7 as configured in the paper (Table 4).
/// let fc7 = TtShape::uniform_rank(vec![4; 6], vec![4; 6], 4)?;
/// assert_eq!(fc7.num_rows(), 4096);
/// assert_eq!(fc7.num_cols(), 4096);
/// // cores: 1·4·4·4 + four of 4·4·4·4 + 4·4·4·1
/// assert_eq!(fc7.num_params(), 64 + 4 * 256 + 64);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TtShape {
    /// Output-side mode sizes `m_1 … m_d` (`M = ∏ m_k`).
    pub row_modes: Vec<usize>,
    /// Input-side mode sizes `n_1 … n_d` (`N = ∏ n_k`).
    pub col_modes: Vec<usize>,
    /// TT ranks `r_0 … r_d`, with `r_0 = r_d = 1`.
    pub ranks: Vec<usize>,
}

impl TtShape {
    /// Creates and validates a TT-matrix shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if the mode lists are empty
    /// or of different length, if `ranks.len() != d + 1`, if any entry is
    /// zero, or if the boundary ranks are not 1.
    pub fn new(row_modes: Vec<usize>, col_modes: Vec<usize>, ranks: Vec<usize>) -> Result<Self> {
        let d = row_modes.len();
        if d == 0 {
            return Err(TensorError::InvalidArgument {
                message: "TT shape needs at least one mode".into(),
            });
        }
        if col_modes.len() != d {
            return Err(TensorError::InvalidArgument {
                message: format!("row/col mode count mismatch: {d} vs {}", col_modes.len()),
            });
        }
        if ranks.len() != d + 1 {
            return Err(TensorError::InvalidArgument {
                message: format!("need {} ranks, got {}", d + 1, ranks.len()),
            });
        }
        if row_modes
            .iter()
            .chain(&col_modes)
            .chain(&ranks)
            .any(|&v| v == 0)
        {
            return Err(TensorError::InvalidArgument {
                message: "modes and ranks must be nonzero".into(),
            });
        }
        if ranks[0] != 1 || ranks[d] != 1 {
            return Err(TensorError::InvalidArgument {
                message: format!(
                    "boundary ranks must be 1, got r0={} rd={}",
                    ranks[0], ranks[d]
                ),
            });
        }
        Ok(TtShape {
            row_modes,
            col_modes,
            ranks,
        })
    }

    /// Shape with all interior ranks equal to `rank` (the common
    /// configuration in the paper: `r_1 = … = r_{d-1} = r`).
    ///
    /// # Errors
    ///
    /// Same as [`TtShape::new`].
    pub fn uniform_rank(row_modes: Vec<usize>, col_modes: Vec<usize>, rank: usize) -> Result<Self> {
        let d = row_modes.len();
        let mut ranks = vec![rank; d + 1];
        if let Some(first) = ranks.first_mut() {
            *first = 1;
        }
        if let Some(last) = ranks.last_mut() {
            *last = 1;
        }
        TtShape::new(row_modes, col_modes, ranks)
    }

    /// Returns a copy with every interior rank replaced by `rank`
    /// (used by the Fig. 13 rank sweeps).
    ///
    /// # Errors
    ///
    /// Same as [`TtShape::new`].
    pub fn with_uniform_rank(&self, rank: usize) -> Result<Self> {
        TtShape::uniform_rank(self.row_modes.clone(), self.col_modes.clone(), rank)
    }

    /// Number of TT dimensions `d`.
    pub fn ndim(&self) -> usize {
        self.row_modes.len()
    }

    /// `M = ∏ m_k`, the dense row count.
    pub fn num_rows(&self) -> usize {
        self.row_modes.iter().product()
    }

    /// `N = ∏ n_k`, the dense column count.
    pub fn num_cols(&self) -> usize {
        self.col_modes.iter().product()
    }

    /// Parameters stored in TT format: `Σ_k r_{k-1} m_k n_k r_k`.
    pub fn num_params(&self) -> usize {
        (0..self.ndim())
            .map(|k| self.ranks[k] * self.row_modes[k] * self.col_modes[k] * self.ranks[k + 1])
            .sum()
    }

    /// Parameters of the uncompressed dense matrix: `M · N`.
    pub fn dense_params(&self) -> usize {
        self.num_rows() * self.num_cols()
    }

    /// Compression ratio `M·N / Σ_k r_{k-1} m_k n_k r_k` (the paper's CR).
    pub fn compression_ratio(&self) -> f64 {
        self.dense_params() as f64 / self.num_params() as f64
    }

    /// Expected dense shape of core `k` as stored:
    /// `[r_{k-1}, m_k, n_k, r_k]`.
    pub fn core_dims(&self, k: usize) -> [usize; 4] {
        [
            self.ranks[k],
            self.row_modes[k],
            self.col_modes[k],
            self.ranks[k + 1],
        ]
    }

    /// Shape of the unfolded core `G̃_k ((m_k r_{k-1}) × (n_k r_k))` that the
    /// compact inference scheme multiplies by (paper Fig. 6 / Eqn. (9)).
    pub fn unfolded_core_dims(&self, k: usize) -> (usize, usize) {
        (
            self.row_modes[k] * self.ranks[k],
            self.col_modes[k] * self.ranks[k + 1],
        )
    }

    /// Maximum interior rank (drives buffer sizing in the simulator).
    pub fn max_rank(&self) -> usize {
        self.ranks.iter().copied().max().unwrap_or(1)
    }
}

impl std::fmt::Display for TtShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TT(d={}, m={:?}, n={:?}, r={:?})",
            self.ndim(),
            self.row_modes,
            self.col_modes,
            self.ranks
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_lengths_and_boundaries() {
        assert!(TtShape::new(vec![], vec![], vec![1]).is_err());
        assert!(TtShape::new(vec![2], vec![2, 2], vec![1, 1]).is_err());
        assert!(TtShape::new(vec![2, 2], vec![2, 2], vec![1, 4]).is_err());
        assert!(TtShape::new(vec![2, 2], vec![2, 2], vec![2, 4, 1]).is_err());
        assert!(TtShape::new(vec![2, 2], vec![2, 2], vec![1, 0, 1]).is_err());
        assert!(TtShape::new(vec![2, 2], vec![2, 2], vec![1, 4, 1]).is_ok());
    }

    #[test]
    fn uniform_rank_sets_interior_only() {
        let s = TtShape::uniform_rank(vec![4, 4, 4], vec![4, 4, 4], 7).unwrap();
        assert_eq!(s.ranks, vec![1, 7, 7, 1]);
        // d = 1 degenerates to ranks [1, 1]
        let s1 = TtShape::uniform_rank(vec![5], vec![3], 9).unwrap();
        assert_eq!(s1.ranks, vec![1, 1]);
    }

    #[test]
    fn vgg_fc6_table4_compression_ratio() {
        // Table 4 row 1: (4096, 25088), d=6, n=[2,7,8,8,7,4], m=[4;6], r=4
        // CR reported as 50972x.
        let s = TtShape::uniform_rank(vec![4; 6], vec![2, 7, 8, 8, 7, 4], 4).unwrap();
        assert_eq!(s.num_rows(), 4096);
        assert_eq!(s.num_cols(), 25088);
        let cr = s.compression_ratio();
        assert!(
            (cr - 50972.0).abs() / 50972.0 < 0.02,
            "FC6 CR should be ~50972x, got {cr:.0}"
        );
    }

    #[test]
    fn core_dims_and_unfolded_dims() {
        let s = TtShape::new(vec![3, 4], vec![5, 6], vec![1, 7, 1]).unwrap();
        assert_eq!(s.core_dims(0), [1, 3, 5, 7]);
        assert_eq!(s.core_dims(1), [7, 4, 6, 1]);
        assert_eq!(s.unfolded_core_dims(0), (3, 35));
        assert_eq!(s.unfolded_core_dims(1), (28, 6));
        assert_eq!(s.max_rank(), 7);
    }

    #[test]
    fn param_counting_matches_hand_computation() {
        // Fig. 1 of the paper: 3x4x5 tensor (as a TT-matrix row of 1s to
        // reuse the type): use a plain shape instead.
        let s = TtShape::new(vec![1, 1, 1], vec![3, 4, 5], vec![1, 2, 2, 1]).unwrap();
        // params: 1*1*3*2 + 2*1*4*2 + 2*1*5*1 = 6 + 16 + 10 = 32
        assert_eq!(s.num_params(), 32);
        assert_eq!(s.dense_params(), 60);
    }

    #[test]
    fn display_mentions_all_fields() {
        let s = TtShape::uniform_rank(vec![2, 2], vec![3, 3], 2).unwrap();
        let txt = s.to_string();
        assert!(txt.contains("d=2") && txt.contains('m') && txt.contains('r'));
    }
}
