use crate::{decompose::tt_svd_owned, TtShape, TtTensor};
use tie_tensor::linalg::{SvdMethod, Truncation};
use tie_tensor::{Result, Scalar, Tensor, TensorError};

use rand::Rng;

/// A matrix `W ∈ R^{M×N}` stored in TT-matrix format (paper §2.2).
///
/// With `M = ∏ m_k` and `N = ∏ n_k`, the matrix is kept as `d` 4-D cores
/// `G_k ∈ R^{r_{k-1} × m_k × n_k × r_k}` such that
///
/// ```text
/// W(i, j) = G_1[i_1, j_1] · G_2[i_2, j_2] ⋯ G_d[i_d, j_d]
/// ```
///
/// where `G_k[i_k, j_k]` is an `r_{k-1} × r_k` slice and the row/column
/// indices decompose **row-major** (`i_1` most significant):
/// `i = Σ_k i_k ∏_{t>k} m_t`, `j = Σ_k j_k ∏_{t>k} n_t`.
///
/// The decomposition of a dense matrix follows Novikov et al. (NIPS '15):
/// reshape `W` into the `d`-mode tensor with fused modes `l_k = i_k n_k +
/// j_k`, TT-decompose that tensor, and split each fused mode back into
/// `(m_k, n_k)`.
#[derive(Debug, Clone, PartialEq)]
pub struct TtMatrix<T: Scalar> {
    shape: TtShape,
    cores: Vec<Tensor<T>>,
}

impl<T: Scalar> TtMatrix<T> {
    /// Builds a TT matrix from explicit 4-D cores.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if a core is not 4-D or the
    /// rank chain / boundary conditions are violated.
    pub fn new(cores: Vec<Tensor<T>>) -> Result<Self> {
        if cores.is_empty() {
            return Err(TensorError::InvalidArgument {
                message: "TT matrix needs at least one core".into(),
            });
        }
        for (k, c) in cores.iter().enumerate() {
            if c.ndim() != 4 {
                return Err(TensorError::InvalidArgument {
                    message: format!("core {k} must be 4-d, has {} dims", c.ndim()),
                });
            }
        }
        let d = cores.len();
        let row_modes: Vec<usize> = cores.iter().map(|c| c.dims()[1]).collect();
        let col_modes: Vec<usize> = cores.iter().map(|c| c.dims()[2]).collect();
        let mut ranks: Vec<usize> = cores.iter().map(|c| c.dims()[0]).collect();
        ranks.push(cores[d - 1].dims()[3]);
        for k in 0..d - 1 {
            if cores[k].dims()[3] != cores[k + 1].dims()[0] {
                return Err(TensorError::InvalidArgument {
                    message: format!(
                        "rank chain broken between cores {k} and {}: {} vs {}",
                        k + 1,
                        cores[k].dims()[3],
                        cores[k + 1].dims()[0]
                    ),
                });
            }
        }
        let shape = TtShape::new(row_modes, col_modes, ranks)?;
        Ok(TtMatrix { shape, cores })
    }

    /// Random TT matrix with the given layout (elements uniform in
    /// `[-scale, scale]`); used to synthesize the performance workloads,
    /// whose behavior depends only on the layout.
    ///
    /// # Errors
    ///
    /// Cannot fail for a valid [`TtShape`]; propagates internal shape errors.
    pub fn random<R: Rng>(rng: &mut R, shape: &TtShape, scale: f64) -> Result<Self> {
        let cores = (0..shape.ndim())
            .map(|k| {
                let [r0, m, n, r1] = shape.core_dims(k);
                tie_tensor::init::uniform(rng, vec![r0, m, n, r1], scale)
            })
            .collect();
        TtMatrix::new(cores)
    }

    /// Decomposes a dense `M × N` matrix into TT format.
    ///
    /// `row_modes` / `col_modes` give the factorization `M = ∏ m_k`,
    /// `N = ∏ n_k`; `trunc` bounds the rank growth at every internal SVD
    /// ([`Truncation::rank`] reproduces the paper's fixed-rank setting).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if the factorizations do not
    /// multiply out to the matrix dimensions, plus any SVD failure.
    pub fn from_dense(
        w: &Tensor<T>,
        row_modes: &[usize],
        col_modes: &[usize],
        trunc: Truncation,
    ) -> Result<Self> {
        Self::from_dense_with(w, row_modes, col_modes, trunc, SvdMethod::default())
    }

    /// [`TtMatrix::from_dense`] with explicit SVD algorithm selection for
    /// the internal TT-SVD (see
    /// [`tie_tensor::linalg::truncated_svd_with`] for the `Auto` rule;
    /// the randomized path makes paper-scale layers — VGG FC6 is
    /// 25088×4096 — compile in seconds).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if the factorizations do not
    /// multiply out to the matrix dimensions, plus any SVD failure.
    pub fn from_dense_with(
        w: &Tensor<T>,
        row_modes: &[usize],
        col_modes: &[usize],
        trunc: Truncation,
        method: SvdMethod,
    ) -> Result<Self> {
        let (rows, cols) = (w.nrows()?, w.ncols()?);
        if row_modes.iter().product::<usize>() != rows
            || col_modes.iter().product::<usize>() != cols
            || row_modes.len() != col_modes.len()
            || row_modes.is_empty()
        {
            return Err(TensorError::InvalidArgument {
                message: format!(
                    "mode factorization {row_modes:?} x {col_modes:?} does not match {rows}x{cols}"
                ),
            });
        }
        let b = build_fused_tensor(w, row_modes, col_modes)?;
        let tt = tt_svd_owned(b, trunc, method)?;
        let cores = tt
            .into_cores()
            .into_iter()
            .enumerate()
            .map(|(k, c)| {
                let [r0, _, r1] = [c.dims()[0], c.dims()[1], c.dims()[2]];
                c.reshaped(vec![r0, row_modes[k], col_modes[k], r1])
            })
            .collect::<Result<Vec<_>>>()?;
        TtMatrix::new(cores)
    }

    /// The layout tuple `(d, m, n, r)`.
    pub fn shape(&self) -> &TtShape {
        &self.shape
    }

    /// The 4-D cores.
    pub fn cores(&self) -> &[Tensor<T>] {
        &self.cores
    }

    /// Consumes the matrix and returns the cores.
    pub fn into_cores(self) -> Vec<Tensor<T>> {
        self.cores
    }

    /// Number of TT dimensions `d`.
    pub fn ndim(&self) -> usize {
        self.cores.len()
    }

    /// Total stored parameters.
    pub fn num_params(&self) -> usize {
        self.cores.iter().map(Tensor::num_elements).sum()
    }

    /// The `r_{k-1} × r_k` slice `G_k[i_k, j_k]` (copied).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for bad indices.
    pub fn core_slice(&self, k: usize, ik: usize, jk: usize) -> Result<Tensor<T>> {
        if k >= self.ndim() {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![k],
                shape: vec![self.ndim()],
            });
        }
        let core = &self.cores[k];
        let [r0, m, n, r1] = [
            core.dims()[0],
            core.dims()[1],
            core.dims()[2],
            core.dims()[3],
        ];
        if ik >= m || jk >= n {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![ik, jk],
                shape: vec![m, n],
            });
        }
        let mut out = Tensor::zeros(vec![r0, r1]);
        for a in 0..r0 {
            let base = ((a * m + ik) * n + jk) * r1;
            out.data_mut()[a * r1..(a + 1) * r1].copy_from_slice(&core.data()[base..base + r1]);
        }
        Ok(out)
    }

    /// Single matrix element `W(i, j)` via the slice-product chain.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for bad indices.
    pub fn get(&self, i: usize, j: usize) -> Result<T> {
        let (rows, cols) = (self.shape.num_rows(), self.shape.num_cols());
        if i >= rows || j >= cols {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![i, j],
                shape: vec![rows, cols],
            });
        }
        let iks = decompose_index(i, &self.shape.row_modes);
        let jks = decompose_index(j, &self.shape.col_modes);
        let mut v = vec![T::ONE];
        for (k, core) in self.cores.iter().enumerate() {
            let [r0, m, n, r1] = [
                core.dims()[0],
                core.dims()[1],
                core.dims()[2],
                core.dims()[3],
            ];
            let d = core.data();
            let mut next = vec![T::ZERO; r1];
            for (a, &va) in v.iter().enumerate() {
                if va == T::ZERO {
                    continue;
                }
                let base = ((a * m + iks[k]) * n + jks[k]) * r1;
                for (b, nb) in next.iter_mut().enumerate() {
                    *nb += va * d[base + b];
                }
            }
            debug_assert_eq!(v.len(), r0);
            v = next;
        }
        Ok(v[0])
    }

    /// Reconstructs the dense `M × N` matrix (validation / small layers).
    ///
    /// # Errors
    ///
    /// Propagates internal shape errors (cannot occur for a valid TT).
    pub fn to_dense(&self) -> Result<Tensor<T>> {
        // Reuse the TtTensor contraction over fused modes, then unfuse.
        let fused: Vec<Tensor<T>> = self
            .cores
            .iter()
            .map(|c| {
                let [r0, m, n, r1] = [c.dims()[0], c.dims()[1], c.dims()[2], c.dims()[3]];
                c.reshaped(vec![r0, m * n, r1])
            })
            .collect::<Result<Vec<_>>>()?;
        let b = TtTensor::new(fused)?.to_dense()?;
        let (rows, cols) = (self.shape.num_rows(), self.shape.num_cols());
        let mut w = Tensor::zeros(vec![rows, cols]);
        let fused_shape = b.shape().clone();
        for off in 0..b.num_elements() {
            let l = fused_shape.unflatten(off);
            let mut i = 0usize;
            let mut j = 0usize;
            let modes = self.shape.row_modes.iter().zip(&self.shape.col_modes);
            for (&lk, (&rm, &cm)) in l.iter().zip(modes) {
                i = i * rm + lk / cm;
                j = j * cm + lk % cm;
            }
            w.data_mut()[i * cols + j] = b.data()[off];
        }
        Ok(w)
    }

    /// Casts the element type.
    pub fn cast<U: Scalar>(&self) -> TtMatrix<U> {
        TtMatrix {
            shape: self.shape.clone(),
            cores: self.cores.iter().map(Tensor::cast).collect(),
        }
    }
}

/// Builds the Novikov fused tensor `B(l_1, …, l_d)` with `l_k = i_k·n_k +
/// j_k` from the dense matrix `w`.
///
/// This is a pure data permutation: element `(l_1, …, l_d)` of `B` is
/// `W(i, j)` with `i = Σ i_k ∏_{t>k} m_t`, `j = Σ j_k ∏_{t>k} n_t`. The
/// per-element div/mod chain of the naive gather is replaced by per-mode
/// lookup tables `contrib[k][l_k] = i_k·(row stride)·cols + j_k·(col
/// stride)` — the source offset is just their sum — walked with an
/// incremental odometer, so the 10⁸-element fused tensors of the paper's
/// FC layers build in a single cheap streaming pass.
fn build_fused_tensor<T: Scalar>(
    w: &Tensor<T>,
    row_modes: &[usize],
    col_modes: &[usize],
) -> Result<Tensor<T>> {
    let cols = w.ncols()?;
    let d = row_modes.len();
    let fused_modes: Vec<usize> = row_modes
        .iter()
        .zip(col_modes)
        .map(|(&m, &n)| m * n)
        .collect();
    // Row-major strides of the row/column digit positions in the flat
    // source offset i*cols + j.
    let mut row_stride = vec![1usize; d];
    let mut col_stride = vec![1usize; d];
    for k in (0..d.saturating_sub(1)).rev() {
        row_stride[k] = row_stride[k + 1] * row_modes[k + 1];
        col_stride[k] = col_stride[k + 1] * col_modes[k + 1];
    }
    let contrib: Vec<Vec<usize>> = (0..d)
        .map(|k| {
            (0..fused_modes[k])
                .map(|l| {
                    (l / col_modes[k]) * row_stride[k] * cols + (l % col_modes[k]) * col_stride[k]
                })
                .collect()
        })
        .collect();
    let total: usize = fused_modes.iter().product();
    let src = w.data();
    let mut data = Vec::with_capacity(total);
    let last = &contrib[d - 1];
    let mut digits = vec![0usize; d.saturating_sub(1)];
    // Base offset contributed by the (fixed within the inner loop) prefix
    // digits; updated incrementally as the odometer advances.
    let mut base = 0usize;
    loop {
        for &c in last {
            data.push(src[base + c]);
        }
        // Advance the prefix odometer (digits over modes 0..d-1).
        let mut k = d.wrapping_sub(2);
        loop {
            if k == usize::MAX {
                // Carried past the most significant digit: done.
                debug_assert_eq!(data.len(), total);
                return Tensor::from_vec(fused_modes, data);
            }
            base -= contrib[k][digits[k]];
            digits[k] += 1;
            if digits[k] < fused_modes[k] {
                base += contrib[k][digits[k]];
                break;
            }
            digits[k] = 0;
            k = k.wrapping_sub(1);
        }
    }
}

/// Splits a flat row-major index into per-mode digits (`i_1` first).
pub fn decompose_index(mut index: usize, modes: &[usize]) -> Vec<usize> {
    let mut digits = vec![0usize; modes.len()];
    for (k, &m) in modes.iter().enumerate().rev() {
        digits[k] = index % m;
        index /= m;
    }
    digits
}

/// Fuses per-mode digits back into a flat row-major index.
pub fn compose_index(digits: &[usize], modes: &[usize]) -> usize {
    digits
        .iter()
        .zip(modes)
        .fold(0usize, |acc, (&d, &m)| acc * m + d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use tie_tensor::init;

    #[test]
    fn index_decompose_compose_roundtrip() {
        let modes = [2usize, 7, 8];
        for i in 0..(2 * 7 * 8) {
            let d = decompose_index(i, &modes);
            assert_eq!(compose_index(&d, &modes), i);
            assert!(d.iter().zip(&modes).all(|(&x, &m)| x < m));
        }
    }

    #[test]
    fn new_validates_cores() {
        let ok1 = Tensor::<f64>::zeros(vec![1, 2, 3, 2]);
        let ok2 = Tensor::<f64>::zeros(vec![2, 2, 2, 1]);
        assert!(TtMatrix::new(vec![ok1.clone(), ok2.clone()]).is_ok());
        let bad_rank = Tensor::<f64>::zeros(vec![3, 2, 2, 1]);
        assert!(TtMatrix::new(vec![ok1.clone(), bad_rank]).is_err());
        let not4d = Tensor::<f64>::zeros(vec![1, 2, 2]);
        assert!(TtMatrix::new(vec![not4d]).is_err());
        assert!(TtMatrix::<f64>::new(vec![]).is_err());
    }

    #[test]
    fn from_dense_roundtrips_exactly_at_full_rank() {
        let mut rng = ChaCha8Rng::seed_from_u64(30);
        let w: Tensor<f64> = init::uniform(&mut rng, vec![6, 6], 1.0);
        let tt = TtMatrix::from_dense(&w, &[2, 3], &[3, 2], Truncation::none()).unwrap();
        let back = tt.to_dense().unwrap();
        assert!(
            back.approx_eq(&w, 1e-9),
            "rel err {}",
            back.relative_error(&w).unwrap()
        );
    }

    #[test]
    fn from_dense_three_modes() {
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let w: Tensor<f64> = init::uniform(&mut rng, vec![8, 12], 1.0);
        let tt = TtMatrix::from_dense(&w, &[2, 2, 2], &[2, 3, 2], Truncation::none()).unwrap();
        assert_eq!(tt.shape().num_rows(), 8);
        assert_eq!(tt.shape().num_cols(), 12);
        assert!(tt.to_dense().unwrap().approx_eq(&w, 1e-9));
    }

    #[test]
    fn from_dense_rejects_bad_factorization() {
        let w = Tensor::<f64>::zeros(vec![6, 6]);
        assert!(TtMatrix::from_dense(&w, &[2, 2], &[3, 2], Truncation::none()).is_err());
        assert!(TtMatrix::from_dense(&w, &[2, 3], &[6], Truncation::none()).is_err());
    }

    #[test]
    fn get_matches_to_dense() {
        let mut rng = ChaCha8Rng::seed_from_u64(32);
        let shape = TtShape::uniform_rank(vec![2, 3], vec![3, 2], 2).unwrap();
        let tt = TtMatrix::<f64>::random(&mut rng, &shape, 1.0).unwrap();
        let dense = tt.to_dense().unwrap();
        for i in 0..6 {
            for j in 0..6 {
                assert!(
                    (tt.get(i, j).unwrap() - dense.get(&[i, j]).unwrap()).abs() < 1e-12,
                    "mismatch at ({i},{j})"
                );
            }
        }
        assert!(tt.get(6, 0).is_err());
        assert!(tt.get(0, 6).is_err());
    }

    #[test]
    fn core_slice_matches_direct_indexing() {
        let mut rng = ChaCha8Rng::seed_from_u64(33);
        let shape = TtShape::new(vec![2, 2], vec![3, 3], vec![1, 3, 1]).unwrap();
        let tt = TtMatrix::<f64>::random(&mut rng, &shape, 1.0).unwrap();
        let s = tt.core_slice(0, 1, 2).unwrap();
        assert_eq!(s.dims(), &[1, 3]);
        for b in 0..3 {
            assert_eq!(
                s.get(&[0, b]).unwrap(),
                tt.cores()[0].get(&[0, 1, 2, b]).unwrap()
            );
        }
        assert!(tt.core_slice(2, 0, 0).is_err());
        assert!(
            tt.core_slice(0, 2, 0).is_err(),
            "m_1 = 2, so i_1 = 2 is out of bounds"
        );
        assert!(tt.core_slice(0, 1, 2).is_ok());
        assert!(tt.core_slice(0, 0, 3).is_err());
    }

    #[test]
    fn truncated_decomposition_of_low_rank_matrix_is_exact() {
        // W = u vᵀ is rank 1, so every TT rank can be 1... for the *fused*
        // tensor the TT ranks of a Kronecker-structured matrix are 1.
        let u = [1.0, 2.0, -1.0, 0.5]; // will build W as kron(a, b)
        let a = Tensor::<f64>::from_vec(vec![2, 2], u.to_vec()).unwrap();
        let b = Tensor::<f64>::from_vec(vec![3, 2], vec![1., 0., -1., 2., 0.5, 1.]).unwrap();
        // kron: W[(ia*3+ib), (ja*2+jb)] = a[ia,ja] * b[ib,jb]
        let w = Tensor::<f64>::from_fn(vec![6, 4], |idx| {
            let (i, j) = (idx[0], idx[1]);
            let (ia, ib) = (i / 3, i % 3);
            let (ja, jb) = (j / 2, j % 2);
            a.get(&[ia, ja]).unwrap() * b.get(&[ib, jb]).unwrap()
        })
        .unwrap();
        let tt = TtMatrix::from_dense(&w, &[2, 3], &[2, 2], Truncation::tolerance(1e-10)).unwrap();
        assert_eq!(
            tt.shape().ranks,
            vec![1, 1, 1],
            "Kronecker factor => rank 1"
        );
        assert!(tt.to_dense().unwrap().approx_eq(&w, 1e-10));
    }

    #[test]
    fn fused_tensor_build_matches_naive_gather() {
        let mut rng = ChaCha8Rng::seed_from_u64(35);
        // Asymmetric modes so row/column stride bugs can't cancel out.
        let (row_modes, col_modes) = (vec![2usize, 3, 2], vec![3usize, 2, 4]);
        let rows: usize = row_modes.iter().product();
        let cols: usize = col_modes.iter().product();
        let w: Tensor<f64> = init::uniform(&mut rng, vec![rows, cols], 1.0);
        let fast = build_fused_tensor(&w, &row_modes, &col_modes).unwrap();
        let d = row_modes.len();
        let naive = Tensor::from_fn(fast.dims().to_vec(), |l| {
            let mut i = 0usize;
            let mut j = 0usize;
            for k in 0..d {
                i = i * row_modes[k] + l[k] / col_modes[k];
                j = j * col_modes[k] + l[k] % col_modes[k];
            }
            w.data()[i * cols + j]
        })
        .unwrap();
        assert_eq!(fast.data(), naive.data());
        // Single-mode degenerate case: fused tensor is the flattened matrix.
        let flat = build_fused_tensor(&w, &[rows], &[cols]).unwrap();
        assert_eq!(flat.data(), w.data());
    }

    #[test]
    fn cast_preserves_shape() {
        let mut rng = ChaCha8Rng::seed_from_u64(34);
        let shape = TtShape::uniform_rank(vec![2, 2], vec![2, 2], 2).unwrap();
        let tt = TtMatrix::<f64>::random(&mut rng, &shape, 1.0).unwrap();
        let f32v: TtMatrix<f32> = tt.cast();
        assert_eq!(f32v.shape(), tt.shape());
        assert!(f32v
            .to_dense()
            .unwrap()
            .cast::<f64>()
            .approx_eq(&tt.to_dense().unwrap(), 1e-5));
    }
}
