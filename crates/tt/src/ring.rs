//! Tensor-ring (TR) decomposition — the TT variant the paper cites
//! (Zhao et al. 2016, "Tensor Ring Decomposition"; used for DNNs by Wang
//! et al. 2018 "Wide Compression: Tensor Ring Nets").
//!
//! A TR tensor relaxes the TT boundary condition `r_0 = r_d = 1` to
//! `r_0 = r_d = R` and closes the chain with a trace:
//!
//! ```text
//! A(j_1, …, j_d) = Tr( Z_1[j_1] · Z_2[j_2] ⋯ Z_d[j_d] )
//! ```
//!
//! This module is an *extension* of the reproduction (the TIE hardware
//! itself executes plain TT): it exists to demonstrate that the substrate
//! generalizes, and is exercised by the ablation experiments.

use crate::TtTensor;
use tie_tensor::linalg::{matmul, truncated_svd_with, SvdMethod, Truncation};
use tie_tensor::{Result, Scalar, Tensor, TensorError};

use rand::Rng;

/// A `d`-dimensional tensor in tensor-ring format.
///
/// Cores are `Z_k ∈ R^{r_{k-1} × n_k × r_k}` with the closure
/// `r_0 = r_d = R` (any `R ≥ 1`); `R = 1` degenerates to TT.
#[derive(Debug, Clone, PartialEq)]
pub struct TrTensor<T: Scalar> {
    cores: Vec<Tensor<T>>,
}

impl<T: Scalar> TrTensor<T> {
    /// Builds a TR tensor from explicit cores, validating the closed chain.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if cores are not 3-D, ranks
    /// do not chain, or the ring does not close (`r_d != r_0`).
    pub fn new(cores: Vec<Tensor<T>>) -> Result<Self> {
        if cores.is_empty() {
            return Err(TensorError::InvalidArgument {
                message: "TR tensor needs at least one core".into(),
            });
        }
        for (k, c) in cores.iter().enumerate() {
            if c.ndim() != 3 {
                return Err(TensorError::InvalidArgument {
                    message: format!("core {k} must be 3-d, has {} dims", c.ndim()),
                });
            }
        }
        for w in cores.windows(2) {
            if w[0].dims()[2] != w[1].dims()[0] {
                return Err(TensorError::InvalidArgument {
                    message: format!(
                        "rank chain broken: {} -> {}",
                        w[0].dims()[2],
                        w[1].dims()[0]
                    ),
                });
            }
        }
        if cores[cores.len() - 1].dims()[2] != cores[0].dims()[0] {
            return Err(TensorError::InvalidArgument {
                message: format!(
                    "ring does not close: r_d = {} but r_0 = {}",
                    cores[cores.len() - 1].dims()[2],
                    cores[0].dims()[0]
                ),
            });
        }
        Ok(TrTensor { cores })
    }

    /// Random TR tensor; `ranks` has `d + 1` entries with
    /// `ranks[0] == ranks[d]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] on inconsistent arguments.
    pub fn random<R: Rng>(
        rng: &mut R,
        modes: &[usize],
        ranks: &[usize],
        scale: f64,
    ) -> Result<Self> {
        if ranks.len() != modes.len() + 1 {
            return Err(TensorError::InvalidArgument {
                message: format!("need {} ranks, got {}", modes.len() + 1, ranks.len()),
            });
        }
        let cores = (0..modes.len())
            .map(|k| tie_tensor::init::uniform(rng, vec![ranks[k], modes[k], ranks[k + 1]], scale))
            .collect();
        TrTensor::new(cores)
    }

    /// The TR cores.
    pub fn cores(&self) -> &[Tensor<T>] {
        &self.cores
    }

    /// Mode sizes `n_1 … n_d`.
    pub fn mode_sizes(&self) -> Vec<usize> {
        self.cores.iter().map(|c| c.dims()[1]).collect()
    }

    /// Ring ranks `r_0 … r_d` (`r_d = r_0`).
    pub fn ranks(&self) -> Vec<usize> {
        let mut r: Vec<usize> = self.cores.iter().map(|c| c.dims()[0]).collect();
        r.push(self.cores[0].dims()[0]);
        r
    }

    /// Total stored parameters.
    pub fn num_params(&self) -> usize {
        self.cores.iter().map(Tensor::num_elements).sum()
    }

    /// Evaluates one element via the trace of the slice-product chain.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for a bad index.
    pub fn get(&self, index: &[usize]) -> Result<T> {
        if index.len() != self.cores.len() {
            return Err(TensorError::IndexOutOfBounds {
                index: index.to_vec(),
                shape: self.mode_sizes(),
            });
        }
        let r = self.cores[0].dims()[0];
        // Running R × r_k matrix, starting from identity.
        let mut acc = Tensor::<T>::eye(r);
        for (k, core) in self.cores.iter().enumerate() {
            let [r0, n, r1] = [core.dims()[0], core.dims()[1], core.dims()[2]];
            let j = index[k];
            if j >= n {
                return Err(TensorError::IndexOutOfBounds {
                    index: index.to_vec(),
                    shape: self.mode_sizes(),
                });
            }
            let d = core.data();
            let mut next = Tensor::<T>::zeros(vec![r, r1]);
            for row in 0..r {
                for a in 0..r0 {
                    let v = acc.data()[row * r0 + a];
                    if v == T::ZERO {
                        continue;
                    }
                    let base = a * n * r1 + j * r1;
                    for b in 0..r1 {
                        next.data_mut()[row * r1 + b] += v * d[base + b];
                    }
                }
            }
            acc = next;
        }
        // Trace of the R × R product.
        let mut tr = T::ZERO;
        for i in 0..r {
            tr += acc.data()[i * r + i];
        }
        Ok(tr)
    }

    /// Reconstructs the dense tensor (validation-sized inputs only).
    ///
    /// # Errors
    ///
    /// Propagates internal shape errors (cannot occur for a valid TR).
    pub fn to_dense(&self) -> Result<Tensor<T>> {
        let modes = self.mode_sizes();
        Tensor::from_fn(modes, |idx| self.get(idx).expect("index in range"))
    }

    /// TR rounding: re-truncates the *interior* bond ranks `r_1 … r_{d-1}`
    /// without densifying.
    ///
    /// Equivalent to [`TrTensor::rounded_with`] with [`SvdMethod::default`].
    ///
    /// # Errors
    ///
    /// Propagates SVD convergence or shape errors.
    pub fn rounded(&self, trunc: Truncation) -> Result<Self> {
        self.rounded_with(trunc, SvdMethod::default())
    }

    /// [`TrTensor::rounded`] with explicit SVD algorithm selection.
    ///
    /// Sweeps once over the interior bonds: for each bond `k` the adjacent
    /// cores are contracted into the `(r_{k-1}·n_k) × (n_{k+1}·r_{k+1})`
    /// bond matrix, truncated with `trunc`, and split back (`U` left,
    /// `S·Vᵀ` right). The ring-closure rank `r_0 = r_d` is left untouched —
    /// unlike TT, a ring has no canonical orthogonal form, so this local
    /// sweep is quasi-optimal rather than globally optimal: each bond's
    /// truncation is exact for that bond given the current neighbours, and
    /// exact rank deflation (e.g. zero-padded bonds) is always recovered.
    ///
    /// # Errors
    ///
    /// Propagates SVD convergence or shape errors.
    pub fn rounded_with(&self, trunc: Truncation, method: SvdMethod) -> Result<Self> {
        let d = self.cores.len();
        if d == 1 {
            return Ok(self.clone());
        }
        let mut cores = self.cores.clone();
        for k in 0..d - 1 {
            let [l0, nl, bond] = [cores[k].dims()[0], cores[k].dims()[1], cores[k].dims()[2]];
            let [_, nr, r1] = [
                cores[k + 1].dims()[0],
                cores[k + 1].dims()[1],
                cores[k + 1].dims()[2],
            ];
            let left = cores[k].reshaped(vec![l0 * nl, bond])?;
            let right = cores[k + 1].reshaped(vec![bond, nr * r1])?;
            let merged = matmul(&left, &right)?;
            let svd = truncated_svd_with(&merged, trunc, method)?;
            let rnew = svd.s.len();
            cores[k] = svd.u.reshaped(vec![l0, nl, rnew])?;
            // Absorb diag(S) into the right factor.
            let mut sv = svd.vt;
            for i in 0..rnew {
                let row = &mut sv.data_mut()[i * nr * r1..(i + 1) * nr * r1];
                for v in row.iter_mut() {
                    *v *= svd.s[i];
                }
            }
            cores[k + 1] = sv.reshaped(vec![rnew, nr, r1])?;
        }
        TrTensor::new(cores)
    }
}

impl<T: Scalar> From<TtTensor<T>> for TrTensor<T> {
    /// A TT tensor is a TR tensor with ring rank 1.
    fn from(tt: TtTensor<T>) -> Self {
        TrTensor {
            cores: tt.into_cores(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn validation_catches_open_ring() {
        let c1 = Tensor::<f64>::zeros(vec![2, 3, 4]);
        let c2 = Tensor::<f64>::zeros(vec![4, 3, 3]);
        assert!(TrTensor::new(vec![c1.clone(), c2]).is_err());
        let c2ok = Tensor::<f64>::zeros(vec![4, 3, 2]);
        assert!(TrTensor::new(vec![c1, c2ok]).is_ok());
    }

    #[test]
    fn ring_rank_one_equals_tt() {
        let mut rng = ChaCha8Rng::seed_from_u64(50);
        let tt = TtTensor::<f64>::random(&mut rng, &[2, 3, 2], &[1, 2, 2, 1], 1.0).unwrap();
        let dense_tt = tt.to_dense().unwrap();
        let tr: TrTensor<f64> = tt.into();
        let dense_tr = tr.to_dense().unwrap();
        assert!(dense_tr.approx_eq(&dense_tt, 1e-12));
    }

    #[test]
    fn trace_closure_with_ring_rank_two() {
        let mut rng = ChaCha8Rng::seed_from_u64(51);
        let tr = TrTensor::<f64>::random(&mut rng, &[2, 3], &[2, 3, 2], 1.0).unwrap();
        // Check one element against a hand computation.
        let z1 = &tr.cores()[0];
        let z2 = &tr.cores()[1];
        let (j1, j2) = (1usize, 2usize);
        let mut want = 0.0;
        for a in 0..2 {
            for b in 0..3 {
                want += z1.get(&[a, j1, b]).unwrap() * z2.get(&[b, j2, a]).unwrap();
            }
        }
        let got = tr.get(&[j1, j2]).unwrap();
        assert!((got - want).abs() < 1e-12, "{got} vs {want}");
    }

    #[test]
    fn params_and_ranks_reporting() {
        let mut rng = ChaCha8Rng::seed_from_u64(52);
        let tr = TrTensor::<f64>::random(&mut rng, &[4, 5, 6], &[3, 2, 2, 3], 1.0).unwrap();
        assert_eq!(tr.ranks(), vec![3, 2, 2, 3]);
        assert_eq!(tr.num_params(), 3 * 4 * 2 + 2 * 5 * 2 + 2 * 6 * 3);
        assert_eq!(tr.mode_sizes(), vec![4, 5, 6]);
    }

    #[test]
    fn rounding_recovers_zero_padded_bonds() {
        let mut rng = ChaCha8Rng::seed_from_u64(54);
        let tr = TrTensor::<f64>::random(&mut rng, &[3, 4, 2], &[2, 2, 2, 2], 1.0).unwrap();
        let dense = tr.to_dense().unwrap();
        // Inflate the interior bonds (r_1, r_2) from 2 to 5 with zeros: the
        // represented tensor is unchanged but the ranks are redundant.
        let pad = |c: &Tensor<f64>, r0: usize, r1: usize| {
            let [c0, n, c1] = [c.dims()[0], c.dims()[1], c.dims()[2]];
            Tensor::<f64>::from_fn(vec![r0, n, r1], |i| {
                if i[0] < c0 && i[2] < c1 {
                    c.get(&[i[0], i[1], i[2]]).unwrap()
                } else {
                    0.0
                }
            })
            .unwrap()
        };
        let inflated = TrTensor::new(vec![
            pad(&tr.cores()[0], 2, 5),
            pad(&tr.cores()[1], 5, 5),
            pad(&tr.cores()[2], 5, 2),
        ])
        .unwrap();
        assert_eq!(inflated.ranks(), vec![2, 5, 5, 2]);
        assert!(inflated.to_dense().unwrap().approx_eq(&dense, 1e-12));
        let rounded = inflated.rounded(Truncation::tolerance(1e-10)).unwrap();
        let r = rounded.ranks();
        assert_eq!(r[0], 2, "ring-closure rank must be preserved");
        assert!(r[1] <= 2 && r[2] <= 2, "padded bonds not deflated: {r:?}");
        assert!(rounded.to_dense().unwrap().approx_eq(&dense, 1e-9));
        // Pinning the Jacobi path gives the same deflation.
        let jac = inflated
            .rounded_with(Truncation::tolerance(1e-10), SvdMethod::Jacobi)
            .unwrap();
        assert!(jac.to_dense().unwrap().approx_eq(&dense, 1e-9));
    }

    #[test]
    fn get_rejects_bad_indices() {
        let mut rng = ChaCha8Rng::seed_from_u64(53);
        let tr = TrTensor::<f64>::random(&mut rng, &[2, 2], &[2, 2, 2], 1.0).unwrap();
        assert!(tr.get(&[0]).is_err());
        assert!(tr.get(&[0, 2]).is_err());
    }
}
