//! Compression-ratio arithmetic for TT-compressed networks.
//!
//! Reproduces the CR columns of the paper's Tables 1–4: per-layer CR is
//! `dense params / TT params`; network-level CR accounts for the layers
//! left uncompressed.

use crate::TtShape;

/// A layer entry in a network-level compression summary.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerParams {
    /// Human-readable layer name (e.g. `"FC6"`).
    pub name: String,
    /// Parameter count when stored densely.
    pub dense: usize,
    /// Parameter count as stored (TT params if compressed, dense otherwise).
    pub stored: usize,
    /// Whether this layer is TT-compressed.
    pub compressed: bool,
}

impl LayerParams {
    /// An uncompressed layer (stored == dense).
    pub fn dense(name: impl Into<String>, params: usize) -> Self {
        LayerParams {
            name: name.into(),
            dense: params,
            stored: params,
            compressed: false,
        }
    }

    /// A TT-compressed layer described by its layout.
    pub fn tt(name: impl Into<String>, shape: &TtShape) -> Self {
        LayerParams {
            name: name.into(),
            dense: shape.dense_params(),
            stored: shape.num_params(),
            compressed: true,
        }
    }

    /// This layer's compression ratio.
    pub fn ratio(&self) -> f64 {
        self.dense as f64 / self.stored as f64
    }
}

/// Network-level compression summary (one paper-table row group).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NetworkCompression {
    layers: Vec<LayerParams>,
}

impl NetworkCompression {
    /// Empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a layer entry (builder-style).
    pub fn push(&mut self, layer: LayerParams) -> &mut Self {
        self.layers.push(layer);
        self
    }

    /// The recorded layers.
    pub fn layers(&self) -> &[LayerParams] {
        &self.layers
    }

    /// Total dense parameters of the whole network.
    pub fn dense_params(&self) -> usize {
        self.layers.iter().map(|l| l.dense).sum()
    }

    /// Total stored parameters of the whole network.
    pub fn stored_params(&self) -> usize {
        self.layers.iter().map(|l| l.stored).sum()
    }

    /// CR over the *compressed layers only* (the paper's "CR for FC/CONV
    /// layers" column).
    pub fn compressed_layers_ratio(&self) -> f64 {
        let dense: usize = self
            .layers
            .iter()
            .filter(|l| l.compressed)
            .map(|l| l.dense)
            .sum();
        let stored: usize = self
            .layers
            .iter()
            .filter(|l| l.compressed)
            .map(|l| l.stored)
            .sum();
        if stored == 0 {
            1.0
        } else {
            dense as f64 / stored as f64
        }
    }

    /// CR over the whole network (the paper's "CR for overall network").
    pub fn overall_ratio(&self) -> f64 {
        self.dense_params() as f64 / self.stored_params().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_tt_layer_ratio_matches_shape() {
        let s = TtShape::uniform_rank(vec![4; 6], vec![4; 6], 4).unwrap();
        let l = LayerParams::tt("FC7", &s);
        assert!((l.ratio() - s.compression_ratio()).abs() < 1e-12);
        assert!(l.compressed);
    }

    #[test]
    fn overall_ratio_accounts_for_uncompressed_layers() {
        let s = TtShape::uniform_rank(vec![4; 6], vec![4; 6], 4).unwrap();
        let mut net = NetworkCompression::new();
        net.push(LayerParams::dense("conv", 1_000_000));
        net.push(LayerParams::tt("fc", &s));
        let overall = net.overall_ratio();
        let dense = 1_000_000 + s.dense_params();
        let stored = 1_000_000 + s.num_params();
        assert!((overall - dense as f64 / stored as f64).abs() < 1e-9);
        // compressed-only ratio ignores the conv layer entirely
        assert!((net.compressed_layers_ratio() - s.compression_ratio()).abs() < 1e-9);
    }

    #[test]
    fn empty_compressed_set_gives_unity() {
        let mut net = NetworkCompression::new();
        net.push(LayerParams::dense("conv", 10));
        assert_eq!(net.compressed_layers_ratio(), 1.0);
        assert_eq!(net.overall_ratio(), 1.0);
    }

    #[test]
    fn lstm_youtube_table3_scale_compression() {
        // Table 3 / §2.3: TT-LSTM input-to-hidden, m=[4,4,4,4],
        // n=[4,20,20,36], r2..r4 = 4 → CR for that matrix is in the
        // tens-of-thousands (paper: 15283x with gate fusion bookkeeping;
        // the raw single-matrix ratio here lands in the same decade).
        let s = TtShape::uniform_rank(vec![4, 4, 4, 4], vec![4, 20, 20, 36], 4).unwrap();
        let cr = s.compression_ratio();
        assert!(cr > 4000.0, "expected >4000x, got {cr:.0}");
    }
}
