//! CirCNN: block-circulant weight matrices computed with FFTs
//! (Ding et al., MICRO '17) — functional substrate plus the published
//! performance envelope.
//!
//! A weight matrix is partitioned into `b × b` circulant blocks; each
//! block is defined by its first row `w`, and block-vector products
//! reduce to `IFFT(FFT(w) ⊙ FFT(x))`, cutting storage and multiplies by
//! `b` (compression) and `b/log b` (compute). The FFT here is a
//! from-scratch iterative radix-2 implementation.

use tie_tensor::{Result, Tensor, TensorError};

use rand::Rng;

/// A complex number (no external dependency).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Constructs from parts.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    fn mul(self, o: Complex) -> Complex {
        Complex {
            re: self.re * o.re - self.im * o.im,
            im: self.re * o.im + self.im * o.re,
        }
    }

    fn add(self, o: Complex) -> Complex {
        Complex {
            re: self.re + o.re,
            im: self.im + o.im,
        }
    }

    fn sub(self, o: Complex) -> Complex {
        Complex {
            re: self.re - o.re,
            im: self.im - o.im,
        }
    }
}

/// In-place iterative radix-2 Cooley-Tukey FFT (`inverse = true` for the
/// unscaled inverse; divide by `n` afterwards, as [`ifft`] does).
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] if the length is not a power
/// of two.
pub fn fft_in_place(data: &mut [Complex], inverse: bool) -> Result<()> {
    let n = data.len();
    if n == 0 || n & (n - 1) != 0 {
        return Err(TensorError::InvalidArgument {
            message: format!("FFT length {n} is not a power of two"),
        });
    }
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::new(ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = data[i + k];
                let v = data[i + k + len / 2].mul(w);
                data[i + k] = u.add(v);
                data[i + k + len / 2] = u.sub(v);
                w = w.mul(wlen);
            }
            i += len;
        }
        len <<= 1;
    }
    Ok(())
}

/// Forward FFT of a real vector.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] for non-power-of-two lengths.
pub fn fft_real(x: &[f64]) -> Result<Vec<Complex>> {
    let mut data: Vec<Complex> = x.iter().map(|&v| Complex::new(v, 0.0)).collect();
    fft_in_place(&mut data, false)?;
    Ok(data)
}

/// Inverse FFT returning the real parts (inputs are spectra of real
/// signals).
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] for non-power-of-two lengths.
pub fn ifft(spectrum: &[Complex]) -> Result<Vec<f64>> {
    let mut data = spectrum.to_vec();
    fft_in_place(&mut data, true)?;
    let n = data.len() as f64;
    Ok(data.into_iter().map(|c| c.re / n).collect())
}

/// Reference `O(n²)` DFT used to validate the FFT in tests.
pub fn dft_naive(x: &[f64]) -> Vec<Complex> {
    let n = x.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex::default();
            for (t, &v) in x.iter().enumerate() {
                let ang = -2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64;
                acc = acc.add(Complex::new(v * ang.cos(), v * ang.sin()));
            }
            acc
        })
        .collect()
}

/// A block-circulant matrix: `(rows/b) × (cols/b)` circulant blocks of
/// size `b`, each stored as its defining first row.
#[derive(Debug, Clone)]
pub struct BlockCirculantMatrix {
    rows: usize,
    cols: usize,
    block: usize,
    /// `blocks[i][j]` is the defining row of block `(i, j)`.
    blocks: Vec<Vec<Vec<f64>>>,
}

impl BlockCirculantMatrix {
    /// Random block-circulant matrix.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if `block` is not a
    /// power of two or does not divide both dimensions.
    pub fn random<R: Rng>(rng: &mut R, rows: usize, cols: usize, block: usize) -> Result<Self> {
        if block == 0
            || block & (block - 1) != 0
            || !rows.is_multiple_of(block)
            || !cols.is_multiple_of(block)
        {
            return Err(TensorError::InvalidArgument {
                message: format!("block {block} must be a power of two dividing {rows}x{cols}"),
            });
        }
        let blocks = (0..rows / block)
            .map(|_| {
                (0..cols / block)
                    .map(|_| (0..block).map(|_| rng.gen_range(-1.0..1.0)).collect())
                    .collect()
            })
            .collect();
        Ok(BlockCirculantMatrix {
            rows,
            cols,
            block,
            blocks,
        })
    }

    /// Stored parameters (`rows·cols / b`).
    pub fn num_params(&self) -> usize {
        (self.rows / self.block) * (self.cols / self.block) * self.block
    }

    /// Compression ratio vs dense (`b`).
    pub fn compression_ratio(&self) -> f64 {
        (self.rows * self.cols) as f64 / self.num_params() as f64
    }

    /// Dense reconstruction: circulant block `(i,j)` has
    /// `B[r, c] = w[(r − c) mod b]` (circular-convolution orientation,
    /// matching `IFFT(FFT(w) ⊙ FFT(x))`).
    pub fn to_dense(&self) -> Tensor<f64> {
        let mut out = Tensor::zeros(vec![self.rows, self.cols]);
        let b = self.block;
        for (bi, brow) in self.blocks.iter().enumerate() {
            for (bj, w) in brow.iter().enumerate() {
                for r in 0..b {
                    for c in 0..b {
                        out.data_mut()[(bi * b + r) * self.cols + bj * b + c] = w[(r + b - c) % b];
                    }
                }
            }
        }
        out
    }

    /// FFT-based product `y = W x`: per block-row, accumulate
    /// `FFT(w_ij) ⊙ FFT(x_j)` in the frequency domain, one IFFT per
    /// block-row (the CirCNN datapath structure). Also returns the real
    /// multiply count, demonstrating the `b / log₂ b`-ish compute saving.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] on a length mismatch.
    pub fn matvec(&self, x: &Tensor<f64>) -> Result<(Tensor<f64>, u64)> {
        if x.ndim() != 1 || x.num_elements() != self.cols {
            return Err(TensorError::ShapeMismatch {
                left: x.dims().to_vec(),
                right: vec![self.cols],
            });
        }
        let b = self.block;
        let mut mults = 0u64;
        let fft_cost = |n: usize| -> u64 {
            // Complex mults of radix-2 FFT: (n/2) log2 n, 4 real mults each.
            let log = usize::BITS - n.leading_zeros() - 1;
            (n as u64 / 2) * log as u64 * 4
        };
        // Pre-transform every input segment once (shared across block rows).
        let mut x_spectra = Vec::with_capacity(self.cols / b);
        for j in 0..self.cols / b {
            let seg = &x.data()[j * b..(j + 1) * b];
            x_spectra.push(fft_real(seg)?);
            mults += fft_cost(b);
        }
        let mut y = Tensor::zeros(vec![self.rows]);
        for (bi, brow) in self.blocks.iter().enumerate() {
            let mut acc = vec![Complex::default(); b];
            for (w, xs) in brow.iter().zip(&x_spectra) {
                let ws = fft_real(w)?;
                mults += fft_cost(b);
                for k in 0..b {
                    acc[k] = acc[k].add(ws[k].mul(xs[k]));
                }
                mults += 4 * b as u64;
            }
            let row = ifft(&acc)?;
            mults += fft_cost(b);
            y.data_mut()[bi * b..(bi + 1) * b].copy_from_slice(&row);
        }
        Ok((y, mults))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use tie_tensor::linalg::matvec;

    #[test]
    fn fft_matches_naive_dft() {
        let x: Vec<f64> = (0..16).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let fast = fft_real(&x).unwrap();
        let slow = dft_naive(&x);
        for (a, b) in fast.iter().zip(&slow) {
            assert!((a.re - b.re).abs() < 1e-9 && (a.im - b.im).abs() < 1e-9);
        }
    }

    #[test]
    fn fft_ifft_roundtrip() {
        let x: Vec<f64> = (0..32).map(|i| (i as f64 * 0.7).sin()).collect();
        let back = ifft(&fft_real(&x).unwrap()).unwrap();
        for (a, b) in x.iter().zip(&back) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn fft_rejects_non_power_of_two() {
        assert!(fft_real(&[1.0, 2.0, 3.0]).is_err());
        let mut empty: Vec<Complex> = vec![];
        assert!(fft_in_place(&mut empty, false).is_err());
    }

    #[test]
    fn circulant_matvec_matches_dense() {
        let mut rng = ChaCha8Rng::seed_from_u64(310);
        let w = BlockCirculantMatrix::random(&mut rng, 16, 24, 8).unwrap();
        let x = tie_tensor::init::uniform(&mut rng, vec![24], 1.0);
        let (y, _) = w.matvec(&x).unwrap();
        let want = matvec(&w.to_dense(), &x).unwrap();
        assert!(
            y.approx_eq(&want, 1e-9),
            "FFT path diverges: {:?} vs {:?}",
            y.data(),
            want.data()
        );
    }

    #[test]
    fn compression_ratio_is_block_size() {
        let mut rng = ChaCha8Rng::seed_from_u64(311);
        let w = BlockCirculantMatrix::random(&mut rng, 64, 64, 16).unwrap();
        assert_eq!(w.compression_ratio(), 16.0);
        assert_eq!(w.num_params(), 64 * 64 / 16);
    }

    #[test]
    fn fft_path_saves_multiplies_at_large_blocks() {
        let mut rng = ChaCha8Rng::seed_from_u64(312);
        let w = BlockCirculantMatrix::random(&mut rng, 256, 256, 64).unwrap();
        let x = tie_tensor::init::uniform(&mut rng, vec![256], 1.0);
        let (_, mults) = w.matvec(&x).unwrap();
        let dense_mults = 256u64 * 256;
        assert!(
            mults < dense_mults,
            "FFT mults {mults} should undercut dense {dense_mults}"
        );
    }

    #[test]
    fn block_validation() {
        let mut rng = ChaCha8Rng::seed_from_u64(313);
        assert!(BlockCirculantMatrix::random(&mut rng, 16, 16, 3).is_err());
        assert!(BlockCirculantMatrix::random(&mut rng, 15, 16, 4).is_err());
        assert!(BlockCirculantMatrix::random(&mut rng, 16, 16, 0).is_err());
    }
}
