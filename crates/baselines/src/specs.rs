//! Published headline numbers of the compared accelerators (as reported
//! in their papers and quoted in TIE's Tables 7–9).

use tie_energy::{AcceleratorSpec, TechNode};

/// EIE (Han et al., ISCA '16): 45 nm, 800 MHz, 40.8 mm², 590 mW.
pub fn eie() -> AcceleratorSpec {
    AcceleratorSpec::new("EIE", TechNode::NM45, 800.0, Some(40.8), 590.0)
}

/// CirCNN (Ding et al., MICRO '17) synthesis numbers: 45 nm, 200 MHz,
/// 80 mW, area unpublished; 0.8 TOPS reported throughput.
pub fn circnn() -> AcceleratorSpec {
    AcceleratorSpec::new("CirCNN", TechNode::NM45, 200.0, None, 80.0)
}

/// CirCNN's reported throughput in ops/s at its native node.
pub const CIRCNN_TOPS_NATIVE: f64 = 0.8e12;

/// Eyeriss (Chen et al., ISCA '16), core numbers used by TIE's Table 9:
/// 65 nm, 200 MHz, 12.25 mm² (core), 236 mW.
pub fn eyeriss() -> AcceleratorSpec {
    AcceleratorSpec::new("Eyeriss", TechNode::NM65, 200.0, Some(12.25), 236.0)
}

/// Eyeriss's published VGG-16 CONV frame rate at 65 nm / 200 MHz
/// (Table 9 baseline row: 0.8 frame/s).
pub const EYERISS_VGG16_FPS_NATIVE: f64 = 0.8;

/// TIE prototype (paper Fig. 11 / Table 6): 28 nm, 1000 MHz, 1.744 mm²,
/// 154.8 mW.
pub fn tie() -> AcceleratorSpec {
    AcceleratorSpec::new("TIE", TechNode::NM28, 1000.0, Some(1.744), 154.8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tie_energy::project;

    #[test]
    fn specs_match_paper_tables() {
        assert_eq!(eie().freq_mhz, 800.0);
        assert_eq!(circnn().power_mw, 80.0);
        assert_eq!(eyeriss().area_mm2, Some(12.25));
        assert_eq!(tie().node.nm, 28.0);
    }

    #[test]
    fn circnn_projected_throughput_matches_table8() {
        // Throughput scales with frequency: 0.8 TOPS × (45/28) = 1.28 TOPS.
        let native = circnn();
        let projected = project(&native, TechNode::NM28);
        let scaled_tops = CIRCNN_TOPS_NATIVE * projected.freq_mhz / native.freq_mhz;
        assert!((scaled_tops / 1e12 - 1.28).abs() < 0.01);
    }
}
