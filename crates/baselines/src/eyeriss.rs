//! Eyeriss: a row-stationary CONV accelerator (Chen et al., ISCA '16) —
//! analytic dataflow model for VGG-class CONV stacks.
//!
//! Eyeriss is a 12×14 PE array at 200 MHz (65 nm). Its row-stationary
//! mapping assigns each PE a 1-D convolution (one filter row × one input
//! row); a logical `f × H'` PE set computes one 2-D convolution strip,
//! replicated across the array. On VGG-16 the measured frame rate is far
//! below the compute roofline because the mapping plus DRAM traffic leave
//! the array partially busy; the model captures that with a calibrated
//! efficiency factor pinned to the published 0.8 frame/s (TIE Table 9's
//! Eyeriss row), while the per-layer MAC accounting is exact.

use tie_tensor::{Result, TensorError};

/// One CONV layer's geometry (all square kernels, as in VGG).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvLayerShape {
    /// Input channels.
    pub cin: usize,
    /// Output channels.
    pub cout: usize,
    /// Input spatial size (square).
    pub hw: usize,
    /// Kernel size.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Padding.
    pub padding: usize,
}

impl ConvLayerShape {
    /// Output spatial size.
    pub fn out_hw(&self) -> usize {
        (self.hw + 2 * self.padding - self.kernel) / self.stride + 1
    }

    /// Multiply-accumulates of the layer.
    pub fn macs(&self) -> u64 {
        let o = self.out_hw() as u64;
        o * o * self.cout as u64 * self.cin as u64 * (self.kernel * self.kernel) as u64
    }
}

/// The Eyeriss analytic model.
#[derive(Debug, Clone, Copy)]
pub struct EyerissModel {
    /// PE array rows (12 in silicon).
    pub pe_rows: usize,
    /// PE array columns (14 in silicon).
    pub pe_cols: usize,
    /// Clock frequency in MHz.
    pub freq_mhz: f64,
    /// Sustained efficiency: fraction of peak MAC rate achieved on a
    /// VGG-class workload (mapping fragmentation + memory stalls),
    /// calibrated to the published VGG-16 frame rate.
    pub efficiency: f64,
}

impl Default for EyerissModel {
    fn default() -> Self {
        EyerissModel {
            pe_rows: 12,
            pe_cols: 14,
            freq_mhz: 200.0,
            efficiency: EyerissModel::CALIBRATED_VGG_EFFICIENCY,
        }
    }
}

impl EyerissModel {
    /// Efficiency calibrated so the default model reproduces the
    /// published 0.8 frame/s on the VGG-16 CONV stack (see test).
    pub const CALIBRATED_VGG_EFFICIENCY: f64 = 0.385;

    /// Peak MAC rate, ops/s (1 MAC per PE per cycle).
    pub fn peak_macs_per_sec(&self) -> f64 {
        (self.pe_rows * self.pe_cols) as f64 * self.freq_mhz * 1e6
    }

    /// Row-stationary array utilization for one layer: fraction of PEs a
    /// perfect packing of `kernel`-row strips occupies (the residual rows
    /// idle — e.g. 3-row strips leave 0 of 12 idle, 5-row strips leave 2).
    pub fn mapping_utilization(&self, layer: &ConvLayerShape) -> f64 {
        let strips = self.pe_rows / layer.kernel;
        if strips == 0 {
            // Kernel taller than the array: fold, modeled as full rows.
            return 1.0;
        }
        (strips * layer.kernel) as f64 / self.pe_rows as f64
    }

    /// Processing time of one layer, seconds.
    pub fn layer_seconds(&self, layer: &ConvLayerShape) -> f64 {
        let effective =
            self.peak_macs_per_sec() * self.efficiency * self.mapping_utilization(layer);
        layer.macs() as f64 / effective
    }

    /// Frames/s over a CONV stack.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] for an empty stack.
    pub fn frames_per_sec(&self, layers: &[ConvLayerShape]) -> Result<f64> {
        if layers.is_empty() {
            return Err(TensorError::InvalidArgument {
                message: "CONV stack is empty".into(),
            });
        }
        let total: f64 = layers.iter().map(|l| self.layer_seconds(l)).sum();
        Ok(1.0 / total)
    }
}

/// The 13 CONV layers of VGG-16 (3×3, stride 1, pad 1, with 2×2 pooling
/// between groups).
pub fn vgg16_conv_stack() -> Vec<ConvLayerShape> {
    let l = |cin, cout, hw| ConvLayerShape {
        cin,
        cout,
        hw,
        kernel: 3,
        stride: 1,
        padding: 1,
    };
    vec![
        l(3, 64, 224),
        l(64, 64, 224),
        l(64, 128, 112),
        l(128, 128, 112),
        l(128, 256, 56),
        l(256, 256, 56),
        l(256, 256, 56),
        l(256, 512, 28),
        l(512, 512, 28),
        l(512, 512, 28),
        l(512, 512, 14),
        l(512, 512, 14),
        l(512, 512, 14),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg16_mac_count_is_the_known_15_gmacs() {
        let total: u64 = vgg16_conv_stack().iter().map(|l| l.macs()).sum();
        // VGG-16 CONV ≈ 15.3 GMACs/frame.
        assert!(
            (15.0e9..15.8e9).contains(&(total as f64)),
            "VGG-16 CONV MACs {total}"
        );
    }

    #[test]
    fn default_model_reproduces_published_vgg_frame_rate() {
        let model = EyerissModel::default();
        let fps = model.frames_per_sec(&vgg16_conv_stack()).unwrap();
        assert!(
            (fps - 0.8).abs() < 0.05,
            "calibrated model should give ~0.8 fps, got {fps:.3}"
        );
    }

    #[test]
    fn mapping_utilization_for_3x3_is_full() {
        let model = EyerissModel::default();
        let layer = vgg16_conv_stack()[0];
        // 12 rows / 3-row strips = 4 strips, no idle rows.
        assert_eq!(model.mapping_utilization(&layer), 1.0);
        let five = ConvLayerShape { kernel: 5, ..layer };
        // 2 strips × 5 rows = 10 of 12.
        assert!((model.mapping_utilization(&five) - 10.0 / 12.0).abs() < 1e-12);
        let tall = ConvLayerShape {
            kernel: 13,
            ..layer
        };
        assert_eq!(model.mapping_utilization(&tall), 1.0);
    }

    #[test]
    fn conv_geometry_matches_vgg() {
        let first = vgg16_conv_stack()[0];
        assert_eq!(first.out_hw(), 224);
        assert_eq!(first.macs(), 224 * 224 * 64 * 3 * 9);
    }

    #[test]
    fn faster_clock_scales_frame_rate_linearly() {
        let base = EyerissModel::default();
        let fast = EyerissModel {
            freq_mhz: 400.0,
            ..base
        };
        let stack = vgg16_conv_stack();
        let r = fast.frames_per_sec(&stack).unwrap() / base.frames_per_sec(&stack).unwrap();
        assert!((r - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stack_is_an_error() {
        assert!(EyerissModel::default().frames_per_sec(&[]).is_err());
    }
}
