//! Baseline accelerator models the TIE paper compares against.
//!
//! TIE's evaluation (Tables 7–9, Fig. 12) is comparative: EIE (sparse
//! compressed FC accelerator, ISCA '16), CirCNN (block-circulant FFT
//! accelerator, MICRO '17) and Eyeriss (row-stationary CONV accelerator,
//! ISCA '16). None of the three is open-source at the granularity the
//! comparison needs, so this crate builds the closest functional
//! equivalents (see DESIGN.md substitution ledger):
//!
//! * [`eie`] — a working CSC sparse matrix-vector accelerator model:
//!   magnitude pruning to a target density, 4-bit weight-sharing
//!   codebook, 64 PEs with interleaved row distribution, dynamic
//!   activation sparsity, and a cycle model that captures inter-PE load
//!   imbalance (the effect EIE's queues mitigate),
//! * [`circnn`] — a from-scratch radix-2 FFT, functional block-circulant
//!   layers (`y_i = Σ_j IFFT(FFT(w_ij) ⊙ FFT(x_j))`), and the published
//!   throughput/power envelope,
//! * [`eyeriss`] — a row-stationary dataflow analytic model for CONV
//!   stacks, calibrated to the published VGG-16 frame rate,
//! * [`specs`] — the published headline numbers all three papers report,
//!   as [`tie_energy::AcceleratorSpec`] values ready for node projection.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod circnn;
pub mod eie;
pub mod eyeriss;
pub mod specs;

pub use tie_tensor::{Result, TensorError};
