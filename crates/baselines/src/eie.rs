//! EIE: efficient inference engine on compressed (pruned + weight-shared)
//! fully-connected layers — functional model with a load-imbalance-aware
//! cycle count.
//!
//! EIE stores the pruned weight matrix column-wise (CSC), shares weights
//! through a 16-entry codebook (4-bit indices), interleaves matrix rows
//! across `N_PE = 64` PEs, and skips zero activations entirely. Its
//! throughput on a layer is governed by the number of nonzero
//! (activation, weight) pairs and by how evenly each column's nonzeros
//! spread over the PEs: per broadcast activation, the column's slowest PE
//! gates progress (EIE's FIFOs smooth but do not eliminate this).

use tie_tensor::{Result, Tensor, TensorError};

use rand::Rng;

/// A pruned, weight-shared matrix in compressed sparse column form.
#[derive(Debug, Clone)]
pub struct CscMatrix {
    rows: usize,
    cols: usize,
    /// Column pointers (`cols + 1` entries).
    col_ptr: Vec<usize>,
    /// Row index of each stored nonzero.
    row_idx: Vec<u32>,
    /// Codebook index of each stored nonzero (4-bit in EIE; stored as u8).
    code_idx: Vec<u8>,
    /// The shared-weight codebook (16 entries in EIE).
    codebook: Vec<f64>,
}

impl CscMatrix {
    /// Prunes `dense` to (approximately) `density` by magnitude and
    /// quantizes surviving weights onto a `codebook_size`-entry shared
    /// codebook (uniform over the surviving range — EIE trains its
    /// codebook; uniform preserves the storage/bandwidth behavior, which
    /// is what the performance model consumes).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] for a density outside
    /// `(0, 1]` or an empty codebook.
    pub fn from_dense(dense: &Tensor<f64>, density: f64, codebook_size: usize) -> Result<Self> {
        if !(0.0..=1.0).contains(&density) || density == 0.0 {
            return Err(TensorError::InvalidArgument {
                message: format!("density {density} must be in (0, 1]"),
            });
        }
        if codebook_size == 0 {
            return Err(TensorError::InvalidArgument {
                message: "codebook must be nonempty".into(),
            });
        }
        let (rows, cols) = (dense.nrows()?, dense.ncols()?);
        // Magnitude threshold for the target density.
        let mut mags: Vec<f64> = dense.data().iter().map(|v| v.abs()).collect();
        mags.sort_by(|a, b| b.partial_cmp(a).expect("finite weights"));
        let keep = ((rows * cols) as f64 * density).round().max(1.0) as usize;
        let threshold = mags[keep.min(mags.len()) - 1];
        // Uniform codebook over [-max, max] of survivors.
        let max_abs = mags[0].max(1e-30);
        let codebook: Vec<f64> = (0..codebook_size)
            .map(|i| {
                let t = (i as f64 + 0.5) / codebook_size as f64; // (0,1)
                -max_abs + 2.0 * max_abs * t
            })
            .collect();
        let quantize = |v: f64| -> u8 {
            let t = ((v + max_abs) / (2.0 * max_abs) * codebook_size as f64).floor();
            (t.clamp(0.0, codebook_size as f64 - 1.0)) as u8
        };
        let mut col_ptr = Vec::with_capacity(cols + 1);
        let mut row_idx = Vec::new();
        let mut code_idx = Vec::new();
        col_ptr.push(0);
        for c in 0..cols {
            for r in 0..rows {
                let v = dense.data()[r * cols + c];
                if v.abs() >= threshold && v != 0.0 {
                    row_idx.push(r as u32);
                    code_idx.push(quantize(v));
                }
            }
            col_ptr.push(row_idx.len());
        }
        Ok(CscMatrix {
            rows,
            cols,
            col_ptr,
            row_idx,
            code_idx,
            codebook,
        })
    }

    /// Synthesizes a random sparse matrix with the given density — used
    /// for the VGG-sized performance workloads where only the sparsity
    /// *pattern* matters.
    ///
    /// Per-column nonzero counts are `⌊rows·density⌋` plus a Bernoulli
    /// remainder (matching the Binomial mean with mildly reduced
    /// variance), and row positions are sampled without replacement —
    /// `O(nnz)` instead of `O(rows·cols)` coin flips, which matters for
    /// the 10⁸-element VGG-FC6 workload.
    pub fn random<R: Rng>(
        rng: &mut R,
        rows: usize,
        cols: usize,
        density: f64,
        codebook_size: usize,
    ) -> Self {
        let codebook: Vec<f64> = (0..codebook_size)
            .map(|i| -1.0 + 2.0 * (i as f64 + 0.5) / codebook_size as f64)
            .collect();
        let mut col_ptr = Vec::with_capacity(cols + 1);
        let mut row_idx = Vec::new();
        let mut code_idx = Vec::new();
        col_ptr.push(0);
        let density = density.clamp(0.0, 1.0);
        let expected = rows as f64 * density;
        for _ in 0..cols {
            let mut k = expected.floor() as usize;
            if rng.gen_bool(expected - k as f64) {
                k += 1;
            }
            let k = k.min(rows);
            let mut picked = rand::seq::index::sample(rng, rows, k).into_vec();
            picked.sort_unstable();
            for r in picked {
                row_idx.push(r as u32);
                code_idx.push(rng.gen_range(0..codebook_size) as u8);
            }
            col_ptr.push(row_idx.len());
        }
        CscMatrix {
            rows,
            cols,
            col_ptr,
            row_idx,
            code_idx,
            codebook,
        }
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// Actual density.
    pub fn density(&self) -> f64 {
        self.nnz() as f64 / (self.rows * self.cols) as f64
    }

    /// Matrix dimensions.
    pub fn dims(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Dense reconstruction (decode codebook) — the matrix EIE actually
    /// computes with.
    pub fn to_dense(&self) -> Tensor<f64> {
        let mut out = Tensor::zeros(vec![self.rows, self.cols]);
        for c in 0..self.cols {
            for k in self.col_ptr[c]..self.col_ptr[c + 1] {
                let r = self.row_idx[k] as usize;
                out.data_mut()[r * self.cols + c] = self.codebook[self.code_idx[k] as usize];
            }
        }
        out
    }

    /// EIE storage footprint in bits: 4-bit codes + 4-bit run-length row
    /// jumps (EIE's CSC encoding) + codebook.
    pub fn storage_bits(&self) -> usize {
        self.nnz() * 8 + self.codebook.len() * 16 + (self.cols + 1) * 32
    }
}

/// Cycle/traffic report of one EIE layer execution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EieRunStats {
    /// Total cycles (sum over broadcast activations of the slowest PE's
    /// work, minimum 1 each — the broadcast itself).
    pub cycles: u64,
    /// Multiply-accumulates actually performed (nonzero pairs).
    pub macs: u64,
    /// Nonzero input activations broadcast.
    pub active_inputs: u64,
    /// Perfectly balanced lower-bound cycles (`macs / n_pe`).
    pub balanced_cycles: u64,
}

impl EieRunStats {
    /// Load-imbalance factor (`cycles / balanced_cycles`, ≥ 1).
    pub fn imbalance(&self) -> f64 {
        if self.balanced_cycles == 0 {
            1.0
        } else {
            self.cycles as f64 / self.balanced_cycles as f64
        }
    }
}

/// The EIE accelerator model.
///
/// ```
/// use rand::SeedableRng;
/// use tie_baselines::eie::{CscMatrix, EieModel};
/// use tie_tensor::Tensor;
/// # fn main() -> Result<(), tie_tensor::TensorError> {
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let w = CscMatrix::random(&mut rng, 64, 64, 0.1, 16);
/// let x = Tensor::<f64>::filled(vec![64], 1.0)?;
/// let (y, stats) = EieModel::default().run(&w, &x)?;
/// assert_eq!(y.num_elements(), 64);
/// assert!(stats.imbalance() >= 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct EieModel {
    /// Processing elements (64 in the paper).
    pub n_pe: usize,
}

impl Default for EieModel {
    fn default() -> Self {
        EieModel { n_pe: 64 }
    }
}

impl EieModel {
    /// Functional + cycle-accurate-at-the-column-level execution of
    /// `y = W x` on the sparse matrix.
    ///
    /// Zero activations are skipped (EIE's dynamic sparsity); for each
    /// nonzero activation, every PE processes its rows' nonzeros of that
    /// column, and the column completes when the slowest PE does.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] on a length mismatch.
    pub fn run(&self, w: &CscMatrix, x: &Tensor<f64>) -> Result<(Tensor<f64>, EieRunStats)> {
        if x.ndim() != 1 || x.num_elements() != w.cols {
            return Err(TensorError::ShapeMismatch {
                left: x.dims().to_vec(),
                right: vec![w.cols],
            });
        }
        let mut y = Tensor::zeros(vec![w.rows]);
        let mut stats = EieRunStats::default();
        let mut per_pe = vec![0u64; self.n_pe];
        for c in 0..w.cols {
            let a = x.data()[c];
            if a == 0.0 {
                continue;
            }
            stats.active_inputs += 1;
            for p in per_pe.iter_mut() {
                *p = 0;
            }
            for k in w.col_ptr[c]..w.col_ptr[c + 1] {
                let r = w.row_idx[k] as usize;
                y.data_mut()[r] += w.codebook[w.code_idx[k] as usize] * a;
                per_pe[r % self.n_pe] += 1;
                stats.macs += 1;
            }
            let slowest = per_pe.iter().copied().max().unwrap_or(0).max(1);
            stats.cycles += slowest;
        }
        stats.balanced_cycles = stats.macs.div_ceil(self.n_pe as u64).max(1);
        Ok((y, stats))
    }

    /// Cycle-only estimate on a synthetic sparsity pattern with the given
    /// activation density (activations chosen pseudo-randomly) — for the
    /// VGG-sized Fig. 12 workloads.
    ///
    /// # Errors
    ///
    /// Propagates [`EieModel::run`] errors (cannot occur for consistent
    /// arguments).
    pub fn estimate<R: Rng>(
        &self,
        rng: &mut R,
        w: &CscMatrix,
        act_density: f64,
    ) -> Result<EieRunStats> {
        let x = Tensor::from_vec(
            vec![w.cols],
            (0..w.cols)
                .map(|_| {
                    if rng.gen_bool(act_density.clamp(0.0, 1.0)) {
                        rng.gen_range(0.1..1.0)
                    } else {
                        0.0
                    }
                })
                .collect(),
        )?;
        let (_, stats) = self.run(w, &x)?;
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use tie_tensor::init;
    use tie_tensor::linalg::matvec;

    #[test]
    fn csc_from_dense_hits_target_density() {
        let mut rng = ChaCha8Rng::seed_from_u64(300);
        let dense: Tensor<f64> = init::uniform(&mut rng, vec![40, 50], 1.0);
        let csc = CscMatrix::from_dense(&dense, 0.1, 16).unwrap();
        assert!(
            (csc.density() - 0.1).abs() < 0.02,
            "density {}",
            csc.density()
        );
    }

    #[test]
    fn functional_output_matches_decoded_dense() {
        let mut rng = ChaCha8Rng::seed_from_u64(301);
        let dense: Tensor<f64> = init::uniform(&mut rng, vec![12, 10], 1.0);
        let csc = CscMatrix::from_dense(&dense, 0.3, 16).unwrap();
        let x: Tensor<f64> = init::uniform(&mut rng, vec![10], 1.0);
        let model = EieModel { n_pe: 4 };
        let (y, _) = model.run(&csc, &x).unwrap();
        let want = matvec(&csc.to_dense(), &x).unwrap();
        assert!(
            y.approx_eq(&want, 1e-10),
            "EIE output diverges from its own decoded matrix"
        );
    }

    #[test]
    fn codebook_quantization_bounds_weight_error() {
        let mut rng = ChaCha8Rng::seed_from_u64(302);
        let dense: Tensor<f64> = init::uniform(&mut rng, vec![16, 16], 1.0);
        let csc = CscMatrix::from_dense(&dense, 1.0, 256).unwrap();
        let back = csc.to_dense();
        // 256-level codebook over [-1,1]: step ~ 2/256.
        assert!(back.sub(&dense).unwrap().max_abs() <= 2.0 / 256.0 + 1e-9);
    }

    #[test]
    fn zero_activations_are_skipped() {
        let mut rng = ChaCha8Rng::seed_from_u64(303);
        let csc = CscMatrix::random(&mut rng, 64, 32, 0.2, 16);
        let mut x = Tensor::<f64>::zeros(vec![32]);
        x.data_mut()[3] = 1.0;
        x.data_mut()[17] = -0.5;
        let model = EieModel::default();
        let (_, stats) = model.run(&csc, &x).unwrap();
        assert_eq!(stats.active_inputs, 2);
        // cycles bounded by work of 2 columns
        let nnz2 = (csc.col_ptr[4] - csc.col_ptr[3]) + (csc.col_ptr[18] - csc.col_ptr[17]);
        assert!(stats.macs as usize == nnz2);
    }

    #[test]
    fn load_imbalance_is_at_least_one_and_visible_when_skewed() {
        // All nonzeros on PE 0's rows: imbalance = n_pe at full columns.
        let dense =
            Tensor::<f64>::from_fn(vec![8, 4], |i| if i[0] == 0 { 1.0 } else { 0.0 }).unwrap();
        let csc = CscMatrix::from_dense(&dense, 0.125, 16).unwrap();
        let x = Tensor::<f64>::filled(vec![4], 1.0).unwrap();
        let model = EieModel { n_pe: 4 };
        let (_, stats) = model.run(&csc, &x).unwrap();
        assert!(stats.imbalance() >= 1.0);
        // One nonzero per column, always on PE 0 → slowest = 1 each, but
        // balanced bound is 1 per 4 macs: imbalance 4 cycles / 1 = 4.
        assert_eq!(stats.cycles, 4);
        assert_eq!(stats.balanced_cycles, 1);
    }

    #[test]
    fn estimate_scales_with_activation_density() {
        let mut rng = ChaCha8Rng::seed_from_u64(304);
        let csc = CscMatrix::random(&mut rng, 256, 512, 0.1, 16);
        let model = EieModel::default();
        let dense_act = model.estimate(&mut rng, &csc, 0.9).unwrap();
        let sparse_act = model.estimate(&mut rng, &csc, 0.1).unwrap();
        assert!(
            dense_act.cycles > 4 * sparse_act.cycles,
            "90% vs 10% activations: {} vs {}",
            dense_act.cycles,
            sparse_act.cycles
        );
    }

    #[test]
    fn from_dense_validates_arguments() {
        let dense = Tensor::<f64>::zeros(vec![2, 2]);
        assert!(CscMatrix::from_dense(&dense, 0.0, 16).is_err());
        assert!(CscMatrix::from_dense(&dense, 1.5, 16).is_err());
        assert!(CscMatrix::from_dense(&dense, 0.5, 0).is_err());
    }

    #[test]
    fn storage_is_much_smaller_than_dense() {
        let mut rng = ChaCha8Rng::seed_from_u64(305);
        let csc = CscMatrix::random(&mut rng, 512, 512, 0.04, 16);
        let dense_bits = 512 * 512 * 32;
        assert!(csc.storage_bits() * 10 < dense_bits);
    }
}
