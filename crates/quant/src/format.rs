use tie_tensor::{Result, TensorError};

/// A signed 16-bit Q-number format with a runtime fraction-bit count.
///
/// A value `x` is stored as `round(x · 2^frac_bits)` clamped to
/// `[-32768, 32767]`. `QFormat::new(12)` is Q3.12: range ±8, step 2⁻¹².
/// The TIE paper fixes the container at 16 bits (Table 5) but the fraction
/// split is a per-layer calibration choice, so it is runtime data here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QFormat {
    frac_bits: u32,
}

impl QFormat {
    /// Total container bits (paper Table 5: 16-bit quantization).
    pub const CONTAINER_BITS: u32 = 16;

    /// Creates a format with `frac_bits` fraction bits.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if `frac_bits >= 16`
    /// (at least the sign bit must remain).
    pub fn new(frac_bits: u32) -> Result<Self> {
        if frac_bits >= Self::CONTAINER_BITS {
            return Err(TensorError::InvalidArgument {
                message: format!("frac_bits {frac_bits} must be < {}", Self::CONTAINER_BITS),
            });
        }
        Ok(QFormat { frac_bits })
    }

    /// Fraction bits.
    pub fn frac_bits(&self) -> u32 {
        self.frac_bits
    }

    /// Quantization step `2^-frac_bits`.
    pub fn step(&self) -> f64 {
        (2.0f64).powi(-(self.frac_bits as i32))
    }

    /// Largest representable value.
    pub fn max_value(&self) -> f64 {
        i16::MAX as f64 * self.step()
    }

    /// Smallest (most negative) representable value.
    pub fn min_value(&self) -> f64 {
        i16::MIN as f64 * self.step()
    }

    /// Quantizes a real value: round-to-nearest-even scaling, saturating at
    /// the container bounds.
    pub fn quantize(&self, x: f64) -> i16 {
        let scaled = x * (1u32 << self.frac_bits) as f64;
        let rounded = scaled.round_ties_even();
        rounded.clamp(i16::MIN as f64, i16::MAX as f64) as i16
    }

    /// True if quantizing `x` would saturate.
    pub fn saturates(&self, x: f64) -> bool {
        let scaled = (x * (1u32 << self.frac_bits) as f64).round_ties_even();
        scaled > i16::MAX as f64 || scaled < i16::MIN as f64
    }

    /// Dequantizes a raw code back to a real value.
    pub fn dequantize(&self, q: i16) -> f64 {
        q as f64 * self.step()
    }

    /// Picks the largest fraction-bit count whose range covers
    /// `max_abs` (standard symmetric-range calibration).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if `max_abs` is not a
    /// positive finite number.
    pub fn calibrate(max_abs: f64) -> Result<Self> {
        if !(max_abs.is_finite() && max_abs > 0.0) {
            return Err(TensorError::InvalidArgument {
                message: format!("cannot calibrate QFormat for max_abs = {max_abs}"),
            });
        }
        // Finest format whose range covers max_abs: descend from Q0.15.
        let mut f: u32 = Self::CONTAINER_BITS - 1;
        while f > 0 && (QFormat { frac_bits: f }).saturates(max_abs) {
            f -= 1;
        }
        QFormat::new(f)
    }
}

impl Default for QFormat {
    /// Q4.11: range ±16, a serviceable default for unit-scale activations.
    fn default() -> Self {
        QFormat { frac_bits: 11 }
    }
}

impl std::fmt::Display for QFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Q{}.{}",
            Self::CONTAINER_BITS - 1 - self.frac_bits,
            self.frac_bits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_too_many_frac_bits() {
        assert!(QFormat::new(16).is_err());
        assert!(QFormat::new(15).is_ok());
        assert!(QFormat::new(0).is_ok());
    }

    #[test]
    fn quantize_dequantize_roundtrip_within_half_step() {
        let fmt = QFormat::new(10).unwrap();
        for x in [-3.7, -0.001, 0.0, 0.4999, 2.25, 15.99] {
            let q = fmt.quantize(x);
            let back = fmt.dequantize(q);
            assert!(
                (back - x).abs() <= fmt.step() / 2.0 + 1e-12,
                "x={x} back={back}"
            );
        }
    }

    #[test]
    fn saturation_clamps_and_is_reported() {
        let fmt = QFormat::new(12).unwrap(); // range ±8
        assert!(fmt.saturates(10.0));
        assert_eq!(fmt.quantize(10.0), i16::MAX);
        assert_eq!(fmt.quantize(-10.0), i16::MIN);
        assert!(!fmt.saturates(7.9));
    }

    #[test]
    fn calibrate_covers_max_abs_without_waste() {
        for max_abs in [0.1, 0.9, 1.0, 3.5, 100.0, 20000.0] {
            let fmt = QFormat::calibrate(max_abs).unwrap();
            assert!(!fmt.saturates(max_abs), "max_abs {max_abs} saturates {fmt}");
            // One more fraction bit would saturate (unless already at max).
            if fmt.frac_bits() < 15 {
                let finer = QFormat::new(fmt.frac_bits() + 1).unwrap();
                assert!(
                    finer.saturates(max_abs),
                    "{fmt} wastes range for max_abs {max_abs}"
                );
            }
        }
        assert!(QFormat::calibrate(0.0).is_err());
        assert!(QFormat::calibrate(f64::NAN).is_err());
    }

    #[test]
    fn display_shows_q_notation() {
        assert_eq!(QFormat::new(12).unwrap().to_string(), "Q3.12");
        assert_eq!(QFormat::default().to_string(), "Q4.11");
    }

    #[test]
    fn step_and_range_consistency() {
        let fmt = QFormat::new(8).unwrap();
        assert_eq!(fmt.step(), 1.0 / 256.0);
        assert!((fmt.max_value() - 127.99609375).abs() < 1e-12);
        assert_eq!(fmt.min_value(), -128.0);
    }
}
