use crate::QFormat;
use tie_tensor::{Result, Scalar, Shape, Tensor, TensorError};

/// A tensor of 16-bit fixed-point codes with a shared [`QFormat`].
///
/// This is the storage format of everything inside the TIE datapath:
/// unfolded tensor cores in the weight SRAM and intermediate `V_h`
/// matrices in the working SRAMs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QTensor {
    shape: Shape,
    data: Vec<i16>,
    format: QFormat,
}

impl QTensor {
    /// Quantizes a real tensor (round-to-nearest, saturating).
    pub fn quantize<T: Scalar>(t: &Tensor<T>, format: QFormat) -> Self {
        QTensor {
            shape: t.shape().clone(),
            data: t
                .data()
                .iter()
                .map(|v| format.quantize(v.to_f64()))
                .collect(),
            format,
        }
    }

    /// Quantizes with a format calibrated to the tensor's own max-abs.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] for an all-zero tensor
    /// (calibration is undefined); quantize such tensors with an explicit
    /// format instead.
    pub fn quantize_calibrated<T: Scalar>(t: &Tensor<T>) -> Result<Self> {
        let fmt = QFormat::calibrate(t.max_abs())?;
        Ok(Self::quantize(t, fmt))
    }

    /// Wraps raw codes.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ElementCountMismatch`] on a length mismatch.
    pub fn from_codes(dims: Vec<usize>, data: Vec<i16>, format: QFormat) -> Result<Self> {
        let shape = Shape::new(dims)?;
        if shape.num_elements() != data.len() {
            return Err(TensorError::ElementCountMismatch {
                expected: shape.num_elements(),
                got: data.len(),
            });
        }
        Ok(QTensor {
            shape,
            data,
            format,
        })
    }

    /// The tensor shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The raw 16-bit codes.
    pub fn codes(&self) -> &[i16] {
        &self.data
    }

    /// The quantization format.
    pub fn format(&self) -> QFormat {
        self.format
    }

    /// Number of elements.
    pub fn num_elements(&self) -> usize {
        self.data.len()
    }

    /// Storage footprint in bytes (2 bytes per code).
    pub fn bytes(&self) -> usize {
        self.data.len() * 2
    }

    /// Converts back to a real tensor.
    pub fn dequantize(&self) -> Tensor<f64> {
        Tensor::from_vec(
            self.shape.dims().to_vec(),
            self.data
                .iter()
                .map(|&q| self.format.dequantize(q))
                .collect(),
        )
        .expect("shape matches data by construction")
    }

    /// Code at a flat offset.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is out of range.
    pub fn code_at(&self, offset: usize) -> i16 {
        self.data[offset]
    }

    /// Fraction of codes pinned at the saturation bounds.
    pub fn saturation_fraction(&self) -> f64 {
        let sat = self
            .data
            .iter()
            .filter(|&&q| q == i16::MAX || q == i16::MIN)
            .count();
        sat as f64 / self.data.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_dequantize_error_bounded_by_half_step() {
        let t =
            Tensor::<f64>::from_vec(vec![2, 3], vec![0.1, -0.2, 0.33, 1.5, -2.75, 3.1]).unwrap();
        let fmt = QFormat::new(12).unwrap();
        let q = QTensor::quantize(&t, fmt);
        let back = q.dequantize();
        assert!(back.approx_eq(&t, fmt.step() / 2.0 + 1e-12));
        assert_eq!(q.bytes(), 12);
    }

    #[test]
    fn calibrated_quantization_never_saturates() {
        let t = Tensor::<f64>::from_vec(vec![3], vec![100.0, -250.0, 3.0]).unwrap();
        let q = QTensor::quantize_calibrated(&t).unwrap();
        assert_eq!(q.saturation_fraction(), 0.0);
        assert!(q.dequantize().approx_eq(&t, q.format().step() / 2.0 + 1e-9));
        let zero = Tensor::<f64>::zeros(vec![2]);
        assert!(QTensor::quantize_calibrated(&zero).is_err());
    }

    #[test]
    fn from_codes_validates_length() {
        let fmt = QFormat::default();
        assert!(QTensor::from_codes(vec![2, 2], vec![0; 3], fmt).is_err());
        let q = QTensor::from_codes(vec![2, 2], vec![1, 2, 3, 4], fmt).unwrap();
        assert_eq!(q.code_at(3), 4);
        assert_eq!(q.num_elements(), 4);
    }

    #[test]
    fn saturation_fraction_counts_pinned_codes() {
        let fmt = QFormat::new(12).unwrap(); // range ±8
        let t = Tensor::<f64>::from_vec(vec![4], vec![100.0, -100.0, 1.0, 2.0]).unwrap();
        let q = QTensor::quantize(&t, fmt);
        assert_eq!(q.saturation_fraction(), 0.5);
    }
}
