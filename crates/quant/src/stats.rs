//! Quantization-error measurement helpers.
//!
//! Used by the ablation experiments (quantization-width sweep) to report
//! how much accuracy the 16-bit TIE datapath costs relative to the float
//! reference.

use tie_tensor::{Result, Scalar, Tensor, TensorError};

/// Error summary between a quantized (dequantized-back) tensor and its
/// float reference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorStats {
    /// Largest absolute elementwise error.
    pub max_abs_error: f64,
    /// Root-mean-square error.
    pub rmse: f64,
    /// Signal-to-quantization-noise ratio in dB
    /// (`10·log10(‖ref‖² / ‖err‖²)`); `f64::INFINITY` for an exact match.
    pub sqnr_db: f64,
}

/// Computes [`ErrorStats`] between `approx` and `reference`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
pub fn error_stats<T: Scalar>(approx: &Tensor<T>, reference: &Tensor<T>) -> Result<ErrorStats> {
    if approx.shape() != reference.shape() {
        return Err(TensorError::ShapeMismatch {
            left: approx.dims().to_vec(),
            right: reference.dims().to_vec(),
        });
    }
    let n = reference.num_elements() as f64;
    let mut max_abs = 0.0f64;
    let mut err2 = 0.0f64;
    let mut ref2 = 0.0f64;
    for (a, r) in approx.data().iter().zip(reference.data()) {
        let e = a.to_f64() - r.to_f64();
        max_abs = max_abs.max(e.abs());
        err2 += e * e;
        ref2 += r.to_f64() * r.to_f64();
    }
    let sqnr_db = if err2 == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (ref2 / err2).log10()
    };
    Ok(ErrorStats {
        max_abs_error: max_abs,
        rmse: (err2 / n).sqrt(),
        sqnr_db,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match_gives_infinite_sqnr() {
        let t = Tensor::<f64>::from_vec(vec![3], vec![1.0, 2.0, 3.0]).unwrap();
        let s = error_stats(&t, &t).unwrap();
        assert_eq!(s.max_abs_error, 0.0);
        assert_eq!(s.rmse, 0.0);
        assert!(s.sqnr_db.is_infinite());
    }

    #[test]
    fn known_error_values() {
        let r = Tensor::<f64>::from_vec(vec![2], vec![3.0, 4.0]).unwrap();
        let a = Tensor::<f64>::from_vec(vec![2], vec![3.0, 4.5]).unwrap();
        let s = error_stats(&a, &r).unwrap();
        assert!((s.max_abs_error - 0.5).abs() < 1e-12);
        assert!((s.rmse - (0.25f64 / 2.0).sqrt()).abs() < 1e-12);
        // SQNR = 10 log10(25 / 0.25) = 20 dB
        assert!((s.sqnr_db - 20.0).abs() < 1e-9);
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let a = Tensor::<f64>::zeros(vec![2]);
        let b = Tensor::<f64>::zeros(vec![3]);
        assert!(error_stats(&a, &b).is_err());
    }

    #[test]
    fn finer_format_gives_higher_sqnr() {
        use crate::{QFormat, QTensor};
        let t =
            Tensor::<f64>::from_fn(vec![64], |i| ((i[0] * 37 % 97) as f64 / 97.0) - 0.5).unwrap();
        let coarse = QTensor::quantize(&t, QFormat::new(6).unwrap()).dequantize();
        let fine = QTensor::quantize(&t, QFormat::new(14).unwrap()).dequantize();
        let s_coarse = error_stats(&coarse, &t).unwrap();
        let s_fine = error_stats(&fine, &t).unwrap();
        assert!(
            s_fine.sqnr_db > s_coarse.sqnr_db + 30.0,
            "8 extra bits ≈ 48 dB: {} vs {}",
            s_fine.sqnr_db,
            s_coarse.sqnr_db
        );
    }
}
