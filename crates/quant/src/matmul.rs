//! Quantized matrix multiplication on the modeled TIE datapath.
//!
//! # Kernel structure and bit-identity
//!
//! Saturation makes the fixed-point datapath non-associative: the 24-bit
//! register clamps *mid-accumulation*, so every output's MAC sequence must
//! stay in ascending `k` for any restructured kernel to reproduce the
//! per-output reference ([`qmatmul_naive`]) bit-for-bit. Since the
//! Tile/Stage/Global refactor the kernel is an instantiation of
//! `tie_tensor::tile`'s streaming stage with the [`QuantPath`] datapath,
//! which keeps that invariant by construction:
//!
//! * outputs are produced in column tiles of `TJ` lanes per row; each lane
//!   is one independent output accumulated over the **full** `k` range in
//!   ascending order (the streaming stage never `k`-blocks — partial
//!   accumulator state can never be merged across blocks without changing
//!   clamp points),
//! * each lane emulates the [`Accumulator`] arithmetic in pure `i32`:
//!   widen the `i16×i16` product, round-shift by `prod_shift`, add, clamp
//!   to the 24-bit range with a sticky saturation flag, and finally
//!   round-shift by `out_shift` into a saturating 16-bit code. All of it
//!   fits `i32` (see the proof on [`QuantPath`]), so the lanes vectorize.
//!
//! Because per-output arithmetic is independent of the tile width, *any*
//! `TJ` produces identical codes and reports — which is what makes the
//! runtime AVX-512/AVX2/portable dispatch (`tie_tensor::tile::IntAuto`,
//! the same idiom as the float GEMMs) bit-safe. Row spans split across the
//! persistent pool exactly like the float kernels; pool stealing moves
//! whole spans, never the MAC order inside one, so results are identical
//! at any `TIE_THREADS` / pool size.
//!
//! The per-output state is two fixed-size stack arrays (`[i32; TJ]` values
//! and lane flags, structure-of-arrays for the vectorizer) living in the
//! pool job frame — steady state performs **zero heap allocation** (the
//! counting-allocator suite pins this).
//!
//! Epilogues ([`Requant`], [`RequantRelu`]) apply at the clipped `i32`
//! code *before* narrowing, after both saturation counters have been
//! taken — so [`qmatmul_raw_relu`] reports are bit-identical to
//! requant-then-relu run separately.

use crate::{Accumulator, QFormat, QTensor};
use tie_tensor::linalg::DestMap;
use tie_tensor::tile::{
    stream_gemm, Datapath, Dest, Epilogue, IntAuto, Mapped, PortableTile, Requant, RequantRelu,
    RowMajor, SatSink, TileKernel,
};
use tie_tensor::{Result, TensorError};

/// Portable column-tile width (vectorizes to 128-bit lanes) — the pinned
/// instantiation behind [`qmatmul_raw_portable`].
const QTILE_J: usize = 8;

/// Saturation diagnostics of one quantized matrix multiply.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QMatmulReport {
    /// Outputs whose 24-bit accumulator saturated mid-accumulation.
    pub acc_saturations: u64,
    /// Outputs that saturated during the final 16-bit requantization.
    pub out_saturations: u64,
    /// Total output elements produced.
    pub outputs: u64,
}

impl QMatmulReport {
    /// True when no saturation of any kind occurred.
    pub fn is_clean(&self) -> bool {
        self.acc_saturations == 0 && self.out_saturations == 0
    }

    /// Saturation events (accumulator + requantization) per output
    /// element — 0.0 for an empty report. The same figure the serving
    /// layer tracks as `quant_saturation_rate()`, available per-multiply
    /// so calibration loops can gate on it directly.
    #[must_use]
    pub fn saturation_rate(&self) -> f64 {
        if self.outputs == 0 {
            return 0.0;
        }
        (self.acc_saturations + self.out_saturations) as f64 / self.outputs as f64
    }

    /// Element-wise sum of two reports (stage-wise aggregation).
    #[must_use]
    pub fn merged(&self, other: &QMatmulReport) -> QMatmulReport {
        QMatmulReport {
            acc_saturations: self.acc_saturations + other.acc_saturations,
            out_saturations: self.out_saturations + other.out_saturations,
            outputs: self.outputs + other.outputs,
        }
    }
}

/// Fixed-point alignment of one quantized GEMM, derived from the operand
/// and output formats.
///
/// Raw products sit at `frac_a + frac_b` fraction bits; the accumulator
/// working fraction is `min(frac_a + frac_b, out_frac + 8)` — full product
/// precision when it fits, otherwise 8 guard bits above the output step
/// (the headroom a 24-bit register offers over the 16-bit output). Each
/// product is arithmetically shifted right by `prod_shift` before entering
/// the accumulator, and the final value by `out_shift` on requantization.
#[must_use]
pub fn alignment(a: QFormat, b: QFormat, out: QFormat) -> (u32, u32) {
    let prod_frac = a.frac_bits() + b.frac_bits();
    let acc_frac = prod_frac.min(out.frac_bits() + 8);
    let prod_shift = prod_frac - acc_frac;
    let out_shift = acc_frac.saturating_sub(out.frac_bits());
    (prod_shift, out_shift)
}

/// The saturating fixed-point datapath of the streaming tile stage — one
/// `i32` lane per output, reproducing [`Accumulator::mac`] +
/// [`Accumulator::to_i16`] exactly.
///
/// # Why pure `i32` lanes are exact
///
/// The reference accumulator adds in `i64` before clamping; these lanes
/// add in `i32`, which is only valid because no intermediate can overflow:
///
/// * `prod = a·b` with `|a|,|b| ≤ 2^15` gives `|prod| ≤ 2^30`;
/// * `prod + half` with `half = 2^(prod_shift−1) ≤ 2^29` stays below
///   `2^31` (and `prod_shift > 0` implies `half ≤ 2^(30−8−1)` for any
///   alignment produced by [`alignment`], far smaller);
/// * the running value is always post-clamp, `|value| ≤ 2^23`, so
///   `value + shifted` is bounded by `2^23 + 2^30 < 2^31 − 1`;
/// * requantization adds `half ≤ 2^(out_shift−1)` to a value `≤ 2^23`.
///
/// So every `i32` add here equals the reference's `i64` add, and the
/// subsequent clamp lands identically.
///
/// `x >> 0` is the identity and both halves are 0 then, so the shifts
/// need no branch in the lane loop. Epilogues see the post-clip `i32`
/// code (both saturation counters already taken); [`RequantRelu`]'s
/// `max(0)` there equals `max(0)` on the narrowed `i16`.
#[derive(Debug, Clone, Copy)]
pub struct QuantPath {
    prod_shift: u32,
    out_shift: u32,
    prod_half: i32,
    out_half: i32,
}

impl QuantPath {
    /// Datapath for the given [`alignment`] shifts.
    #[must_use]
    pub fn new(prod_shift: u32, out_shift: u32) -> Self {
        QuantPath {
            prod_shift,
            out_shift,
            prod_half: if prod_shift > 0 {
                1i32 << (prod_shift - 1)
            } else {
                0
            },
            out_half: if out_shift > 0 {
                1i32 << (out_shift - 1)
            } else {
                0
            },
        }
    }
}

impl Datapath for QuantPath {
    type In = i16;
    type Out = i16;
    type Lane = i32;
    type Sat = bool;
    type EpiV = i32;
    type Stats = (u64, u64);
    type Sink = SatSink;

    #[inline(always)]
    fn lane_zero(self) -> i32 {
        0
    }
    #[inline(always)]
    fn sat_zero(self) -> bool {
        false
    }
    #[inline(always)]
    fn mac(self, lane: &mut i32, sat: &mut bool, a: i16, b: i16) {
        let shifted = (a as i32 * b as i32 + self.prod_half) >> self.prod_shift;
        let sum = *lane + shifted;
        let clamped = sum.clamp(Accumulator::MIN, Accumulator::MAX);
        *sat |= clamped != sum;
        *lane = clamped;
    }
    #[inline(always)]
    fn finish<E: Epilogue<i32>>(
        self,
        lane: i32,
        sat: bool,
        e: usize,
        epi: &E,
        stats: &mut (u64, u64),
    ) -> i16 {
        stats.0 += u64::from(sat);
        let v = (lane + self.out_half) >> self.out_shift;
        let clipped = v.clamp(i16::MIN as i32, i16::MAX as i32);
        stats.1 += u64::from(clipped != v);
        epi.apply(clipped, e) as i16
    }
    #[inline(always)]
    fn stats_add(sink: &SatSink, stats: (u64, u64)) {
        sink.add(stats.0, stats.1);
    }
    #[inline(always)]
    fn stats_take(sink: SatSink) -> (u64, u64) {
        sink.take()
    }
}

/// Drives one quantized streaming GEMM and folds the saturation totals
/// into a [`QMatmulReport`].
#[allow(clippy::too_many_arguments)]
fn qmm_stream<K: TileKernel, D: Dest, E: Epilogue<i32>>(
    kern: K,
    a: &[i16],
    b: &[i16],
    codes: &mut [i16],
    m: usize,
    k: usize,
    n_mat: usize,
    bsz: usize,
    prod_shift: u32,
    out_shift: u32,
    dest: &D,
    epi: &E,
) -> QMatmulReport {
    let (acc_saturations, out_saturations) = stream_gemm(
        QuantPath::new(prod_shift, out_shift),
        kern,
        a,
        b,
        codes,
        m,
        k,
        n_mat,
        bsz,
        dest,
        epi,
    );
    QMatmulReport {
        acc_saturations,
        out_saturations,
        outputs: (m * n_mat * bsz) as u64,
    }
}

fn check_dims(a: &QTensor, b: &QTensor) -> Result<(usize, usize, usize)> {
    let a_dims = a.shape().dims();
    let b_dims = b.shape().dims();
    if a_dims.len() != 2 {
        return Err(TensorError::NotAMatrix { ndim: a_dims.len() });
    }
    if b_dims.len() != 2 {
        return Err(TensorError::NotAMatrix { ndim: b_dims.len() });
    }
    let (m, ka) = (a_dims[0], a_dims[1]);
    let (kb, n) = (b_dims[0], b_dims[1]);
    if ka != kb {
        return Err(TensorError::MatmulDimMismatch {
            left: (m, ka),
            right: (kb, n),
        });
    }
    Ok((m, ka, n))
}

/// Quantized product `C = A · B` with TIE datapath semantics.
///
/// Inputs carry formats `Qa` and `Qb`; the fixed-point alignment is chosen
/// by [`alignment`]. The kernel is the vectorized tile engine described in
/// the [module docs](self) — bit-identical to [`qmatmul_naive`] in codes
/// and saturation reports at every dispatch tier and pool size.
///
/// # Errors
///
/// Returns [`TensorError::NotAMatrix`] / [`TensorError::MatmulDimMismatch`]
/// on shape problems.
///
/// # Example
///
/// ```
/// use tie_quant::{qmatmul, QFormat, QTensor};
/// # fn main() -> Result<(), tie_tensor::TensorError> {
/// let fmt = QFormat::new(0)?; // integer mode
/// let a = QTensor::from_codes(vec![1, 2], vec![3, -2], fmt)?;
/// let b = QTensor::from_codes(vec![2, 1], vec![10, 4], fmt)?;
/// let (c, report) = qmatmul(&a, &b, fmt)?;
/// assert_eq!(c.codes(), &[22]);
/// assert!(report.is_clean());
/// # Ok(())
/// # }
/// ```
pub fn qmatmul(a: &QTensor, b: &QTensor, out_format: QFormat) -> Result<(QTensor, QMatmulReport)> {
    let (m, _, n) = check_dims(a, b)?;
    let mut codes = vec![0i16; m * n];
    let report = qmatmul_into(a, b, out_format, &mut codes)?;
    let out = QTensor::from_codes(vec![m, n], codes, out_format)?;
    Ok((out, report))
}

/// [`qmatmul`] into a caller-owned code buffer: zero heap allocation in
/// steady state (the accumulator scratch is fixed-size stack tiles inside
/// the pool job frame — see the [module docs](self)).
///
/// `codes` must hold exactly `m·n` elements; it is fully overwritten.
///
/// # Errors
///
/// Returns shape errors as [`qmatmul`], plus
/// [`TensorError::ElementCountMismatch`] if `codes` has the wrong length.
pub fn qmatmul_into(
    a: &QTensor,
    b: &QTensor,
    out_format: QFormat,
    codes: &mut [i16],
) -> Result<QMatmulReport> {
    let (m, ka, n) = check_dims(a, b)?;
    if codes.len() != m * n {
        return Err(TensorError::ElementCountMismatch {
            expected: m * n,
            got: codes.len(),
        });
    }
    let (prod_shift, out_shift) = alignment(a.format(), b.format(), out_format);
    debug_assert!(
        a.format().frac_bits() + b.format().frac_bits() >= out_format.frac_bits().min(15),
        "alignment keeps acc_frac >= out_frac whenever products can express it"
    );
    Ok(qmatmul_raw(
        a.codes(),
        b.codes(),
        m,
        ka,
        n,
        prod_shift,
        out_shift,
        codes,
    ))
}

/// Raw-slice quantized GEMM: `codes = requant(A · B)` over `m×k · k×n`
/// code matrices with explicit `prod_shift` / `out_shift` alignment (see
/// [`alignment`]). This is the engine under [`qmatmul`] — the simulator's
/// batched stage path and the quantized serving engine call it directly
/// with their own stage alignment.
///
/// # Panics
///
/// Panics (via `assert!`) on slice-length mismatches — callers own the
/// shape bookkeeping on this path.
#[allow(clippy::too_many_arguments)]
#[must_use]
pub fn qmatmul_raw(
    a: &[i16],
    b: &[i16],
    m: usize,
    k: usize,
    n: usize,
    prod_shift: u32,
    out_shift: u32,
    codes: &mut [i16],
) -> QMatmulReport {
    assert_eq!(a.len(), m * k, "A is m×k");
    assert_eq!(b.len(), k * n, "B is k×n");
    assert_eq!(codes.len(), m * n, "C is m×n");
    qmm_stream(
        IntAuto,
        a,
        b,
        codes,
        m,
        k,
        n,
        1,
        prod_shift,
        out_shift,
        &RowMajor::new(m, n),
        &Requant,
    )
}

/// [`qmatmul_raw`] with ReLU fused into the requantization epilogue:
/// `codes = max(requant(A · B), 0)`, applied at the clipped `i32` code
/// before narrowing. Codes equal [`qmatmul_raw`]-then-`max(0)` and the
/// saturation report is **bit-identical** to [`qmatmul_raw`]'s — both
/// counters are taken before the epilogue runs.
///
/// # Panics
///
/// Panics (via `assert!`) on slice-length mismatches.
#[allow(clippy::too_many_arguments)]
#[must_use]
pub fn qmatmul_raw_relu(
    a: &[i16],
    b: &[i16],
    m: usize,
    k: usize,
    n: usize,
    prod_shift: u32,
    out_shift: u32,
    codes: &mut [i16],
) -> QMatmulReport {
    assert_eq!(a.len(), m * k, "A is m×k");
    assert_eq!(b.len(), k * n, "B is k×n");
    assert_eq!(codes.len(), m * n, "C is m×n");
    qmm_stream(
        IntAuto,
        a,
        b,
        codes,
        m,
        k,
        n,
        1,
        prod_shift,
        out_shift,
        &RowMajor::new(m, n),
        &RequantRelu,
    )
}

/// [`qmatmul_raw`] pinned to the portable tile width, skipping the SIMD
/// dispatch. The property suite compares it against the dispatched kernel
/// and the naive reference to prove every tier computes the same codes and
/// reports on this machine.
#[doc(hidden)]
#[allow(clippy::too_many_arguments)]
#[must_use]
pub fn qmatmul_raw_portable(
    a: &[i16],
    b: &[i16],
    m: usize,
    k: usize,
    n: usize,
    prod_shift: u32,
    out_shift: u32,
    codes: &mut [i16],
) -> QMatmulReport {
    assert_eq!(a.len(), m * k, "A is m×k");
    assert_eq!(b.len(), k * n, "B is k×n");
    assert_eq!(codes.len(), m * n, "C is m×n");
    qmm_stream(
        PortableTile::<QTILE_J, 1>,
        a,
        b,
        codes,
        m,
        k,
        n,
        1,
        prod_shift,
        out_shift,
        &RowMajor::new(m, n),
        &Requant,
    )
}

/// [`qmatmul_raw_relu`] pinned to the portable tile width, skipping the
/// SIMD dispatch — the fused-ReLU twin of [`qmatmul_raw_portable`], for
/// the differential lattice.
#[doc(hidden)]
#[allow(clippy::too_many_arguments)]
#[must_use]
pub fn qmatmul_raw_relu_portable(
    a: &[i16],
    b: &[i16],
    m: usize,
    k: usize,
    n: usize,
    prod_shift: u32,
    out_shift: u32,
    codes: &mut [i16],
) -> QMatmulReport {
    assert_eq!(a.len(), m * k, "A is m×k");
    assert_eq!(b.len(), k * n, "B is k×n");
    assert_eq!(codes.len(), m * n, "C is m×n");
    qmm_stream(
        PortableTile::<QTILE_J, 1>,
        a,
        b,
        codes,
        m,
        k,
        n,
        1,
        prod_shift,
        out_shift,
        &RowMajor::new(m, n),
        &RequantRelu,
    )
}

/// [`qmatmul_raw`] with a fused destination-map write epilogue — the
/// quantized twin of `tie_tensor::linalg::gemm_into_mapped`, used by the
/// quantized serving engine and the simulator's batched fast path to fold
/// the inter-stage Transform into the store.
///
/// `b` is `k × (n_mat·bsz)` with logical columns batch-inner; output
/// element `(i, q·bsz + cb)` lands at `(map.row[i] + map.col[q])·bsz + cb`
/// of `codes`. The lane arithmetic is [`QuantPath`] verbatim (same MAC
/// order, same clamp points), only the final store is redirected, so codes
/// *and* the saturation report are bit-identical to [`qmatmul_raw`]
/// followed by a permutation, at any tile width and pool size.
///
/// # Panics
///
/// Panics (via `assert!`) on slice-length / map-extent mismatches.
#[allow(clippy::too_many_arguments)]
#[must_use]
pub fn qmatmul_raw_mapped(
    a: &[i16],
    b: &[i16],
    m: usize,
    k: usize,
    n_mat: usize,
    bsz: usize,
    prod_shift: u32,
    out_shift: u32,
    codes: &mut [i16],
    map: &DestMap,
) -> QMatmulReport {
    let n = n_mat * bsz;
    assert!(bsz > 0, "batch width must be positive");
    assert_eq!(map.rows(), m, "map rows are m");
    assert_eq!(map.cols(), n_mat, "map cols are n_mat");
    assert_eq!(a.len(), m * k, "A is m×k");
    assert_eq!(b.len(), k * n, "B is k×(n_mat·bsz)");
    assert_eq!(codes.len(), m * n, "C is m×(n_mat·bsz)");
    qmm_stream(
        IntAuto,
        a,
        b,
        codes,
        m,
        k,
        n_mat,
        bsz,
        prod_shift,
        out_shift,
        &Mapped::new(map),
        &Requant,
    )
}

/// [`qmatmul_raw_mapped`] with ReLU fused into the requantization epilogue
/// (see [`qmatmul_raw_relu`]) — the quantized engines' final-stage path,
/// which folds the inter-stage Transform *and* the activation into one
/// store loop. Report bit-identical to [`qmatmul_raw_mapped`]'s.
///
/// # Panics
///
/// Panics (via `assert!`) on slice-length / map-extent mismatches.
#[allow(clippy::too_many_arguments)]
#[must_use]
pub fn qmatmul_raw_mapped_relu(
    a: &[i16],
    b: &[i16],
    m: usize,
    k: usize,
    n_mat: usize,
    bsz: usize,
    prod_shift: u32,
    out_shift: u32,
    codes: &mut [i16],
    map: &DestMap,
) -> QMatmulReport {
    let n = n_mat * bsz;
    assert!(bsz > 0, "batch width must be positive");
    assert_eq!(map.rows(), m, "map rows are m");
    assert_eq!(map.cols(), n_mat, "map cols are n_mat");
    assert_eq!(a.len(), m * k, "A is m×k");
    assert_eq!(b.len(), k * n, "B is k×(n_mat·bsz)");
    assert_eq!(codes.len(), m * n, "C is m×(n_mat·bsz)");
    qmm_stream(
        IntAuto,
        a,
        b,
        codes,
        m,
        k,
        n_mat,
        bsz,
        prod_shift,
        out_shift,
        &Mapped::new(map),
        &RequantRelu,
    )
}

/// Reference kernel with the naive per-output loop, kept for equivalence
/// testing against the vectorized [`qmatmul`] (which must reproduce its
/// codes and saturation reports bit-for-bit).
#[doc(hidden)]
pub fn qmatmul_naive(
    a: &QTensor,
    b: &QTensor,
    out_format: QFormat,
) -> Result<(QTensor, QMatmulReport)> {
    let (m, ka, n) = check_dims(a, b)?;
    let (prod_shift, out_shift) = alignment(a.format(), b.format(), out_format);

    let mut codes = vec![0i16; m * n];
    let mut report = QMatmulReport {
        outputs: (m * n) as u64,
        ..QMatmulReport::default()
    };
    let ad = a.codes();
    let bd = b.codes();
    for i in 0..m {
        for j in 0..n {
            let mut acc = Accumulator::new(prod_shift);
            for k in 0..ka {
                acc.mac(ad[i * ka + k], bd[k * n + j]);
            }
            if acc.saturated() {
                report.acc_saturations += 1;
            }
            let (v, sat) = acc.to_i16(out_shift);
            if sat {
                report.out_saturations += 1;
            }
            codes[i * n + j] = v;
        }
    }
    let out = QTensor::from_codes(vec![m, n], codes, out_format)?;
    Ok((out, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use tie_tensor::{init, linalg::matmul, Tensor};

    #[test]
    fn qmatmul_tracks_float_matmul_within_quant_noise() {
        let mut rng = ChaCha8Rng::seed_from_u64(80);
        let a: Tensor<f64> = init::uniform(&mut rng, vec![6, 5], 1.0);
        let b: Tensor<f64> = init::uniform(&mut rng, vec![5, 7], 1.0);
        let fmt = QFormat::new(12).unwrap();
        let qa = QTensor::quantize(&a, fmt);
        let qb = QTensor::quantize(&b, fmt);
        let (qc, report) = qmatmul(&qa, &qb, QFormat::new(11).unwrap()).unwrap();
        assert!(report.is_clean(), "{report:?}");
        let want = matmul(&a, &b).unwrap();
        let got = qc.dequantize();
        // Error budget: input rounding (5 terms) + output rounding.
        let tol = 5.0 * fmt.step() + QFormat::new(11).unwrap().step();
        assert!(
            got.approx_eq(&want, tol),
            "max err {} vs tol {tol}",
            got.sub(&want).unwrap().max_abs()
        );
    }

    #[test]
    fn qmatmul_exact_for_integer_values() {
        // With frac_bits = 0 the datapath is plain integer arithmetic.
        let fmt = QFormat::new(0).unwrap();
        let a = QTensor::from_codes(vec![2, 2], vec![1, 2, 3, 4], fmt).unwrap();
        let b = QTensor::from_codes(vec![2, 2], vec![5, 6, 7, 8], fmt).unwrap();
        let (c, report) = qmatmul(&a, &b, fmt).unwrap();
        assert_eq!(c.codes(), &[19, 22, 43, 50]);
        assert!(report.is_clean());
    }

    #[test]
    fn output_saturation_is_reported_not_silent() {
        let fmt = QFormat::new(0).unwrap();
        let a = QTensor::from_codes(vec![1, 1], vec![30000], fmt).unwrap();
        let b = QTensor::from_codes(vec![1, 1], vec![2], fmt).unwrap();
        let (c, report) = qmatmul(&a, &b, fmt).unwrap();
        assert_eq!(c.codes(), &[i16::MAX]);
        assert_eq!(report.out_saturations, 1);
    }

    #[test]
    fn accumulator_saturation_is_reported() {
        let fmt = QFormat::new(0).unwrap();
        // 300 * 30000 * 1... one product = 9e6 > 24-bit max 8388607.
        let a = QTensor::from_codes(vec![1, 1], vec![300], fmt).unwrap();
        let b = QTensor::from_codes(vec![1, 1], vec![30000], fmt).unwrap();
        let (_, report) = qmatmul(&a, &b, fmt).unwrap();
        assert_eq!(report.acc_saturations, 1);
    }

    #[test]
    fn restructured_kernel_bitwise_matches_naive() {
        // Saturation makes the datapath non-associative, so this is the
        // load-bearing check: the vectorized tile kernel must agree with
        // the per-output reference on codes AND reports, including inputs
        // engineered to saturate mid-accumulation, at any thread count.
        let mut rng = ChaCha8Rng::seed_from_u64(90);
        let fmt = QFormat::new(4).unwrap();
        let big: Tensor<f64> = init::uniform(&mut rng, vec![9, 13], 1800.0);
        let spread: Tensor<f64> = init::uniform(&mut rng, vec![13, 11], 1500.0);
        let qa = QTensor::quantize(&big, fmt);
        let qb = QTensor::quantize(&spread, fmt);
        for threads in [1usize, 4] {
            let prev = tie_tensor::parallel::set_num_threads(threads);
            let (c_fast, r_fast) = qmatmul(&qa, &qb, QFormat::new(2).unwrap()).unwrap();
            tie_tensor::parallel::set_num_threads(prev);
            let (c_ref, r_ref) = qmatmul_naive(&qa, &qb, QFormat::new(2).unwrap()).unwrap();
            assert_eq!(c_fast.codes(), c_ref.codes(), "threads={threads}");
            assert_eq!(r_fast, r_ref, "threads={threads}");
        }
        // The engineered inputs should actually exercise saturation.
        let (_, r) = qmatmul_naive(&qa, &qb, QFormat::new(2).unwrap()).unwrap();
        assert!(
            r.acc_saturations > 0 || r.out_saturations > 0,
            "test inputs failed to saturate: {r:?}"
        );
    }

    #[test]
    fn into_variant_matches_allocating_variant() {
        let mut rng = ChaCha8Rng::seed_from_u64(91);
        let fmt = QFormat::new(6).unwrap();
        let a: Tensor<f64> = init::uniform(&mut rng, vec![7, 10], 40.0);
        let b: Tensor<f64> = init::uniform(&mut rng, vec![10, 9], 40.0);
        let qa = QTensor::quantize(&a, fmt);
        let qb = QTensor::quantize(&b, fmt);
        let out_fmt = QFormat::new(3).unwrap();
        let (c, r) = qmatmul(&qa, &qb, out_fmt).unwrap();
        let mut codes = vec![0i16; 7 * 9];
        let r2 = qmatmul_into(&qa, &qb, out_fmt, &mut codes).unwrap();
        assert_eq!(c.codes(), &codes[..]);
        assert_eq!(r, r2);
        // Wrong buffer length is rejected, not truncated.
        let mut short = vec![0i16; 7 * 9 - 1];
        assert!(qmatmul_into(&qa, &qb, out_fmt, &mut short).is_err());
    }

    #[test]
    fn portable_tile_matches_dispatched_kernel() {
        // Same body, different tile width: must be bit-identical.
        let mut rng = ChaCha8Rng::seed_from_u64(92);
        let fmt = QFormat::new(4).unwrap();
        let a: Tensor<f64> = init::uniform(&mut rng, vec![11, 17], 1700.0);
        let b: Tensor<f64> = init::uniform(&mut rng, vec![17, 19], 1700.0);
        let qa = QTensor::quantize(&a, fmt);
        let qb = QTensor::quantize(&b, fmt);
        let (ps, os) = alignment(fmt, fmt, QFormat::new(2).unwrap());
        let mut c1 = vec![0i16; 11 * 19];
        let mut c2 = vec![0i16; 11 * 19];
        let r1 = qmatmul_raw(qa.codes(), qb.codes(), 11, 17, 19, ps, os, &mut c1);
        let r2 = qmatmul_raw_portable(qa.codes(), qb.codes(), 11, 17, 19, ps, os, &mut c2);
        assert_eq!(c1, c2);
        assert_eq!(r1, r2);
    }

    #[test]
    fn fused_relu_matches_requant_then_relu_with_saturation() {
        // The fused epilogue must not disturb clamp points or counters:
        // codes equal requant-then-max(0), reports equal the plain run's.
        let mut rng = ChaCha8Rng::seed_from_u64(94);
        let fmt = QFormat::new(4).unwrap();
        let (m, k, n) = (9usize, 13usize, 11usize);
        let a_f: Tensor<f64> = init::uniform(&mut rng, vec![m, k], 1800.0);
        let b_f: Tensor<f64> = init::uniform(&mut rng, vec![k, n], 1500.0);
        let qa = QTensor::quantize(&a_f, fmt);
        let qb = QTensor::quantize(&b_f, fmt);
        let (ps, os) = alignment(fmt, fmt, QFormat::new(2).unwrap());
        let mut plain = vec![0i16; m * n];
        let r_plain = qmatmul_raw(qa.codes(), qb.codes(), m, k, n, ps, os, &mut plain);
        assert!(
            r_plain.acc_saturations > 0 || r_plain.out_saturations > 0,
            "test inputs failed to saturate"
        );
        let want: Vec<i16> = plain.iter().map(|&v| v.max(0)).collect();
        let mut fused = vec![0i16; m * n];
        let r_fused = qmatmul_raw_relu(qa.codes(), qb.codes(), m, k, n, ps, os, &mut fused);
        assert_eq!(fused, want);
        assert_eq!(r_fused, r_plain);
    }

    #[test]
    fn mapped_kernel_matches_raw_then_permute_with_saturation() {
        // Saturating inputs: the mapped store must not disturb the clamp
        // points, so codes AND reports must match raw-then-permute exactly,
        // for identity and transposed maps, at several pool sizes.
        let mut rng = ChaCha8Rng::seed_from_u64(93);
        let fmt = QFormat::new(4).unwrap();
        let (m, k, n_mat) = (9usize, 13usize, 11usize);
        let a_f: Tensor<f64> = init::uniform(&mut rng, vec![m, k], 1800.0);
        let qa = QTensor::quantize(&a_f, fmt);
        let (ps, os) = alignment(fmt, fmt, QFormat::new(2).unwrap());
        let tmap = DestMap::new((0..m).collect(), (0..n_mat).map(|q| q * m).collect()).unwrap();
        for bsz in [1usize, 2, 3] {
            let b_f: Tensor<f64> = init::uniform(&mut rng, vec![k, n_mat * bsz], 1500.0);
            let qb = QTensor::quantize(&b_f, fmt);
            let mut plain = vec![0i16; m * n_mat * bsz];
            let r_plain = qmatmul_raw(
                qa.codes(),
                qb.codes(),
                m,
                k,
                n_mat * bsz,
                ps,
                os,
                &mut plain,
            );
            assert!(
                r_plain.acc_saturations > 0 || r_plain.out_saturations > 0,
                "test inputs failed to saturate"
            );
            for (map, name) in [(DestMap::identity(m, n_mat), "id"), (tmap.clone(), "t")] {
                let mut want = vec![0i16; m * n_mat * bsz];
                for i in 0..m {
                    for q in 0..n_mat {
                        for cb in 0..bsz {
                            want[map.offset(i, q) * bsz + cb] =
                                plain[i * n_mat * bsz + q * bsz + cb];
                        }
                    }
                }
                for threads in [1usize, 2, 8] {
                    let prev = tie_tensor::parallel::set_num_threads(threads);
                    let mut got = vec![0i16; m * n_mat * bsz];
                    let r = qmatmul_raw_mapped(
                        qa.codes(),
                        qb.codes(),
                        m,
                        k,
                        n_mat,
                        bsz,
                        ps,
                        os,
                        &mut got,
                        &map,
                    );
                    tie_tensor::parallel::set_num_threads(prev);
                    assert_eq!(got, want, "{name} bsz={bsz} threads={threads}");
                    assert_eq!(r, r_plain, "{name} bsz={bsz} threads={threads}");
                    // The fused-ReLU mapped variant: same report, relu'd
                    // codes.
                    let mut got_relu = vec![0i16; m * n_mat * bsz];
                    let rr = qmatmul_raw_mapped_relu(
                        qa.codes(),
                        qb.codes(),
                        m,
                        k,
                        n_mat,
                        bsz,
                        ps,
                        os,
                        &mut got_relu,
                        &map,
                    );
                    let want_relu: Vec<i16> = want.iter().map(|&v| v.max(0)).collect();
                    assert_eq!(got_relu, want_relu, "{name} bsz={bsz}");
                    assert_eq!(rr, r_plain, "{name} bsz={bsz}");
                }
            }
        }
    }

    #[test]
    fn shape_errors() {
        let fmt = QFormat::new(0).unwrap();
        let a = QTensor::from_codes(vec![2, 3], vec![0; 6], fmt).unwrap();
        let b = QTensor::from_codes(vec![2, 3], vec![0; 6], fmt).unwrap();
        assert!(qmatmul(&a, &b, fmt).is_err());
        let v = QTensor::from_codes(vec![6], vec![0; 6], fmt).unwrap();
        assert!(qmatmul(&v, &b, fmt).is_err());
    }
}
