//! Quantized matrix multiplication on the modeled TIE datapath.

use crate::{Accumulator, QFormat, QTensor};
use std::sync::atomic::{AtomicU64, Ordering};
use tie_tensor::{parallel, Result, TensorError};

/// Saturation diagnostics of one quantized matrix multiply.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QMatmulReport {
    /// Outputs whose 24-bit accumulator saturated mid-accumulation.
    pub acc_saturations: u64,
    /// Outputs that saturated during the final 16-bit requantization.
    pub out_saturations: u64,
    /// Total output elements produced.
    pub outputs: u64,
}

impl QMatmulReport {
    /// True when no saturation of any kind occurred.
    pub fn is_clean(&self) -> bool {
        self.acc_saturations == 0 && self.out_saturations == 0
    }
}

/// Quantized product `C = A · B` with TIE datapath semantics.
///
/// Inputs carry formats `Qa` and `Qb`; raw products therefore sit at
/// `frac_a + frac_b` fraction bits. Each product is shifted right by
/// `prod_shift = frac_a + frac_b − acc_frac` before entering the 24-bit
/// accumulator (where `acc_frac` is the accumulator's working fraction),
/// and results are requantized to `out_format`.
///
/// The accumulator working fraction is chosen automatically as
/// `min(frac_a + frac_b, out_frac + 8)`: full product precision when it
/// fits, otherwise 8 guard bits above the output step — mirroring the
/// headroom a 24-bit register offers over the 16-bit output.
///
/// # Errors
///
/// Returns [`TensorError::NotAMatrix`] / [`TensorError::MatmulDimMismatch`]
/// on shape problems.
///
/// # Example
///
/// ```
/// use tie_quant::{qmatmul, QFormat, QTensor};
/// # fn main() -> Result<(), tie_tensor::TensorError> {
/// let fmt = QFormat::new(0)?; // integer mode
/// let a = QTensor::from_codes(vec![1, 2], vec![3, -2], fmt)?;
/// let b = QTensor::from_codes(vec![2, 1], vec![10, 4], fmt)?;
/// let (c, report) = qmatmul(&a, &b, fmt)?;
/// assert_eq!(c.codes(), &[22]);
/// assert!(report.is_clean());
/// # Ok(())
/// # }
/// ```
pub fn qmatmul(
    a: &QTensor,
    b: &QTensor,
    out_format: QFormat,
) -> Result<(QTensor, QMatmulReport)> {
    let a_dims = a.shape().dims();
    let b_dims = b.shape().dims();
    if a_dims.len() != 2 {
        return Err(TensorError::NotAMatrix { ndim: a_dims.len() });
    }
    if b_dims.len() != 2 {
        return Err(TensorError::NotAMatrix { ndim: b_dims.len() });
    }
    let (m, ka) = (a_dims[0], a_dims[1]);
    let (kb, n) = (b_dims[0], b_dims[1]);
    if ka != kb {
        return Err(TensorError::MatmulDimMismatch {
            left: (m, ka),
            right: (kb, n),
        });
    }
    let prod_frac = a.format().frac_bits() + b.format().frac_bits();
    let acc_frac = prod_frac.min(out_format.frac_bits() + 8);
    let prod_shift = prod_frac - acc_frac;
    let out_shift = acc_frac.saturating_sub(out_format.frac_bits());
    debug_assert!(acc_frac >= out_format.frac_bits(), "acc must cover output precision");

    let mut codes = vec![0i16; m * n];
    let ad = a.codes();
    let bd = b.codes();
    // Saturation semantics are order-dependent (the 24-bit register clamps
    // mid-accumulation), so any loop restructuring must keep each output's
    // MAC sequence in ascending k. The i-k-j nest below does exactly that:
    // a row of accumulators advances in lock-step, each seeing its products
    // in the same order as the naive per-output loop — bit-identical codes
    // and reports — while B's rows stream contiguously (cache-friendly)
    // and output rows split across the persistent pool (via
    // `for_each_row_slab`) like the float kernels — pool stealing only
    // moves whole row slabs between workers, never the MAC order inside
    // one, so saturation counts stay bit-identical at any pool size.
    let acc_saturations = AtomicU64::new(0);
    let out_saturations = AtomicU64::new(0);
    let threads = parallel::threads_for(m * ka * n, m);
    parallel::for_each_row_slab(&mut codes, m, n, threads, |row0, slab| {
        let mut acc_sat = 0u64;
        let mut out_sat = 0u64;
        let mut accs = vec![Accumulator::new(prod_shift); n];
        for (r, crow) in slab.chunks_mut(n).enumerate() {
            let i = row0 + r;
            accs.fill(Accumulator::new(prod_shift));
            for k in 0..ka {
                let aik = ad[i * ka + k];
                let brow = &bd[k * n..(k + 1) * n];
                for (acc, &bkj) in accs.iter_mut().zip(brow) {
                    acc.mac(aik, bkj);
                }
            }
            for (out, acc) in crow.iter_mut().zip(&accs) {
                if acc.saturated() {
                    acc_sat += 1;
                }
                let (v, sat) = acc.to_i16(out_shift);
                if sat {
                    out_sat += 1;
                }
                *out = v;
            }
        }
        acc_saturations.fetch_add(acc_sat, Ordering::Relaxed);
        out_saturations.fetch_add(out_sat, Ordering::Relaxed);
    });
    let report = QMatmulReport {
        acc_saturations: acc_saturations.into_inner(),
        out_saturations: out_saturations.into_inner(),
        outputs: (m * n) as u64,
    };
    let out = QTensor::from_codes(vec![m, n], codes, out_format)?;
    Ok((out, report))
}

/// Reference kernel with the naive per-output loop, kept for equivalence
/// testing against the restructured [`qmatmul`] (which must reproduce its
/// codes and saturation reports bit-for-bit).
#[doc(hidden)]
pub fn qmatmul_naive(
    a: &QTensor,
    b: &QTensor,
    out_format: QFormat,
) -> Result<(QTensor, QMatmulReport)> {
    let a_dims = a.shape().dims();
    let b_dims = b.shape().dims();
    if a_dims.len() != 2 {
        return Err(TensorError::NotAMatrix { ndim: a_dims.len() });
    }
    if b_dims.len() != 2 {
        return Err(TensorError::NotAMatrix { ndim: b_dims.len() });
    }
    let (m, ka) = (a_dims[0], a_dims[1]);
    let (kb, n) = (b_dims[0], b_dims[1]);
    if ka != kb {
        return Err(TensorError::MatmulDimMismatch {
            left: (m, ka),
            right: (kb, n),
        });
    }
    let prod_frac = a.format().frac_bits() + b.format().frac_bits();
    let acc_frac = prod_frac.min(out_format.frac_bits() + 8);
    let prod_shift = prod_frac - acc_frac;
    let out_shift = acc_frac.saturating_sub(out_format.frac_bits());

    let mut codes = vec![0i16; m * n];
    let mut report = QMatmulReport {
        outputs: (m * n) as u64,
        ..QMatmulReport::default()
    };
    let ad = a.codes();
    let bd = b.codes();
    for i in 0..m {
        for j in 0..n {
            let mut acc = Accumulator::new(prod_shift);
            for k in 0..ka {
                acc.mac(ad[i * ka + k], bd[k * n + j]);
            }
            if acc.saturated() {
                report.acc_saturations += 1;
            }
            let (v, sat) = acc.to_i16(out_shift);
            if sat {
                report.out_saturations += 1;
            }
            codes[i * n + j] = v;
        }
    }
    let out = QTensor::from_codes(vec![m, n], codes, out_format)?;
    Ok((out, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use tie_tensor::{init, linalg::matmul, Tensor};

    #[test]
    fn qmatmul_tracks_float_matmul_within_quant_noise() {
        let mut rng = ChaCha8Rng::seed_from_u64(80);
        let a: Tensor<f64> = init::uniform(&mut rng, vec![6, 5], 1.0);
        let b: Tensor<f64> = init::uniform(&mut rng, vec![5, 7], 1.0);
        let fmt = QFormat::new(12).unwrap();
        let qa = QTensor::quantize(&a, fmt);
        let qb = QTensor::quantize(&b, fmt);
        let (qc, report) = qmatmul(&qa, &qb, QFormat::new(11).unwrap()).unwrap();
        assert!(report.is_clean(), "{report:?}");
        let want = matmul(&a, &b).unwrap();
        let got = qc.dequantize();
        // Error budget: input rounding (5 terms) + output rounding.
        let tol = 5.0 * fmt.step() + QFormat::new(11).unwrap().step();
        assert!(
            got.approx_eq(&want, tol),
            "max err {} vs tol {tol}",
            got.sub(&want).unwrap().max_abs()
        );
    }

    #[test]
    fn qmatmul_exact_for_integer_values() {
        // With frac_bits = 0 the datapath is plain integer arithmetic.
        let fmt = QFormat::new(0).unwrap();
        let a = QTensor::from_codes(vec![2, 2], vec![1, 2, 3, 4], fmt).unwrap();
        let b = QTensor::from_codes(vec![2, 2], vec![5, 6, 7, 8], fmt).unwrap();
        let (c, report) = qmatmul(&a, &b, fmt).unwrap();
        assert_eq!(c.codes(), &[19, 22, 43, 50]);
        assert!(report.is_clean());
    }

    #[test]
    fn output_saturation_is_reported_not_silent() {
        let fmt = QFormat::new(0).unwrap();
        let a = QTensor::from_codes(vec![1, 1], vec![30000], fmt).unwrap();
        let b = QTensor::from_codes(vec![1, 1], vec![2], fmt).unwrap();
        let (c, report) = qmatmul(&a, &b, fmt).unwrap();
        assert_eq!(c.codes(), &[i16::MAX]);
        assert_eq!(report.out_saturations, 1);
    }

    #[test]
    fn accumulator_saturation_is_reported() {
        let fmt = QFormat::new(0).unwrap();
        // 300 * 30000 * 1... one product = 9e6 > 24-bit max 8388607.
        let a = QTensor::from_codes(vec![1, 1], vec![300], fmt).unwrap();
        let b = QTensor::from_codes(vec![1, 1], vec![30000], fmt).unwrap();
        let (_, report) = qmatmul(&a, &b, fmt).unwrap();
        assert_eq!(report.acc_saturations, 1);
    }

    #[test]
    fn restructured_kernel_bitwise_matches_naive() {
        // Saturation makes the datapath non-associative, so this is the
        // load-bearing check: the row-of-accumulators kernel must agree
        // with the per-output reference on codes AND reports, including
        // inputs engineered to saturate mid-accumulation, at any thread
        // count.
        let mut rng = ChaCha8Rng::seed_from_u64(90);
        let fmt = QFormat::new(4).unwrap();
        let big: Tensor<f64> = init::uniform(&mut rng, vec![9, 13], 1800.0);
        let spread: Tensor<f64> = init::uniform(&mut rng, vec![13, 11], 1500.0);
        let qa = QTensor::quantize(&big, fmt);
        let qb = QTensor::quantize(&spread, fmt);
        for threads in [1usize, 4] {
            let prev = tie_tensor::parallel::set_num_threads(threads);
            let (c_fast, r_fast) = qmatmul(&qa, &qb, QFormat::new(2).unwrap()).unwrap();
            tie_tensor::parallel::set_num_threads(prev);
            let (c_ref, r_ref) = qmatmul_naive(&qa, &qb, QFormat::new(2).unwrap()).unwrap();
            assert_eq!(c_fast.codes(), c_ref.codes(), "threads={threads}");
            assert_eq!(r_fast, r_ref, "threads={threads}");
        }
        // The engineered inputs should actually exercise saturation.
        let (_, r) = qmatmul_naive(&qa, &qb, QFormat::new(2).unwrap()).unwrap();
        assert!(
            r.acc_saturations > 0 || r.out_saturations > 0,
            "test inputs failed to saturate: {r:?}"
        );
    }

    #[test]
    fn shape_errors() {
        let fmt = QFormat::new(0).unwrap();
        let a = QTensor::from_codes(vec![2, 3], vec![0; 6], fmt).unwrap();
        let b = QTensor::from_codes(vec![2, 3], vec![0; 6], fmt).unwrap();
        assert!(qmatmul(&a, &b, fmt).is_err());
        let v = QTensor::from_codes(vec![6], vec![0; 6], fmt).unwrap();
        assert!(qmatmul(&v, &b, fmt).is_err());
    }
}
