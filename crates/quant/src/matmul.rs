//! Quantized matrix multiplication on the modeled TIE datapath.
//!
//! # Kernel structure and bit-identity
//!
//! Saturation makes the fixed-point datapath non-associative: the 24-bit
//! register clamps *mid-accumulation*, so every output's MAC sequence must
//! stay in ascending `k` for any restructured kernel to reproduce the
//! per-output reference ([`qmatmul_naive`]) bit-for-bit. The vectorized
//! kernel here keeps that invariant by construction:
//!
//! * outputs are produced in column tiles of `TJ` lanes per row; each lane
//!   is one independent output accumulated over the **full** `k` range in
//!   ascending order (no `k`-blocking — partial accumulator state can
//!   never be merged across blocks without changing clamp points),
//! * each lane emulates the [`Accumulator`] arithmetic in pure `i32`:
//!   widen the `i16×i16` product, round-shift by `prod_shift`, add, clamp
//!   to the 24-bit range with a sticky saturation flag, and finally
//!   round-shift by `out_shift` into a saturating 16-bit code. All of it
//!   fits `i32` (see the proof on [`qmm_body`]), so the lanes vectorize.
//!
//! Because per-output arithmetic is independent of the tile width, *any*
//! `TJ` produces identical codes and reports — which is what makes the
//! runtime AVX-512/AVX2/portable dispatch (same idiom as the float GEMMs
//! in `tie_tensor::linalg`) bit-safe. Row slabs split across the
//! persistent pool exactly like the float kernels; pool stealing moves
//! whole slabs, never the MAC order inside one, so results are identical
//! at any `TIE_THREADS` / pool size.
//!
//! The per-output state is two fixed-size stack arrays (`[i32; TJ]` values
//! and lane flags) living in the pool job frame — steady state performs
//! **zero heap allocation** (the counting-allocator suite pins this).

use crate::{Accumulator, QFormat, QTensor};
use std::sync::atomic::{AtomicU64, Ordering};
use tie_tensor::linalg::DestMap;
use tie_tensor::{parallel, Result, TensorError};

/// Portable column-tile width (vectorizes to 128-bit lanes).
const QTILE_J: usize = 8;
/// AVX2 column-tile width (256-bit integer lanes).
#[cfg(target_arch = "x86_64")]
const QTILE_J_WIDE: usize = 16;
/// AVX-512 column-tile width.
#[cfg(target_arch = "x86_64")]
const QTILE_J_512: usize = 32;

/// Saturation diagnostics of one quantized matrix multiply.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QMatmulReport {
    /// Outputs whose 24-bit accumulator saturated mid-accumulation.
    pub acc_saturations: u64,
    /// Outputs that saturated during the final 16-bit requantization.
    pub out_saturations: u64,
    /// Total output elements produced.
    pub outputs: u64,
}

impl QMatmulReport {
    /// True when no saturation of any kind occurred.
    pub fn is_clean(&self) -> bool {
        self.acc_saturations == 0 && self.out_saturations == 0
    }

    /// Element-wise sum of two reports (stage-wise aggregation).
    #[must_use]
    pub fn merged(&self, other: &QMatmulReport) -> QMatmulReport {
        QMatmulReport {
            acc_saturations: self.acc_saturations + other.acc_saturations,
            out_saturations: self.out_saturations + other.out_saturations,
            outputs: self.outputs + other.outputs,
        }
    }
}

/// Fixed-point alignment of one quantized GEMM, derived from the operand
/// and output formats.
///
/// Raw products sit at `frac_a + frac_b` fraction bits; the accumulator
/// working fraction is `min(frac_a + frac_b, out_frac + 8)` — full product
/// precision when it fits, otherwise 8 guard bits above the output step
/// (the headroom a 24-bit register offers over the 16-bit output). Each
/// product is arithmetically shifted right by `prod_shift` before entering
/// the accumulator, and the final value by `out_shift` on requantization.
#[must_use]
pub fn alignment(a: QFormat, b: QFormat, out: QFormat) -> (u32, u32) {
    let prod_frac = a.frac_bits() + b.frac_bits();
    let acc_frac = prod_frac.min(out.frac_bits() + 8);
    let prod_shift = prod_frac - acc_frac;
    let out_shift = acc_frac.saturating_sub(out.frac_bits());
    (prod_shift, out_shift)
}

fn check_dims(a: &QTensor, b: &QTensor) -> Result<(usize, usize, usize)> {
    let a_dims = a.shape().dims();
    let b_dims = b.shape().dims();
    if a_dims.len() != 2 {
        return Err(TensorError::NotAMatrix { ndim: a_dims.len() });
    }
    if b_dims.len() != 2 {
        return Err(TensorError::NotAMatrix { ndim: b_dims.len() });
    }
    let (m, ka) = (a_dims[0], a_dims[1]);
    let (kb, n) = (b_dims[0], b_dims[1]);
    if ka != kb {
        return Err(TensorError::MatmulDimMismatch {
            left: (m, ka),
            right: (kb, n),
        });
    }
    Ok((m, ka, n))
}

/// Quantized product `C = A · B` with TIE datapath semantics.
///
/// Inputs carry formats `Qa` and `Qb`; the fixed-point alignment is chosen
/// by [`alignment`]. The kernel is the vectorized tile engine described in
/// the [module docs](self) — bit-identical to [`qmatmul_naive`] in codes
/// and saturation reports at every dispatch tier and pool size.
///
/// # Errors
///
/// Returns [`TensorError::NotAMatrix`] / [`TensorError::MatmulDimMismatch`]
/// on shape problems.
///
/// # Example
///
/// ```
/// use tie_quant::{qmatmul, QFormat, QTensor};
/// # fn main() -> Result<(), tie_tensor::TensorError> {
/// let fmt = QFormat::new(0)?; // integer mode
/// let a = QTensor::from_codes(vec![1, 2], vec![3, -2], fmt)?;
/// let b = QTensor::from_codes(vec![2, 1], vec![10, 4], fmt)?;
/// let (c, report) = qmatmul(&a, &b, fmt)?;
/// assert_eq!(c.codes(), &[22]);
/// assert!(report.is_clean());
/// # Ok(())
/// # }
/// ```
pub fn qmatmul(
    a: &QTensor,
    b: &QTensor,
    out_format: QFormat,
) -> Result<(QTensor, QMatmulReport)> {
    let (m, _, n) = check_dims(a, b)?;
    let mut codes = vec![0i16; m * n];
    let report = qmatmul_into(a, b, out_format, &mut codes)?;
    let out = QTensor::from_codes(vec![m, n], codes, out_format)?;
    Ok((out, report))
}

/// [`qmatmul`] into a caller-owned code buffer: zero heap allocation in
/// steady state (the accumulator scratch is fixed-size stack tiles inside
/// the pool job frame — see the [module docs](self)).
///
/// `codes` must hold exactly `m·n` elements; it is fully overwritten.
///
/// # Errors
///
/// Returns shape errors as [`qmatmul`], plus
/// [`TensorError::ElementCountMismatch`] if `codes` has the wrong length.
pub fn qmatmul_into(
    a: &QTensor,
    b: &QTensor,
    out_format: QFormat,
    codes: &mut [i16],
) -> Result<QMatmulReport> {
    let (m, ka, n) = check_dims(a, b)?;
    if codes.len() != m * n {
        return Err(TensorError::ElementCountMismatch {
            expected: m * n,
            got: codes.len(),
        });
    }
    let (prod_shift, out_shift) = alignment(a.format(), b.format(), out_format);
    debug_assert!(
        a.format().frac_bits() + b.format().frac_bits() >= out_format.frac_bits().min(15),
        "alignment keeps acc_frac >= out_frac whenever products can express it"
    );
    Ok(qmatmul_raw(
        a.codes(),
        b.codes(),
        m,
        ka,
        n,
        prod_shift,
        out_shift,
        codes,
    ))
}

/// Raw-slice quantized GEMM: `codes = requant(A · B)` over `m×k · k×n`
/// code matrices with explicit `prod_shift` / `out_shift` alignment (see
/// [`alignment`]). This is the engine under [`qmatmul`] — the simulator's
/// batched stage path and the quantized serving engine call it directly
/// with their own stage alignment.
///
/// # Panics
///
/// Panics (via `assert!`) on slice-length mismatches — callers own the
/// shape bookkeeping on this path.
#[allow(clippy::too_many_arguments)]
#[must_use]
pub fn qmatmul_raw(
    a: &[i16],
    b: &[i16],
    m: usize,
    k: usize,
    n: usize,
    prod_shift: u32,
    out_shift: u32,
    codes: &mut [i16],
) -> QMatmulReport {
    assert_eq!(a.len(), m * k, "A is m×k");
    assert_eq!(b.len(), k * n, "B is k×n");
    assert_eq!(codes.len(), m * n, "C is m×n");
    let acc_saturations = AtomicU64::new(0);
    let out_saturations = AtomicU64::new(0);
    let threads = parallel::threads_for(m * k * n, m);
    parallel::for_each_row_slab(codes, m, n, threads, |row0, slab| {
        let rows = slab.len() / n.max(1);
        let a_slab = &a[row0 * k..(row0 + rows) * k];
        let (acc_sat, out_sat) = qmm_block(rows, k, n, prod_shift, out_shift, a_slab, b, slab);
        acc_saturations.fetch_add(acc_sat, Ordering::Relaxed);
        out_saturations.fetch_add(out_sat, Ordering::Relaxed);
    });
    QMatmulReport {
        acc_saturations: acc_saturations.into_inner(),
        out_saturations: out_saturations.into_inner(),
        outputs: (m * n) as u64,
    }
}

/// [`qmatmul_raw`] pinned to the portable tile width, skipping the SIMD
/// dispatch. The property suite compares it against the dispatched kernel
/// and the naive reference to prove every tier computes the same codes and
/// reports on this machine.
#[doc(hidden)]
#[allow(clippy::too_many_arguments)]
#[must_use]
pub fn qmatmul_raw_portable(
    a: &[i16],
    b: &[i16],
    m: usize,
    k: usize,
    n: usize,
    prod_shift: u32,
    out_shift: u32,
    codes: &mut [i16],
) -> QMatmulReport {
    assert_eq!(a.len(), m * k, "A is m×k");
    assert_eq!(b.len(), k * n, "B is k×n");
    assert_eq!(codes.len(), m * n, "C is m×n");
    let acc_saturations = AtomicU64::new(0);
    let out_saturations = AtomicU64::new(0);
    let threads = parallel::threads_for(m * k * n, m);
    parallel::for_each_row_slab(codes, m, n, threads, |row0, slab| {
        let rows = slab.len() / n.max(1);
        let a_slab = &a[row0 * k..(row0 + rows) * k];
        let (acc_sat, out_sat) =
            qmm_body::<QTILE_J>(rows, k, n, prod_shift, out_shift, a_slab, b, slab);
        acc_saturations.fetch_add(acc_sat, Ordering::Relaxed);
        out_saturations.fetch_add(out_sat, Ordering::Relaxed);
    });
    QMatmulReport {
        acc_saturations: acc_saturations.into_inner(),
        out_saturations: out_saturations.into_inner(),
        outputs: (m * n) as u64,
    }
}

/// [`qmatmul_raw`] with a fused destination-map write epilogue — the
/// quantized twin of `tie_tensor::linalg::gemm_into_mapped`, used by the
/// quantized serving engine and the simulator's batched fast path to fold
/// the inter-stage Transform into the store.
///
/// `b` is `k × (n_mat·bsz)` with logical columns batch-inner; output
/// element `(i, q·bsz + cb)` lands at `(map.row[i] + map.col[q])·bsz + cb`
/// of `codes`. The lane arithmetic is [`qmm_body`] verbatim (same MAC
/// order, same clamp points), only the final store is redirected, so codes
/// *and* the saturation report are bit-identical to [`qmatmul_raw`]
/// followed by a permutation, at any tile width and pool size.
///
/// # Panics
///
/// Panics (via `assert!`) on slice-length / map-extent mismatches.
#[allow(clippy::too_many_arguments)]
#[must_use]
pub fn qmatmul_raw_mapped(
    a: &[i16],
    b: &[i16],
    m: usize,
    k: usize,
    n_mat: usize,
    bsz: usize,
    prod_shift: u32,
    out_shift: u32,
    codes: &mut [i16],
    map: &DestMap,
) -> QMatmulReport {
    let n = n_mat * bsz;
    assert!(bsz > 0, "batch width must be positive");
    assert_eq!(map.rows(), m, "map rows are m");
    assert_eq!(map.cols(), n_mat, "map cols are n_mat");
    assert_eq!(a.len(), m * k, "A is m×k");
    assert_eq!(b.len(), k * n, "B is k×(n_mat·bsz)");
    assert_eq!(codes.len(), m * n, "C is m×(n_mat·bsz)");
    let acc_saturations = AtomicU64::new(0);
    let out_saturations = AtomicU64::new(0);
    let threads = parallel::threads_for(m * k * n, m);
    let cp = SendPtr(codes.as_mut_ptr());
    parallel::for_each_row_span(m, threads, |row0, rows| {
        let (acc_sat, out_sat) = qmm_block_mapped(
            row0, rows, k, n_mat, bsz, prod_shift, out_shift, a, b, cp.get(), map,
        );
        acc_saturations.fetch_add(acc_sat, Ordering::Relaxed);
        out_saturations.fetch_add(out_sat, Ordering::Relaxed);
    });
    QMatmulReport {
        acc_saturations: acc_saturations.into_inner(),
        out_saturations: out_saturations.into_inner(),
        outputs: (m * n) as u64,
    }
}

/// Shareable raw code pointer for the mapped kernel's scatter stores.
struct SendPtr(*mut i16);

#[allow(unsafe_code)]
// SAFETY: dereferenced only at offsets from a validated `DestMap`
// bijection, with output rows partitioned across workers — no two threads
// write the same element, and the caller's `&mut` outlives the dispatch.
unsafe impl Send for SendPtr {}
#[allow(unsafe_code)]
// SAFETY: as above; shared references only hand out the raw pointer.
unsafe impl Sync for SendPtr {}

impl SendPtr {
    fn get(&self) -> *mut i16 {
        self.0
    }
}

/// Runtime SIMD dispatch for the mapped quantized kernel — mirrors
/// [`qmm_block`] so both kernels pick the same tile width on one CPU.
#[allow(clippy::too_many_arguments)]
fn qmm_block_mapped(
    row0: usize,
    rows: usize,
    k: usize,
    n_mat: usize,
    bsz: usize,
    prod_shift: u32,
    out_shift: u32,
    a: &[i16],
    b: &[i16],
    c: *mut i16,
    map: &DestMap,
) -> (u64, u64) {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            // SAFETY: `avx512f` was just detected; the callee's scatter
            // stores are in-bounds and disjoint by the map bijection.
            #[allow(unsafe_code)]
            return unsafe {
                qmm_mapped_avx512(row0, rows, k, n_mat, bsz, prod_shift, out_shift, a, b, c, map)
            };
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: as above, for `avx2`.
            #[allow(unsafe_code)]
            return unsafe {
                qmm_mapped_avx2(row0, rows, k, n_mat, bsz, prod_shift, out_shift, a, b, c, map)
            };
        }
    }
    qmm_body_mapped::<QTILE_J>(row0, rows, k, n_mat, bsz, prod_shift, out_shift, a, b, c, map)
}

/// AVX-512 instantiation of the mapped body.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx512f")]
unsafe fn qmm_mapped_avx512(
    row0: usize,
    rows: usize,
    k: usize,
    n_mat: usize,
    bsz: usize,
    prod_shift: u32,
    out_shift: u32,
    a: &[i16],
    b: &[i16],
    c: *mut i16,
    map: &DestMap,
) -> (u64, u64) {
    qmm_body_mapped::<QTILE_J_512>(row0, rows, k, n_mat, bsz, prod_shift, out_shift, a, b, c, map)
}

/// AVX2 instantiation of the mapped body.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2")]
unsafe fn qmm_mapped_avx2(
    row0: usize,
    rows: usize,
    k: usize,
    n_mat: usize,
    bsz: usize,
    prod_shift: u32,
    out_shift: u32,
    a: &[i16],
    b: &[i16],
    c: *mut i16,
    map: &DestMap,
) -> (u64, u64) {
    qmm_body_mapped::<QTILE_J_WIDE>(row0, rows, k, n_mat, bsz, prod_shift, out_shift, a, b, c, map)
}

/// [`qmm_body`] with the final store redirected through the destination
/// map: lane `j + t` (GEMM column `q·bsz + cb`) lands at
/// `(row[i] + col[q])·bsz + cb`, with the `(q, cb)` odometer advanced by
/// increment-and-wrap — one div/mod per tile, none per element. All
/// accumulator arithmetic is identical to [`qmm_body`].
#[allow(unsafe_code)]
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn qmm_body_mapped<const TJ: usize>(
    row0: usize,
    rows: usize,
    k: usize,
    n_mat: usize,
    bsz: usize,
    prod_shift: u32,
    out_shift: u32,
    a: &[i16],
    b: &[i16],
    c: *mut i16,
    map: &DestMap,
) -> (u64, u64) {
    let n = n_mat * bsz;
    let col = map.col_offsets();
    let mut acc_sat = 0u64;
    let mut out_sat = 0u64;
    let prod_half = if prod_shift > 0 { 1i32 << (prod_shift - 1) } else { 0 };
    let out_half = if out_shift > 0 { 1i32 << (out_shift - 1) } else { 0 };
    for i in row0..row0 + rows {
        let arow = &a[i * k..(i + 1) * k];
        let base = map.row_offsets()[i];
        let mut j = 0usize;
        while j + TJ <= n {
            let mut vals = [0i32; TJ];
            let mut sats = [false; TJ];
            for (kk, &aik) in arow.iter().enumerate() {
                let ai = aik as i32;
                let bv = &b[kk * n + j..][..TJ];
                for (t, &bkj) in bv.iter().enumerate() {
                    let shifted = (ai * bkj as i32 + prod_half) >> prod_shift;
                    let sum = vals[t] + shifted;
                    let clamped = sum.clamp(Accumulator::MIN, Accumulator::MAX);
                    sats[t] |= clamped != sum;
                    vals[t] = clamped;
                }
            }
            let mut q = j / bsz;
            let mut cb = j - q * bsz;
            for t in 0..TJ {
                acc_sat += u64::from(sats[t]);
                let v = (vals[t] + out_half) >> out_shift;
                let clipped = v.clamp(i16::MIN as i32, i16::MAX as i32);
                out_sat += u64::from(clipped != v);
                // SAFETY: `(base + col[q])·bsz + cb < m·n` by the `DestMap`
                // bijection; rows of this span are written by this worker
                // only (offsets of distinct rows never collide).
                unsafe {
                    *c.add((base + col[q]) * bsz + cb) = clipped as i16;
                }
                cb += 1;
                if cb == bsz {
                    cb = 0;
                    q += 1;
                }
            }
            j += TJ;
        }
        while j < n {
            let mut val = 0i32;
            let mut sat = false;
            for (kk, &aik) in arow.iter().enumerate() {
                let shifted = (aik as i32 * b[kk * n + j] as i32 + prod_half) >> prod_shift;
                let sum = val + shifted;
                let clamped = sum.clamp(Accumulator::MIN, Accumulator::MAX);
                sat |= clamped != sum;
                val = clamped;
            }
            acc_sat += u64::from(sat);
            let v = (val + out_half) >> out_shift;
            let clipped = v.clamp(i16::MIN as i32, i16::MAX as i32);
            out_sat += u64::from(clipped != v);
            let q = j / bsz;
            // SAFETY: single in-range offset, as above.
            unsafe {
                *c.add((base + col[q]) * bsz + (j - q * bsz)) = clipped as i16;
            }
            j += 1;
        }
    }
    (acc_sat, out_sat)
}

/// One row slab of the quantized GEMM, dispatched at runtime to the widest
/// instantiation the CPU supports. All instantiations share [`qmm_body`];
/// per-output arithmetic is independent of the tile width, so every tier
/// is bit-identical (integer arithmetic has no contraction analogue of
/// FMA to worry about).
#[allow(clippy::too_many_arguments)]
fn qmm_block(
    rows: usize,
    k: usize,
    n: usize,
    prod_shift: u32,
    out_shift: u32,
    a: &[i16],
    b: &[i16],
    c: &mut [i16],
) -> (u64, u64) {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            // SAFETY: `avx512f` support was just detected on this CPU; the
            // callee is ordinary safe slice code whose only `unsafe`
            // obligation is that target-feature availability.
            #[allow(unsafe_code)]
            return unsafe { qmm_avx512(rows, k, n, prod_shift, out_shift, a, b, c) };
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: `avx2` support was just detected on this CPU (the
            // integer kernel needs AVX2, not AVX, for 256-bit lanes).
            #[allow(unsafe_code)]
            return unsafe { qmm_avx2(rows, k, n, prod_shift, out_shift, a, b, c) };
        }
    }
    qmm_body::<QTILE_J>(rows, k, n, prod_shift, out_shift, a, b, c)
}

/// AVX-512 instantiation: 512-bit integer lanes over a 32-wide tile.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx512f")]
unsafe fn qmm_avx512(
    rows: usize,
    k: usize,
    n: usize,
    prod_shift: u32,
    out_shift: u32,
    a: &[i16],
    b: &[i16],
    c: &mut [i16],
) -> (u64, u64) {
    qmm_body::<QTILE_J_512>(rows, k, n, prod_shift, out_shift, a, b, c)
}

/// AVX2 instantiation: 256-bit integer lanes over a 16-wide tile.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2")]
unsafe fn qmm_avx2(
    rows: usize,
    k: usize,
    n: usize,
    prod_shift: u32,
    out_shift: u32,
    a: &[i16],
    b: &[i16],
    c: &mut [i16],
) -> (u64, u64) {
    qmm_body::<QTILE_J_WIDE>(rows, k, n, prod_shift, out_shift, a, b, c)
}

/// The shared tile body: `TJ` independent output lanes per tile, each
/// reproducing [`Accumulator::mac`] + [`Accumulator::to_i16`] exactly.
///
/// # Why pure `i32` lanes are exact
///
/// The reference accumulator adds in `i64` before clamping; these lanes
/// add in `i32`, which is only valid because no intermediate can overflow:
///
/// * `prod = a·b` with `|a|,|b| ≤ 2^15` gives `|prod| ≤ 2^30`;
/// * `prod + half` with `half = 2^(prod_shift−1) ≤ 2^29` stays below
///   `2^31` (and `prod_shift > 0` implies `half ≤ 2^(30−8−1)` for any
///   alignment produced by [`alignment`], far smaller);
/// * the running value is always post-clamp, `|value| ≤ 2^23`, so
///   `value + shifted` is bounded by `2^23 + 2^30 < 2^31 − 1`;
/// * requantization adds `half ≤ 2^(out_shift−1)` to a value `≤ 2^23`.
///
/// So every `i32` add here equals the reference's `i64` add, and the
/// subsequent clamp lands identically. Returns
/// `(acc_saturations, out_saturations)`.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn qmm_body<const TJ: usize>(
    rows: usize,
    k: usize,
    n: usize,
    prod_shift: u32,
    out_shift: u32,
    a: &[i16],
    b: &[i16],
    c: &mut [i16],
) -> (u64, u64) {
    let mut acc_sat = 0u64;
    let mut out_sat = 0u64;
    // `x >> 0` is the identity and both halves are 0 then, so the shifts
    // need no branch in the lane loop.
    let prod_half = if prod_shift > 0 { 1i32 << (prod_shift - 1) } else { 0 };
    let out_half = if out_shift > 0 { 1i32 << (out_shift - 1) } else { 0 };
    for i in 0..rows {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        let mut j = 0usize;
        while j + TJ <= n {
            // Lane state lives in fixed-size stack arrays: provable
            // lengths for the vectorizer, no heap scratch.
            let mut vals = [0i32; TJ];
            let mut sats = [false; TJ];
            for (kk, &aik) in arow.iter().enumerate() {
                let ai = aik as i32;
                let bv = &b[kk * n + j..][..TJ];
                for (t, &bkj) in bv.iter().enumerate() {
                    let shifted = (ai * bkj as i32 + prod_half) >> prod_shift;
                    let sum = vals[t] + shifted;
                    let clamped = sum.clamp(Accumulator::MIN, Accumulator::MAX);
                    sats[t] |= clamped != sum;
                    vals[t] = clamped;
                }
            }
            for t in 0..TJ {
                acc_sat += u64::from(sats[t]);
                let v = (vals[t] + out_half) >> out_shift;
                let clipped = v.clamp(i16::MIN as i32, i16::MAX as i32);
                out_sat += u64::from(clipped != v);
                crow[j + t] = clipped as i16;
            }
            j += TJ;
        }
        // Remainder columns (< TJ wide): one scalar lane, same arithmetic.
        while j < n {
            let mut val = 0i32;
            let mut sat = false;
            for (kk, &aik) in arow.iter().enumerate() {
                let shifted = (aik as i32 * b[kk * n + j] as i32 + prod_half) >> prod_shift;
                let sum = val + shifted;
                let clamped = sum.clamp(Accumulator::MIN, Accumulator::MAX);
                sat |= clamped != sum;
                val = clamped;
            }
            acc_sat += u64::from(sat);
            let v = (val + out_half) >> out_shift;
            let clipped = v.clamp(i16::MIN as i32, i16::MAX as i32);
            out_sat += u64::from(clipped != v);
            crow[j] = clipped as i16;
            j += 1;
        }
    }
    (acc_sat, out_sat)
}

/// Reference kernel with the naive per-output loop, kept for equivalence
/// testing against the vectorized [`qmatmul`] (which must reproduce its
/// codes and saturation reports bit-for-bit).
#[doc(hidden)]
pub fn qmatmul_naive(
    a: &QTensor,
    b: &QTensor,
    out_format: QFormat,
) -> Result<(QTensor, QMatmulReport)> {
    let (m, ka, n) = check_dims(a, b)?;
    let (prod_shift, out_shift) = alignment(a.format(), b.format(), out_format);

    let mut codes = vec![0i16; m * n];
    let mut report = QMatmulReport {
        outputs: (m * n) as u64,
        ..QMatmulReport::default()
    };
    let ad = a.codes();
    let bd = b.codes();
    for i in 0..m {
        for j in 0..n {
            let mut acc = Accumulator::new(prod_shift);
            for k in 0..ka {
                acc.mac(ad[i * ka + k], bd[k * n + j]);
            }
            if acc.saturated() {
                report.acc_saturations += 1;
            }
            let (v, sat) = acc.to_i16(out_shift);
            if sat {
                report.out_saturations += 1;
            }
            codes[i * n + j] = v;
        }
    }
    let out = QTensor::from_codes(vec![m, n], codes, out_format)?;
    Ok((out, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use tie_tensor::{init, linalg::matmul, Tensor};

    #[test]
    fn qmatmul_tracks_float_matmul_within_quant_noise() {
        let mut rng = ChaCha8Rng::seed_from_u64(80);
        let a: Tensor<f64> = init::uniform(&mut rng, vec![6, 5], 1.0);
        let b: Tensor<f64> = init::uniform(&mut rng, vec![5, 7], 1.0);
        let fmt = QFormat::new(12).unwrap();
        let qa = QTensor::quantize(&a, fmt);
        let qb = QTensor::quantize(&b, fmt);
        let (qc, report) = qmatmul(&qa, &qb, QFormat::new(11).unwrap()).unwrap();
        assert!(report.is_clean(), "{report:?}");
        let want = matmul(&a, &b).unwrap();
        let got = qc.dequantize();
        // Error budget: input rounding (5 terms) + output rounding.
        let tol = 5.0 * fmt.step() + QFormat::new(11).unwrap().step();
        assert!(
            got.approx_eq(&want, tol),
            "max err {} vs tol {tol}",
            got.sub(&want).unwrap().max_abs()
        );
    }

    #[test]
    fn qmatmul_exact_for_integer_values() {
        // With frac_bits = 0 the datapath is plain integer arithmetic.
        let fmt = QFormat::new(0).unwrap();
        let a = QTensor::from_codes(vec![2, 2], vec![1, 2, 3, 4], fmt).unwrap();
        let b = QTensor::from_codes(vec![2, 2], vec![5, 6, 7, 8], fmt).unwrap();
        let (c, report) = qmatmul(&a, &b, fmt).unwrap();
        assert_eq!(c.codes(), &[19, 22, 43, 50]);
        assert!(report.is_clean());
    }

    #[test]
    fn output_saturation_is_reported_not_silent() {
        let fmt = QFormat::new(0).unwrap();
        let a = QTensor::from_codes(vec![1, 1], vec![30000], fmt).unwrap();
        let b = QTensor::from_codes(vec![1, 1], vec![2], fmt).unwrap();
        let (c, report) = qmatmul(&a, &b, fmt).unwrap();
        assert_eq!(c.codes(), &[i16::MAX]);
        assert_eq!(report.out_saturations, 1);
    }

    #[test]
    fn accumulator_saturation_is_reported() {
        let fmt = QFormat::new(0).unwrap();
        // 300 * 30000 * 1... one product = 9e6 > 24-bit max 8388607.
        let a = QTensor::from_codes(vec![1, 1], vec![300], fmt).unwrap();
        let b = QTensor::from_codes(vec![1, 1], vec![30000], fmt).unwrap();
        let (_, report) = qmatmul(&a, &b, fmt).unwrap();
        assert_eq!(report.acc_saturations, 1);
    }

    #[test]
    fn restructured_kernel_bitwise_matches_naive() {
        // Saturation makes the datapath non-associative, so this is the
        // load-bearing check: the vectorized tile kernel must agree with
        // the per-output reference on codes AND reports, including inputs
        // engineered to saturate mid-accumulation, at any thread count.
        let mut rng = ChaCha8Rng::seed_from_u64(90);
        let fmt = QFormat::new(4).unwrap();
        let big: Tensor<f64> = init::uniform(&mut rng, vec![9, 13], 1800.0);
        let spread: Tensor<f64> = init::uniform(&mut rng, vec![13, 11], 1500.0);
        let qa = QTensor::quantize(&big, fmt);
        let qb = QTensor::quantize(&spread, fmt);
        for threads in [1usize, 4] {
            let prev = tie_tensor::parallel::set_num_threads(threads);
            let (c_fast, r_fast) = qmatmul(&qa, &qb, QFormat::new(2).unwrap()).unwrap();
            tie_tensor::parallel::set_num_threads(prev);
            let (c_ref, r_ref) = qmatmul_naive(&qa, &qb, QFormat::new(2).unwrap()).unwrap();
            assert_eq!(c_fast.codes(), c_ref.codes(), "threads={threads}");
            assert_eq!(r_fast, r_ref, "threads={threads}");
        }
        // The engineered inputs should actually exercise saturation.
        let (_, r) = qmatmul_naive(&qa, &qb, QFormat::new(2).unwrap()).unwrap();
        assert!(
            r.acc_saturations > 0 || r.out_saturations > 0,
            "test inputs failed to saturate: {r:?}"
        );
    }

    #[test]
    fn into_variant_matches_allocating_variant() {
        let mut rng = ChaCha8Rng::seed_from_u64(91);
        let fmt = QFormat::new(6).unwrap();
        let a: Tensor<f64> = init::uniform(&mut rng, vec![7, 10], 40.0);
        let b: Tensor<f64> = init::uniform(&mut rng, vec![10, 9], 40.0);
        let qa = QTensor::quantize(&a, fmt);
        let qb = QTensor::quantize(&b, fmt);
        let out_fmt = QFormat::new(3).unwrap();
        let (c, r) = qmatmul(&qa, &qb, out_fmt).unwrap();
        let mut codes = vec![0i16; 7 * 9];
        let r2 = qmatmul_into(&qa, &qb, out_fmt, &mut codes).unwrap();
        assert_eq!(c.codes(), &codes[..]);
        assert_eq!(r, r2);
        // Wrong buffer length is rejected, not truncated.
        let mut short = vec![0i16; 7 * 9 - 1];
        assert!(qmatmul_into(&qa, &qb, out_fmt, &mut short).is_err());
    }

    #[test]
    fn portable_tile_matches_dispatched_kernel() {
        // Same body, different tile width: must be bit-identical.
        let mut rng = ChaCha8Rng::seed_from_u64(92);
        let fmt = QFormat::new(4).unwrap();
        let a: Tensor<f64> = init::uniform(&mut rng, vec![11, 17], 1700.0);
        let b: Tensor<f64> = init::uniform(&mut rng, vec![17, 19], 1700.0);
        let qa = QTensor::quantize(&a, fmt);
        let qb = QTensor::quantize(&b, fmt);
        let (ps, os) = alignment(fmt, fmt, QFormat::new(2).unwrap());
        let mut c1 = vec![0i16; 11 * 19];
        let mut c2 = vec![0i16; 11 * 19];
        let r1 = qmatmul_raw(qa.codes(), qb.codes(), 11, 17, 19, ps, os, &mut c1);
        let r2 = qmatmul_raw_portable(qa.codes(), qb.codes(), 11, 17, 19, ps, os, &mut c2);
        assert_eq!(c1, c2);
        assert_eq!(r1, r2);
    }

    #[test]
    fn mapped_kernel_matches_raw_then_permute_with_saturation() {
        // Saturating inputs: the mapped store must not disturb the clamp
        // points, so codes AND reports must match raw-then-permute exactly,
        // for identity and transposed maps, at several pool sizes.
        let mut rng = ChaCha8Rng::seed_from_u64(93);
        let fmt = QFormat::new(4).unwrap();
        let (m, k, n_mat) = (9usize, 13usize, 11usize);
        let a_f: Tensor<f64> = init::uniform(&mut rng, vec![m, k], 1800.0);
        let qa = QTensor::quantize(&a_f, fmt);
        let (ps, os) = alignment(fmt, fmt, QFormat::new(2).unwrap());
        let tmap = DestMap::new(
            (0..m).collect(),
            (0..n_mat).map(|q| q * m).collect(),
        )
        .unwrap();
        for bsz in [1usize, 2, 3] {
            let b_f: Tensor<f64> = init::uniform(&mut rng, vec![k, n_mat * bsz], 1500.0);
            let qb = QTensor::quantize(&b_f, fmt);
            let mut plain = vec![0i16; m * n_mat * bsz];
            let r_plain =
                qmatmul_raw(qa.codes(), qb.codes(), m, k, n_mat * bsz, ps, os, &mut plain);
            assert!(
                r_plain.acc_saturations > 0 || r_plain.out_saturations > 0,
                "test inputs failed to saturate"
            );
            for (map, name) in [(DestMap::identity(m, n_mat), "id"), (tmap.clone(), "t")] {
                let mut want = vec![0i16; m * n_mat * bsz];
                for i in 0..m {
                    for q in 0..n_mat {
                        for cb in 0..bsz {
                            want[map.offset(i, q) * bsz + cb] =
                                plain[i * n_mat * bsz + q * bsz + cb];
                        }
                    }
                }
                for threads in [1usize, 2, 8] {
                    let prev = tie_tensor::parallel::set_num_threads(threads);
                    let mut got = vec![0i16; m * n_mat * bsz];
                    let r = qmatmul_raw_mapped(
                        qa.codes(),
                        qb.codes(),
                        m,
                        k,
                        n_mat,
                        bsz,
                        ps,
                        os,
                        &mut got,
                        &map,
                    );
                    tie_tensor::parallel::set_num_threads(prev);
                    assert_eq!(got, want, "{name} bsz={bsz} threads={threads}");
                    assert_eq!(r, r_plain, "{name} bsz={bsz} threads={threads}");
                }
            }
        }
    }

    #[test]
    fn shape_errors() {
        let fmt = QFormat::new(0).unwrap();
        let a = QTensor::from_codes(vec![2, 3], vec![0; 6], fmt).unwrap();
        let b = QTensor::from_codes(vec![2, 3], vec![0; 6], fmt).unwrap();
        assert!(qmatmul(&a, &b, fmt).is_err());
        let v = QTensor::from_codes(vec![6], vec![0; 6], fmt).unwrap();
        assert!(qmatmul(&v, &b, fmt).is_err());
    }
}
