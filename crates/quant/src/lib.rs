//! Fixed-point arithmetic substrate modeling the TIE datapath.
//!
//! The TIE prototype (paper Table 5) quantizes weights and activations to
//! **16 bits** and accumulates in **24-bit** registers; each PE holds
//! 16-bit multipliers and 24-bit accumulators. This crate provides that
//! arithmetic as a reusable substrate:
//!
//! * [`QFormat`] — a runtime Q-number format (signed, 16-bit container,
//!   configurable fraction bits),
//! * [`QTensor`] — a quantized tensor with saturation-aware conversion,
//! * [`Accumulator`] — the 24-bit saturating MAC register,
//! * [`qmatmul`] — the quantized matrix multiply used by the bit-accurate
//!   simulator, with saturation-event reporting,
//! * [`error_stats`] — quantization-error measurement helpers.
//!
//! # Example
//!
//! ```
//! use tie_quant::{QFormat, QTensor};
//! use tie_tensor::Tensor;
//!
//! # fn main() -> Result<(), tie_tensor::TensorError> {
//! let fmt = QFormat::new(12)?; // Q3.12, step 2^-12
//! let t = Tensor::<f64>::from_vec(vec![2], vec![0.5, -1.25])?;
//! let q = QTensor::quantize(&t, fmt);
//! let back = q.dequantize();
//! assert!(back.approx_eq(&t, fmt.step() / 2.0));
//! # Ok(())
//! # }
//! ```

// Since the Tile/Stage/Global refactor the vectorized `qmatmul` is an
// instantiation of `tie_tensor::tile`'s streaming stage (which owns the
// sanctioned `#[target_feature]` / scatter-store unsafety); this crate
// itself contains **zero** `unsafe` code, so `forbid` would also hold —
// `deny` is kept for symmetry with the rest of the workspace.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod accumulator;
mod format;
mod qtensor;

pub mod matmul;
pub mod stats;

pub use accumulator::Accumulator;
pub use format::QFormat;
pub use matmul::{
    alignment, qmatmul, qmatmul_into, qmatmul_naive, qmatmul_raw, qmatmul_raw_mapped,
    qmatmul_raw_mapped_relu, qmatmul_raw_portable, qmatmul_raw_relu, qmatmul_raw_relu_portable,
    QMatmulReport, QuantPath,
};
pub use qtensor::QTensor;
pub use stats::error_stats;

pub use tie_tensor::{Result, TensorError};
