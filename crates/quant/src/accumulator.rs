/// The TIE MAC accumulator: 24-bit signed, saturating.
///
/// ```
/// use tie_quant::Accumulator;
/// let mut acc = Accumulator::new(0);
/// acc.mac(100, -3);
/// acc.mac(7, 2);
/// assert_eq!(acc.value(), -286);
/// assert!(!acc.saturated());
/// let (code, sat) = acc.to_i16(0);
/// assert_eq!((code, sat), (-286, false));
/// ```
///
/// Each PE's MAC unit (paper Table 5) multiplies two 16-bit operands into a
/// full-precision product and accumulates into a 24-bit register. A 16×16
/// product needs up to 31 bits, so real designs shift the product right
/// before accumulation; `prod_shift` models that barrel shift. Saturation
/// is sticky-flagged rather than silent, so the simulator can report
/// overflow events per layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Accumulator {
    value: i32,
    prod_shift: u32,
    saturated: bool,
}

impl Accumulator {
    /// Accumulator register width in bits (paper Table 5: 24-bit).
    pub const BITS: u32 = 24;
    /// Largest representable accumulator value (`2^23 - 1`).
    pub const MAX: i32 = (1 << (Self::BITS - 1)) - 1;
    /// Smallest representable accumulator value (`-2^23`).
    pub const MIN: i32 = -(1 << (Self::BITS - 1));

    /// Fresh accumulator; every product is arithmetically shifted right by
    /// `prod_shift` bits before accumulation.
    pub fn new(prod_shift: u32) -> Self {
        Accumulator {
            value: 0,
            prod_shift,
            saturated: false,
        }
    }

    /// Multiply-accumulate one operand pair.
    pub fn mac(&mut self, a: i16, b: i16) {
        let prod = (a as i32) * (b as i32);
        let shifted = if self.prod_shift > 0 {
            // Round-to-nearest on the discarded bits (add half before shift).
            let half = 1i32 << (self.prod_shift - 1);
            (prod + half) >> self.prod_shift
        } else {
            prod
        };
        let sum = self.value as i64 + shifted as i64;
        if sum > Self::MAX as i64 {
            self.value = Self::MAX;
            self.saturated = true;
        } else if sum < Self::MIN as i64 {
            self.value = Self::MIN;
            self.saturated = true;
        } else {
            self.value = sum as i32;
        }
    }

    /// Current register value.
    pub fn value(&self) -> i32 {
        self.value
    }

    /// True if any accumulation saturated since the last [`Accumulator::reset`].
    pub fn saturated(&self) -> bool {
        self.saturated
    }

    /// Clears value and saturation flag.
    pub fn reset(&mut self) {
        self.value = 0;
        self.saturated = false;
    }

    /// Requantizes the register down to a 16-bit code, shifting right by
    /// `out_shift` with round-to-nearest and saturating to the i16 range.
    /// Returns `(code, saturated_on_output)`.
    pub fn to_i16(&self, out_shift: u32) -> (i16, bool) {
        let v = if out_shift > 0 {
            let half = 1i64 << (out_shift - 1);
            ((self.value as i64 + half) >> out_shift) as i32
        } else {
            self.value
        };
        if v > i16::MAX as i32 {
            (i16::MAX, true)
        } else if v < i16::MIN as i32 {
            (i16::MIN, true)
        } else {
            (v as i16, false)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_accumulates_products() {
        let mut acc = Accumulator::new(0);
        acc.mac(3, 4);
        acc.mac(-2, 5);
        assert_eq!(acc.value(), 12 - 10);
        assert!(!acc.saturated());
    }

    #[test]
    fn prod_shift_rounds_to_nearest() {
        let mut acc = Accumulator::new(4);
        acc.mac(1, 24); // 24 >> 4 = 1.5 -> rounds to 2 (1.5 + 0.5 = 2)
        assert_eq!(acc.value(), 2);
        acc.reset();
        acc.mac(1, 23); // 23/16 = 1.4375 -> 1
        assert_eq!(acc.value(), 1);
    }

    #[test]
    fn saturation_is_sticky_and_clamps() {
        let mut acc = Accumulator::new(0);
        // 32767^2 ≈ 1.07e9 >> 24-bit max 8388607: one MAC saturates.
        acc.mac(i16::MAX, i16::MAX);
        assert_eq!(acc.value(), Accumulator::MAX);
        assert!(acc.saturated());
        acc.mac(-1, 1);
        assert!(acc.saturated(), "flag must stick");
        acc.reset();
        assert!(!acc.saturated());
        assert_eq!(acc.value(), 0);
        // Negative direction.
        acc.mac(i16::MIN, i16::MAX);
        assert_eq!(acc.value(), Accumulator::MIN);
        assert!(acc.saturated());
    }

    #[test]
    fn to_i16_requantizes_with_rounding_and_saturation() {
        let mut acc = Accumulator::new(0);
        acc.mac(100, 100); // 10000
        let (v, sat) = acc.to_i16(4); // 10000/16 = 625
        assert_eq!(v, 625);
        assert!(!sat);
        let (v0, sat0) = acc.to_i16(0);
        assert_eq!(v0, 10000);
        assert!(!sat0);
        acc.reset();
        acc.mac(30000, 30000); // 9e8 saturates acc at 8388607
        let (v2, sat2) = acc.to_i16(0);
        assert_eq!(v2, i16::MAX);
        assert!(sat2);
        let (v3, sat3) = acc.to_i16(8); // 8388607 >> 8 = 32768 -> still saturates i16
        assert_eq!(v3, i16::MAX);
        assert!(sat3);
        let (v4, sat4) = acc.to_i16(9); // 16384 fits
        assert_eq!(v4, 16384);
        assert!(!sat4);
    }

    #[test]
    fn range_constants() {
        assert_eq!(Accumulator::MAX, 8_388_607);
        assert_eq!(Accumulator::MIN, -8_388_608);
    }
}
