use std::error::Error;
use std::fmt;

/// Errors produced by the tensor substrate.
///
/// Every fallible public function in this crate (and in the crates layered on
/// top of it) reports failures through this type so callers can use `?`
/// uniformly across the workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of elements implied by a shape does not match the data
    /// buffer (or the target of a reshape).
    ElementCountMismatch {
        /// Elements the shape requires.
        expected: usize,
        /// Elements actually provided.
        got: usize,
    },
    /// Two shapes that must agree (e.g. elementwise operands) differ.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        left: Vec<usize>,
        /// Shape of the right-hand operand.
        right: Vec<usize>,
    },
    /// The inner dimensions of a matrix product do not agree.
    MatmulDimMismatch {
        /// `(rows, cols)` of the left matrix.
        left: (usize, usize),
        /// `(rows, cols)` of the right matrix.
        right: (usize, usize),
    },
    /// An operation that requires a matrix (2-D tensor) was given a tensor of
    /// a different dimensionality.
    NotAMatrix {
        /// Dimensionality of the offending tensor.
        ndim: usize,
    },
    /// An index was out of bounds for the tensor shape.
    IndexOutOfBounds {
        /// The offending multi-index.
        index: Vec<usize>,
        /// The tensor shape.
        shape: Vec<usize>,
    },
    /// A permutation argument was not a permutation of `0..ndim`.
    InvalidPermutation {
        /// The offending permutation.
        perm: Vec<usize>,
        /// Expected length.
        ndim: usize,
    },
    /// A zero-length dimension or empty shape where one is not allowed.
    EmptyShape,
    /// An iterative algorithm (SVD / QR) failed to converge.
    NoConvergence {
        /// Name of the algorithm that failed.
        algorithm: &'static str,
        /// Iterations performed before giving up.
        iterations: usize,
    },
    /// A domain error such as a negative truncation tolerance.
    InvalidArgument {
        /// Human-readable description of the violated precondition.
        message: String,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ElementCountMismatch { expected, got } => {
                write!(
                    f,
                    "element count mismatch: shape requires {expected}, got {got}"
                )
            }
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch: {left:?} vs {right:?}")
            }
            TensorError::MatmulDimMismatch { left, right } => write!(
                f,
                "matmul dimension mismatch: ({}x{}) * ({}x{})",
                left.0, left.1, right.0, right.1
            ),
            TensorError::NotAMatrix { ndim } => {
                write!(f, "expected a 2-d tensor, got {ndim} dimensions")
            }
            TensorError::IndexOutOfBounds { index, shape } => {
                write!(f, "index {index:?} out of bounds for shape {shape:?}")
            }
            TensorError::InvalidPermutation { perm, ndim } => {
                write!(f, "invalid permutation {perm:?} for {ndim} dimensions")
            }
            TensorError::EmptyShape => write!(f, "empty shape is not allowed here"),
            TensorError::NoConvergence {
                algorithm,
                iterations,
            } => {
                write!(
                    f,
                    "{algorithm} failed to converge after {iterations} iterations"
                )
            }
            TensorError::InvalidArgument { message } => write!(f, "invalid argument: {message}"),
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_for_all_variants() {
        let variants: Vec<TensorError> = vec![
            TensorError::ElementCountMismatch {
                expected: 4,
                got: 3,
            },
            TensorError::ShapeMismatch {
                left: vec![2],
                right: vec![3],
            },
            TensorError::MatmulDimMismatch {
                left: (2, 3),
                right: (4, 5),
            },
            TensorError::NotAMatrix { ndim: 3 },
            TensorError::IndexOutOfBounds {
                index: vec![5],
                shape: vec![2],
            },
            TensorError::InvalidPermutation {
                perm: vec![0, 0],
                ndim: 2,
            },
            TensorError::EmptyShape,
            TensorError::NoConvergence {
                algorithm: "svd",
                iterations: 30,
            },
            TensorError::InvalidArgument {
                message: "x".into(),
            },
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
