//! Deterministic pseudo-random tensor initialization.
//!
//! Every experiment binary in this workspace seeds its RNG explicitly so the
//! tables in `EXPERIMENTS.md` are exactly reproducible. These helpers take
//! any [`rand::Rng`], keeping the choice of generator (and seed) at the call
//! site.

use crate::{Scalar, Tensor};
use rand::Rng;

/// Uniform initialization in `[-scale, scale]`.
///
/// # Panics
///
/// Panics on an invalid shape (empty or zero dimension).
pub fn uniform<T: Scalar, R: Rng>(rng: &mut R, dims: Vec<usize>, scale: f64) -> Tensor<T> {
    let n: usize = dims.iter().product();
    let data = (0..n)
        .map(|_| T::from_f64(rng.gen_range(-scale..=scale)))
        .collect();
    Tensor::from_vec(dims, data).expect("valid shape")
}

/// Standard-normal initialization scaled by `sigma` (Box-Muller).
///
/// # Panics
///
/// Panics on an invalid shape (empty or zero dimension).
pub fn normal<T: Scalar, R: Rng>(rng: &mut R, dims: Vec<usize>, sigma: f64) -> Tensor<T> {
    let n: usize = dims.iter().product();
    let mut data = Vec::with_capacity(n);
    while data.len() < n {
        // Box-Muller transform: two uniforms -> two normals.
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        data.push(T::from_f64(sigma * r * theta.cos()));
        if data.len() < n {
            data.push(T::from_f64(sigma * r * theta.sin()));
        }
    }
    Tensor::from_vec(dims, data).expect("valid shape")
}

/// Glorot/Xavier-uniform initialization for a weight matrix of shape
/// `[fan_out, fan_in]` (scale `sqrt(6 / (fan_in + fan_out))`).
///
/// # Panics
///
/// Panics on an invalid shape.
pub fn glorot_uniform<T: Scalar, R: Rng>(rng: &mut R, fan_out: usize, fan_in: usize) -> Tensor<T> {
    let scale = (6.0 / (fan_in + fan_out) as f64).sqrt();
    uniform(rng, vec![fan_out, fan_in], scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn uniform_respects_bounds_and_seed() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let t: Tensor<f64> = uniform(&mut rng, vec![10, 10], 0.5);
        assert!(t.data().iter().all(|&v| (-0.5..=0.5).contains(&v)));
        let mut rng2 = ChaCha8Rng::seed_from_u64(7);
        let t2: Tensor<f64> = uniform(&mut rng2, vec![10, 10], 0.5);
        assert_eq!(t, t2, "same seed must give same tensor");
    }

    #[test]
    fn normal_has_roughly_right_moments() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let t: Tensor<f64> = normal(&mut rng, vec![10_000], 2.0);
        let mean = t.sum() / 10_000.0;
        let var = t
            .data()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / 10_000.0;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn normal_odd_element_count() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let t: Tensor<f32> = normal(&mut rng, vec![7], 1.0);
        assert_eq!(t.num_elements(), 7);
    }

    #[test]
    fn glorot_scale_shrinks_with_fanin() {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let t: Tensor<f64> = glorot_uniform(&mut rng, 4, 10_000);
        assert!(t.max_abs() < 0.03);
        assert_eq!(t.dims(), &[4, 10_000]);
    }
}
