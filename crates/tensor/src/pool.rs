//! Persistent work-stealing thread pool — the execution substrate for every
//! parallel kernel in the workspace.
//!
//! Before this module existed, each parallel kernel paid a fresh
//! `std::thread::scope` spawn/join per call: tens of microseconds of OS
//! overhead that forced the spawn threshold
//! ([`crate::parallel::PARALLEL_MIN_WORK`]) to stay conservative and left
//! mid-size stage GEMMs of the compact scheme single-threaded. Here the
//! workers are spawned **once**, parked on a condvar while idle, and woken
//! per dispatch — warm-pool dispatch is a mutex hand-off plus a wake, not a
//! `clone(2)`.
//!
//! # Execution model
//!
//! A dispatch publishes a **job**: a borrowed closure `f(slab_idx)` plus a
//! slab count. Slabs are *statically assigned, disjoint* units of work
//! (e.g. row ranges of an output matrix) — the pool's atomic claim counter
//! only decides **who** runs a slab, never how that slab's outputs are
//! accumulated. Workers and the dispatching thread all pull slab indices
//! from the same `fetch_add` counter (dynamic stealing/rebalancing), so an
//! uneven slab costs no tail latency, yet results are **bit-identical for
//! any pool size** and identical to a serial left-to-right execution of the
//! slabs. The dispatcher participates in its own job (help-first) and only
//! blocks once the claim counter is exhausted.
//!
//! # Nesting policy
//!
//! A pool worker that reaches another dispatch (a pooled GEMM calling a
//! pooled transform, or a `tie-serve` worker-thread chain) runs the inner
//! job's slabs **inline, in ascending slab order** on its own thread.
//! Inline execution is bit-identical to distributed execution (slabs are
//! independent), and a worker never blocks on a nested join — so nested
//! parallelism cannot deadlock the pool. Non-worker threads (e.g.
//! `tie-serve`'s batch executors) dispatch concurrently; the pool holds a
//! list of in-flight jobs and idle workers adopt the oldest one with
//! unclaimed slabs.
//!
//! # Sizing
//!
//! The pool is lazily grown: a dispatch that wants `w` parallel slabs
//! ensures `w − 1` workers exist (capped at [`MAX_WORKERS`]). The *dispatch
//! width* is resolved per call by [`crate::parallel::threads_for`], so
//! [`crate::parallel::set_num_threads`] and `TIE_THREADS` take effect on
//! the next dispatch: a pool grown to 16 workers dispatched at width 2
//! creates 2 slabs — the extra workers never see work. Workers are never
//! reaped; parked threads cost a few kilobytes each and no CPU.
//!
//! # Steady-state allocation
//!
//! Dispatch is allocation-free in steady state: the job lives on the
//! dispatcher's stack, workers reference it through a pointer registered in
//! a pre-grown job list, and a participation count keeps the frame alive
//! until every reference is dropped. (First-ever dispatches pay one-time
//! worker spawns and job-list growth.) This preserves the compact engine's
//! zero-alloc hot path (`tests/zero_alloc.rs`) now that its transforms
//! dispatch here.

use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

/// Hard cap on spawned workers, a guard against pathological `TIE_THREADS`
/// values. Parked workers are cheap but not free (stack reservations).
pub const MAX_WORKERS: usize = 256;

/// Rounds an idle worker busy-polls the publish epoch before parking on the
/// condvar. Back-to-back stage dispatches (the compact scheme issues `d`
/// GEMMs per inference) land in this window and skip the park/unpark
/// round-trip entirely.
const SPIN_ROUNDS: usize = 4096;

thread_local! {
    /// True on pool worker threads; gates the inline nesting policy.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// True when called from a pool worker thread (where nested dispatches run
/// inline — see the module docs' nesting policy).
#[must_use]
pub fn is_worker_thread() -> bool {
    IN_WORKER.with(Cell::get)
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One in-flight dispatch. Lives on the **dispatcher's stack**; workers
/// reach it through a raw pointer registered in the pool's job list. The
/// dispatcher does not return (and the frame does not die) until every slab
/// has completed *and* every adopting worker has dropped its reference.
struct JobCore {
    /// Type-erased borrow of the dispatch closure. Only ever dereferenced
    /// between a successful slab claim (`next.fetch_add < total`) and the
    /// matching `completed` increment — both of which the dispatcher waits
    /// out in [`JobCore::wait_done`] before its frame is torn down.
    f: *const (dyn Fn(usize) + Sync),
    /// Total slab count.
    total: usize,
    /// Next unclaimed slab index (may overshoot `total` by one per
    /// claimant; claims at or past `total` are no-ops).
    next: AtomicUsize,
    /// Completed slab count; the job is done when this reaches `total`.
    completed: AtomicUsize,
    /// Workers currently holding a reference to this frame (adoption is
    /// counted under the pool lock, release under `done`).
    refs: AtomicUsize,
    /// First panic payload caught while running a slab; re-thrown on the
    /// dispatcher once the job has fully quiesced.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Completion signal: guards the `completed == total && refs == 0`
    /// predicate the dispatcher sleeps on.
    done: Mutex<()>,
    done_cv: Condvar,
}

// SAFETY: all fields are themselves thread-safe (atomics, mutexes) except
// `f`, whose dereference discipline is documented on the field: it is only
// called while the dispatcher is pinned inside `dispatch`, which outlives
// every dereference by construction of the claim/refs protocol.
#[allow(unsafe_code)]
unsafe impl Send for JobCore {}
#[allow(unsafe_code)]
unsafe impl Sync for JobCore {}

impl JobCore {
    fn new(f: &(dyn Fn(usize) + Sync), total: usize) -> Self {
        // SAFETY: lifetime erasure only — the pointer is dereferenced
        // exclusively while the borrow is live (see `f`'s field docs and
        // the claim/refs protocol in `dispatch`).
        #[allow(unsafe_code)]
        let f = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
        };
        JobCore {
            f,
            total,
            next: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
            refs: AtomicUsize::new(0),
            panic: Mutex::new(None),
            done: Mutex::new(()),
            done_cv: Condvar::new(),
        }
    }

    fn has_remaining(&self) -> bool {
        self.next.load(Ordering::Relaxed) < self.total
    }

    /// Claims and runs slabs until the claim counter is exhausted. Called
    /// by the dispatcher (help-first) and by every adopting worker.
    fn run_claims(&self) {
        loop {
            let idx = self.next.fetch_add(1, Ordering::Relaxed);
            if idx >= self.total {
                return;
            }
            // SAFETY: the claim above grants this thread the exclusive
            // right to slab `idx`; the dispatcher cannot return (and the
            // closure's borrow cannot end) until `completed` reaches
            // `total`, which requires this call to have finished.
            #[allow(unsafe_code)]
            let f = unsafe { &*self.f };
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(idx))) {
                let mut slot = lock(&self.panic);
                slot.get_or_insert(payload);
            }
            if self.completed.fetch_add(1, Ordering::AcqRel) + 1 == self.total {
                let _g = lock(&self.done);
                self.done_cv.notify_all();
            }
        }
    }

    /// Drops a worker's reference and wakes the dispatcher if it is the
    /// last thing holding the frame open.
    fn release_ref(&self) {
        let _g = lock(&self.done);
        self.refs.fetch_sub(1, Ordering::AcqRel);
        self.done_cv.notify_all();
    }

    /// Blocks the dispatcher until every slab completed and no worker
    /// still references this frame. Must be called after the job has been
    /// removed from the pool's job list (no new adoptions possible).
    fn wait_done(&self) {
        let mut g = lock(&self.done);
        while self.completed.load(Ordering::Acquire) < self.total
            || self.refs.load(Ordering::Acquire) > 0
        {
            g = self.done_cv.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Copyable handle to a stack-resident [`JobCore`], stored in the pool's
/// job list.
#[derive(Clone, Copy)]
struct JobRef(*const JobCore);

// SAFETY: the pointee is kept alive by the dispatch protocol (handles are
// removed from the job list before the dispatcher's frame can die, and
// adopted handles are tracked by `refs`); `JobCore` itself is `Sync`.
#[allow(unsafe_code)]
unsafe impl Send for JobRef {}

struct PoolState {
    /// In-flight jobs, oldest first. Entries are removed by their
    /// dispatcher (always, before it returns) and opportunistically by
    /// workers once fully claimed.
    jobs: Vec<JobRef>,
    /// Workers spawned so far (never shrinks; see module docs on sizing).
    spawned: usize,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Wakes parked workers when a job is published.
    work_cv: Condvar,
    /// Bumped on every publish; idle workers spin on it briefly before
    /// parking so back-to-back dispatches skip the condvar round-trip.
    epoch: AtomicU64,
}

fn shared() -> &'static PoolShared {
    static POOL: OnceLock<PoolShared> = OnceLock::new();
    POOL.get_or_init(|| PoolShared {
        state: Mutex::new(PoolState {
            // Pre-grown so steady-state publishes never reallocate; only
            // more than `MAX_WORKERS` *concurrent* dispatchers could
            // outgrow this, and growth is amortized anyway.
            jobs: Vec::with_capacity(MAX_WORKERS),
            spawned: 0,
        }),
        work_cv: Condvar::new(),
        epoch: AtomicU64::new(0),
    })
}

/// Number of pool workers spawned so far in this process (diagnostic; used
/// by benches and tests).
#[must_use]
pub fn spawned_workers() -> usize {
    lock(&shared().state).spawned
}

/// Ensures at least `min(n, MAX_WORKERS)` workers exist, spawning any
/// missing ones now. Dispatch does this automatically; benches call it to
/// measure warm-pool latency without a first-dispatch spawn in the timing.
pub fn prewarm(n: usize) {
    let pool = shared();
    let mut st = lock(&pool.state);
    ensure_workers(pool, &mut st, n);
}

fn ensure_workers(pool: &'static PoolShared, st: &mut PoolState, want: usize) {
    let want = want.min(MAX_WORKERS);
    while st.spawned < want {
        let id = st.spawned;
        std::thread::Builder::new()
            .name(format!("tie-pool-{id}"))
            .spawn(move || worker_loop(pool))
            .expect("spawn tie-pool worker");
        st.spawned += 1;
    }
}

fn worker_loop(pool: &'static PoolShared) {
    IN_WORKER.with(|c| c.set(true));
    loop {
        // Adopt the oldest job with unclaimed slabs, if any.
        let adopted: Option<JobRef> = {
            let mut st = lock(&pool.state);
            st.jobs.retain(|j| {
                // SAFETY: list entries point at live dispatcher frames —
                // each dispatcher removes its own entry before returning.
                #[allow(unsafe_code)]
                let core = unsafe { &*j.0 };
                core.has_remaining()
            });
            st.jobs.first().copied().inspect(|j| {
                // Count the adoption while still holding the pool lock, so
                // the dispatcher's removal (also under this lock) strictly
                // precedes or strictly follows it.
                #[allow(unsafe_code)]
                let core = unsafe { &*j.0 };
                core.refs.fetch_add(1, Ordering::AcqRel);
            })
        };
        if let Some(j) = adopted {
            // SAFETY: `refs` was incremented under the pool lock above, so
            // the dispatcher's `wait_done` keeps the frame alive until
            // `release_ref` below.
            #[allow(unsafe_code)]
            let core = unsafe { &*j.0 };
            core.run_claims();
            core.release_ref();
            continue;
        }
        // Idle: spin briefly on the publish epoch, then park.
        let seen = pool.epoch.load(Ordering::Acquire);
        let mut woke_early = false;
        for i in 0..SPIN_ROUNDS {
            if pool.epoch.load(Ordering::Acquire) != seen {
                woke_early = true;
                break;
            }
            if i % 64 == 63 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        if woke_early {
            continue;
        }
        let mut st = lock(&pool.state);
        while st.jobs.is_empty() && pool.epoch.load(Ordering::Acquire) == seen {
            st = pool
                .work_cv
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Runs `f(0), f(1), …, f(slabs − 1)`, each exactly once, distributing the
/// calls across the persistent pool; returns once **all** calls have
/// finished. `f` must treat distinct slab indices as fully independent
/// units (the pool may run them concurrently, in any assignment, on any
/// thread — including the calling one).
///
/// On a pool worker thread (nested dispatch) the slabs run inline in
/// ascending order — bit-identical for independent slabs and immune to
/// pool exhaustion deadlocks. Panics from any slab are resurfaced on the
/// calling thread after the job has quiesced.
pub fn dispatch<F: Fn(usize) + Sync>(slabs: usize, f: F) {
    if slabs == 0 {
        return;
    }
    if slabs == 1 || is_worker_thread() {
        for i in 0..slabs {
            f(i);
        }
        return;
    }
    let f: &(dyn Fn(usize) + Sync) = &f;
    let pool = shared();
    let job = JobCore::new(f, slabs);
    {
        let mut st = lock(&pool.state);
        ensure_workers(pool, &mut st, slabs - 1);
        st.jobs.push(JobRef(&job));
        pool.epoch.fetch_add(1, Ordering::Release);
        pool.work_cv.notify_all();
    }
    // Help-first: the dispatcher claims slabs alongside the workers.
    job.run_claims();
    // Unpublish before waiting: after this no NEW worker can adopt the
    // job; workers already holding it are accounted for in `refs`.
    {
        let mut st = lock(&pool.state);
        st.jobs.retain(|j| !std::ptr::eq(j.0, &job));
    }
    job.wait_done();
    let payload = lock(&job.panic).take();
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
}

/// Pointer wrapper that lets a dispatch closure carve disjoint `&mut`
/// slabs out of one buffer across threads.
struct SendPtr<T>(*mut T);

impl<T> SendPtr<T> {
    /// Method (not field) access, so closures capture the whole wrapper —
    /// keeping the `Send`/`Sync` impls below in force — rather than the
    /// bare `*mut T` via Rust 2021 precise capture.
    fn get(&self) -> *mut T {
        self.0
    }
}

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

// SAFETY: the pointer is only used to materialize disjoint sub-slices
// (distinct slab indices → non-overlapping ranges), each touched by exactly
// one claimant at a time.
#[allow(unsafe_code)]
unsafe impl<T: Send> Send for SendPtr<T> {}
#[allow(unsafe_code)]
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// Splits `buf` into contiguous chunks of `chunk_len` elements (the last
/// may be short) and runs `f(chunk_idx, chunk)` for each across the pool.
///
/// This is the mutable-buffer form of [`dispatch`]: every chunk is a
/// disjoint `&mut` slab handed to exactly one invocation, and the call
/// returns only after all invocations finish — equivalent to
/// `buf.chunks_mut(chunk_len).enumerate().for_each(…)` but parallel.
pub fn for_each_slab<T, F>(buf: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let len = buf.len();
    if len == 0 {
        return;
    }
    let chunk_len = chunk_len.max(1);
    let slabs = len.div_ceil(chunk_len);
    if slabs == 1 {
        f(0, buf);
        return;
    }
    let base = SendPtr(buf.as_mut_ptr());
    dispatch(slabs, move |idx| {
        let start = idx * chunk_len;
        let end = (start + chunk_len).min(len);
        // SAFETY: `dispatch` runs each index exactly once and `buf`
        // outlives the call (it is borrowed for the duration); distinct
        // indices map to disjoint `[start, end)` ranges of the original
        // slice, so each invocation holds the only live reference to its
        // chunk.
        #[allow(unsafe_code)]
        let slab = unsafe { std::slice::from_raw_parts_mut(base.get().add(start), end - start) };
        f(idx, slab);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn every_slab_runs_exactly_once() {
        for slabs in [1usize, 2, 3, 7, 16, 61] {
            let counts: Vec<AtomicU32> = (0..slabs).map(|_| AtomicU32::new(0)).collect();
            dispatch(slabs, |i| {
                counts[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, c) in counts.iter().enumerate() {
                assert_eq!(c.load(Ordering::Relaxed), 1, "slab {i} of {slabs}");
            }
        }
    }

    #[test]
    fn for_each_slab_covers_buffer_with_disjoint_chunks() {
        let mut buf = vec![0u32; 103];
        for_each_slab(&mut buf, 10, |idx, slab| {
            for v in slab.iter_mut() {
                *v += idx as u32 + 1;
            }
        });
        for (e, &v) in buf.iter().enumerate() {
            assert_eq!(v, (e / 10) as u32 + 1, "element {e}");
        }
        // Degenerate inputs.
        for_each_slab(&mut [] as &mut [u32], 4, |_, _| panic!("no chunks"));
        let mut one = [7u8];
        for_each_slab(&mut one, 0, |idx, slab| {
            assert_eq!((idx, slab.len()), (0, 1));
        });
    }

    #[test]
    fn nested_dispatch_runs_inline_without_deadlock() {
        let hits = AtomicU32::new(0);
        dispatch(4, |_outer| {
            // On a pool worker this inner dispatch must run inline; on the
            // dispatcher thread it goes through the pool. Either way all
            // inner slabs must execute.
            dispatch(3, |_inner| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 12);
    }

    #[test]
    fn concurrent_dispatchers_all_complete() {
        let total = AtomicU32::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..8 {
                        dispatch(5, |_| {
                            total.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 4 * 8 * 5);
    }

    #[test]
    fn slab_panic_propagates_to_dispatcher() {
        let result = std::panic::catch_unwind(|| {
            dispatch(4, |i| {
                assert!(i != 2, "slab 2 exploded");
            });
        });
        assert!(result.is_err(), "panic must resurface on the dispatcher");
        // The pool must still be usable afterwards.
        let ok = AtomicU32::new(0);
        dispatch(4, |_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn prewarm_is_capped_and_monotone() {
        prewarm(2);
        let a = spawned_workers();
        assert!(a >= 2);
        prewarm(1); // never shrinks
        assert!(spawned_workers() >= a);
        prewarm(MAX_WORKERS + 1000);
        assert!(spawned_workers() <= MAX_WORKERS);
    }
}
