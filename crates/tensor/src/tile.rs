//! Composable Tile/Stage/Global GEMM hierarchy with fused epilogues.
//!
//! TIE's PE array performs each stage GEMM and the following
//! requantization/activation in **one pass** over the output. This module
//! restructures the repo's formerly hand-specialized GEMM bodies (blocked
//! float, mapped float, quantized, Gram) as instantiations of one skeleton,
//! in the style of kubecl's `StageMatmul` (see DESIGN.md §16):
//!
//! * **Tile** — [`TileKernel`]: picks a register-tile instantiation
//!   (`TJ` output columns × `R` rows) and the SIMD ISA it compiles for.
//!   [`PortableTile`] is the pinned baseline; [`FloatAuto`] / [`IntAuto`]
//!   dispatch at runtime to AVX-512 / AVX(2) instantiations of the *same*
//!   generic body, so every tier computes identical bits.
//! * **Stage** — [`StageMatmul`]: one row-span's worth of work. The
//!   streaming stage ([`stream_gemm`]) accumulates full-`k` register tiles
//!   through a [`Datapath`] (pluggable accumulator: float, or the
//!   saturating fixed-point path in `tie-quant`) and retires each output
//!   through an [`Epilogue`] at the wide accumulator, *before* narrowing —
//!   bias add and ReLU cost zero extra output passes. The k-blocked stage
//!   ([`kblocked_gemm`]) keeps the cache-blocked float body for large
//!   pre-zeroed outputs (no epilogue there: its partial sums round-trip
//!   through `C`, and an epilogue must only ever see *final* sums).
//! * **Global** — [`global_matmul`]: partitions output rows over the
//!   persistent pool per the stage's [`Partition`] choice and merges
//!   per-span statistics through the stage's sink.
//!
//! # Bit-consistency contract
//!
//! Every output element accumulates its products in ascending `k` with
//! plain multiply-then-add (never FMA-contracted); tiles, stages and the
//! row partition only reorder *independent* outputs. Epilogues apply once,
//! to the finished accumulator of each output. Hence every (kernel ×
//! epilogue × destination × thread count) combination is bit-identical to
//! naive-GEMM-then-epilogue — property-tested in `tests/epilogue_differential.rs`.

use crate::{parallel, pool, Scalar};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};

/// Rows of `A`/`C` processed per cache block by the k-blocked stage
/// (reuses one `B` panel across a slab of output rows).
pub(crate) const BLOCK_M: usize = 128;
/// Depth (inner dimension) per cache block. Blocks are walked in ascending
/// order so each output element accumulates its products in the same `k`
/// order as the naive kernels.
pub(crate) const BLOCK_K: usize = 128;
/// Columns of `B`/`C` per cache block; `BLOCK_K × BLOCK_N` elements of `B`
/// (256 KiB at `f64`) stay L2-resident while a row slab streams past.
pub(crate) const BLOCK_N: usize = 256;
/// Float register-tile width on the portable (128-bit SIMD) path: 8 `f64`
/// = 4 `xmm` accumulators per row.
pub(crate) const TILE_J: usize = 8;
/// Float register-tile width on the runtime-detected AVX path: 16 `f64` =
/// 4 `ymm` accumulators per row. Width only changes how many independent
/// output columns are grouped per pass — accumulation order per output is
/// unchanged, so all tiers are bit-identical.
pub(crate) const TILE_J_WIDE: usize = 16;
/// Float register-tile width on the runtime-detected AVX-512 path: 32
/// `f64` = 4 `zmm` accumulators per row.
pub(crate) const TILE_J_512: usize = 32;
/// Integer (i32-lane) tile width on the portable path: 8 lanes = 2 `xmm`.
pub(crate) const QTILE_J: usize = 8;
/// Integer tile width on the runtime-detected AVX2 path: 16 i32 lanes.
pub(crate) const QTILE_J_WIDE: usize = 16;
/// Integer tile width on the runtime-detected AVX-512 path: 32 i32 lanes.
pub(crate) const QTILE_J_512: usize = 32;

/// Activation applied by a fused epilogue (and recorded in inference
/// plans). `Identity` keeps the raw GEMM output; `Relu` clamps negatives
/// to zero at the accumulator, exactly like `tie-nn`'s `Relu` layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Activation {
    /// No activation — the epilogue passes accumulators through.
    #[default]
    Identity,
    /// Rectified linear unit: `max(x, 0)`, fused into the GEMM store.
    Relu,
}

// ---------------------------------------------------------------------------
// Epilogue: per-output transform applied at the wide accumulator.
// ---------------------------------------------------------------------------

/// Per-output transform fused into the GEMM store loop.
///
/// `apply` receives the finished accumulator value `v` (at the datapath's
/// *wide* epilogue type — `f32`/`f64` for the float path, the clipped
/// `i32` for the quantized path, before narrowing to `i16`) and the
/// **logical destination element** `e = row_base(i) + col_off(q)` — for
/// the engines' final assemble maps this is exactly the output-neuron
/// index, which is what per-element bias needs.
///
/// The contract: `apply` must be pure (no interior mutability observable
/// across calls), because outputs retire in whatever order the row
/// partition and register tiling produce.
pub trait Epilogue<V: Copy>: Sync {
    /// Transforms one finished accumulator value.
    fn apply(&self, v: V, e: usize) -> V;
}

/// Pass-through epilogue: the plain GEMM.
#[derive(Debug, Clone, Copy, Default)]
pub struct Identity;

impl<V: Copy> Epilogue<V> for Identity {
    #[inline(always)]
    fn apply(&self, v: V, _e: usize) -> V {
        v
    }
}

/// Fused ReLU for the float datapath: `if v > 0 { v } else { 0 }` — the
/// exact comparison `tie-nn`'s `Relu` layer uses, so a fused forward is
/// bit-identical to GEMM-then-activation (and `-0.0` maps to `+0.0`, like
/// the layer).
#[derive(Debug, Clone, Copy, Default)]
pub struct Relu;

impl<T: Scalar> Epilogue<T> for Relu {
    #[inline(always)]
    fn apply(&self, v: T, _e: usize) -> T {
        if v > T::ZERO {
            v
        } else {
            T::ZERO
        }
    }
}

/// Fused per-element bias add: `v + bias[e]`.
#[derive(Debug, Clone, Copy)]
pub struct Bias<'a, T: Scalar> {
    bias: &'a [T],
}

impl<'a, T: Scalar> Bias<'a, T> {
    /// Wraps a bias table indexed by logical destination element.
    #[must_use]
    pub fn new(bias: &'a [T]) -> Self {
        Bias { bias }
    }
}

impl<T: Scalar> Epilogue<T> for Bias<'_, T> {
    #[inline(always)]
    fn apply(&self, v: T, e: usize) -> T {
        v + self.bias[e]
    }
}

/// Fused bias-then-ReLU: `max(v + bias[e], 0)` with the same comparison
/// as [`Relu`].
#[derive(Debug, Clone, Copy)]
pub struct BiasRelu<'a, T: Scalar> {
    bias: &'a [T],
}

impl<'a, T: Scalar> BiasRelu<'a, T> {
    /// Wraps a bias table indexed by logical destination element.
    #[must_use]
    pub fn new(bias: &'a [T]) -> Self {
        BiasRelu { bias }
    }
}

impl<T: Scalar> Epilogue<T> for BiasRelu<'_, T> {
    #[inline(always)]
    fn apply(&self, v: T, e: usize) -> T {
        let s = v + self.bias[e];
        if s > T::ZERO {
            s
        } else {
            T::ZERO
        }
    }
}

/// Quantized pass-through epilogue: requantization only (the datapath has
/// already rounded, shifted and clipped to the `i16` code range by the
/// time the epilogue sees the value).
#[derive(Debug, Clone, Copy, Default)]
pub struct Requant;

impl Epilogue<i32> for Requant {
    #[inline(always)]
    fn apply(&self, v: i32, _e: usize) -> i32 {
        v
    }
}

/// Quantized requantize-then-ReLU: `max(v, 0)` on the **clipped** `i32`
/// code, before narrowing to `i16`. Because the datapath's output clip is
/// monotone and the Q-format is zero-point-free, `max(0)` on the clipped
/// `i32` equals `max(0)` applied to the narrowed `i16` code — so the fused
/// path is bit-identical to requant-then-relu run separately, and the
/// saturation counts (taken *before* the epilogue) are untouched.
#[derive(Debug, Clone, Copy, Default)]
pub struct RequantRelu;

impl Epilogue<i32> for RequantRelu {
    #[inline(always)]
    fn apply(&self, v: i32, _e: usize) -> i32 {
        v.max(0)
    }
}

// ---------------------------------------------------------------------------
// Dest: separable destination of the streaming store.
// ---------------------------------------------------------------------------

/// Separable destination of the streaming stage's scatter store.
///
/// Logical output element `(i, q)` of an `rows() × cols()` product lands
/// at element offset `row_base(i) + col_off(q)`; with a batch width
/// `bsz`, GEMM column `q·bsz + cb` lands at
/// `(row_base(i) + col_off(q))·bsz + cb` — the batch-innermost layout the
/// compact engine uses.
///
/// # Safety
///
/// Implementors must guarantee `(i, q) ↦ row_base(i) + col_off(q)` is a
/// **bijection onto `[0, rows()·cols())`** for `i < rows()`,
/// `q < cols()`. The streaming kernel scatters through raw pointers on
/// that basis: in-bounds because the image is `[0, rows()·cols())`, and
/// race-free because distinct `(i, q)` map to distinct offsets while the
/// global driver partitions by row. Both provided impls hold the
/// invariant by construction ([`RowMajor`] trivially; [`Mapped`] because
/// [`DestMap::new`](crate::linalg::DestMap::new) validates bijectivity).
#[allow(unsafe_code)]
pub unsafe trait Dest: Sync {
    /// Number of logical output rows.
    fn rows(&self) -> usize;
    /// Number of logical output columns.
    fn cols(&self) -> usize;
    /// Destination row offset (in elements) of logical row `i`.
    fn row_base(&self, i: usize) -> usize;
    /// Destination column offset (in elements) of logical column `q`.
    fn col_off(&self, q: usize) -> usize;
}

/// Plain row-major destination: `(i, q) ↦ i·cols + q`. A streaming GEMM
/// with this destination is bitwise the unmapped kernel, with no per-call
/// offset-table allocation (the zero-alloc steady state depends on that).
#[derive(Debug, Clone, Copy)]
pub struct RowMajor {
    rows: usize,
    cols: usize,
}

impl RowMajor {
    /// Row-major destination for an `rows × cols` logical output.
    #[must_use]
    pub fn new(rows: usize, cols: usize) -> Self {
        RowMajor { rows, cols }
    }
}

// SAFETY: `(i, q) ↦ i·cols + q` is the canonical row-major bijection onto
// `[0, rows·cols)`.
#[allow(unsafe_code)]
unsafe impl Dest for RowMajor {
    #[inline(always)]
    fn rows(&self) -> usize {
        self.rows
    }
    #[inline(always)]
    fn cols(&self) -> usize {
        self.cols
    }
    #[inline(always)]
    fn row_base(&self, i: usize) -> usize {
        i * self.cols
    }
    #[inline(always)]
    fn col_off(&self, q: usize) -> usize {
        q
    }
}

/// Destination redirected through a validated
/// [`DestMap`](crate::linalg::DestMap) — the fused inter-stage Transform.
#[derive(Debug, Clone, Copy)]
pub struct Mapped<'a> {
    map: &'a crate::linalg::DestMap,
}

impl<'a> Mapped<'a> {
    /// Wraps a validated destination map.
    #[must_use]
    pub fn new(map: &'a crate::linalg::DestMap) -> Self {
        Mapped { map }
    }
}

// SAFETY: `DestMap::new` proves `(i, q) ↦ row[i] + col[q]` is a bijection
// onto `[0, rows·cols)` at construction time.
#[allow(unsafe_code)]
unsafe impl Dest for Mapped<'_> {
    #[inline(always)]
    fn rows(&self) -> usize {
        self.map.rows()
    }
    #[inline(always)]
    fn cols(&self) -> usize {
        self.map.cols()
    }
    #[inline(always)]
    fn row_base(&self, i: usize) -> usize {
        self.map.row_offsets()[i]
    }
    #[inline(always)]
    fn col_off(&self, q: usize) -> usize {
        self.map.col_offsets()[q]
    }
}

// ---------------------------------------------------------------------------
// Datapath: the pluggable accumulator.
// ---------------------------------------------------------------------------

/// The pluggable accumulator of the streaming stage: element types, the
/// per-lane multiply-accumulate step, and how a finished lane retires
/// through the epilogue into the output type (plus saturation-statistics
/// plumbing for the fixed-point path).
///
/// A datapath is the *arithmetic* of a GEMM; the [`TileKernel`] chooses
/// vector width, the [`Dest`] chooses where outputs land, the
/// [`Epilogue`] transforms them. `FloatPath` lives here; the saturating
/// fixed-point `QuantPath` lives in `tie-quant` — adding a dtype is a new
/// `Datapath` impl, not a fourth kernel body.
pub trait Datapath: Copy + Sync {
    /// Input element type of `A` and `B`.
    type In: Copy + Sync;
    /// Output element type written to `C`.
    type Out: Copy;
    /// Per-lane accumulator state.
    type Lane: Copy;
    /// Per-lane sticky saturation flag (`()` for exact paths). Kept in a
    /// separate array from the lanes so the hot loop stays
    /// structure-of-arrays and vectorizes.
    type Sat: Copy;
    /// Value type the epilogue sees (the wide pre-narrowing type).
    type EpiV: Copy;
    /// Per-span statistics accumulated while retiring outputs.
    type Stats: Copy + Default;
    /// Shared sink the global driver merges per-span statistics into.
    type Sink: Sync + Default;

    /// A fresh zero lane.
    fn lane_zero(self) -> Self::Lane;
    /// A fresh clear saturation flag.
    fn sat_zero(self) -> Self::Sat;
    /// One multiply-accumulate step: `lane ⊕= a · b` (with whatever
    /// rounding/clamping the datapath defines), updating `sat`.
    fn mac(self, lane: &mut Self::Lane, sat: &mut Self::Sat, a: Self::In, b: Self::In);
    /// Retires one finished lane: folds `sat` into `stats`, applies the
    /// datapath's narrowing pipeline and the epilogue (at the wide type),
    /// and produces the output element for destination element `e`.
    fn finish<E: Epilogue<Self::EpiV>>(
        self,
        lane: Self::Lane,
        sat: Self::Sat,
        e: usize,
        epi: &E,
        stats: &mut Self::Stats,
    ) -> Self::Out;
    /// Merges one span's statistics into the shared sink.
    fn stats_add(sink: &Self::Sink, stats: Self::Stats);
    /// Extracts the final statistics from the sink.
    fn stats_take(sink: Self::Sink) -> Self::Stats;
}

/// Exact float datapath: plain multiply-then-add (never FMA-contracted),
/// no saturation, no statistics.
#[derive(Debug)]
pub struct FloatPath<T: Scalar>(PhantomData<T>);

impl<T: Scalar> FloatPath<T> {
    /// The float datapath (stateless).
    #[must_use]
    pub fn new() -> Self {
        FloatPath(PhantomData)
    }
}

impl<T: Scalar> Default for FloatPath<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Scalar> Clone for FloatPath<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T: Scalar> Copy for FloatPath<T> {}

impl<T: Scalar> Datapath for FloatPath<T> {
    type In = T;
    type Out = T;
    type Lane = T;
    type Sat = ();
    type EpiV = T;
    type Stats = ();
    type Sink = ();

    #[inline(always)]
    fn lane_zero(self) -> T {
        T::ZERO
    }
    #[inline(always)]
    fn sat_zero(self) {}
    #[inline(always)]
    fn mac(self, lane: &mut T, _sat: &mut (), a: T, b: T) {
        *lane += a * b;
    }
    #[inline(always)]
    fn finish<E: Epilogue<T>>(self, lane: T, _sat: (), e: usize, epi: &E, _stats: &mut ()) -> T {
        epi.apply(lane, e)
    }
    #[inline(always)]
    fn stats_add(_sink: &(), _stats: ()) {}
    #[inline(always)]
    fn stats_take(_sink: ()) {}
}

/// Shared atomic sink for `(accumulator, output)` saturation counters —
/// the quantized datapath's `Sink`. Exposed so `tie-quant` can name it
/// without its own atomics plumbing.
#[derive(Debug, Default)]
pub struct SatSink {
    /// Mid-accumulation (24-bit) clamp events.
    pub acc: AtomicU64,
    /// Output-narrowing clip events.
    pub out: AtomicU64,
}

impl SatSink {
    /// Adds one span's `(acc, out)` counts. Relaxed ordering suffices: the
    /// pool's dispatch join orders all worker writes before the read.
    #[inline]
    pub fn add(&self, acc: u64, out: u64) {
        self.acc.fetch_add(acc, Ordering::Relaxed);
        self.out.fetch_add(out, Ordering::Relaxed);
    }

    /// Consumes the sink, returning `(acc, out)` totals.
    #[inline]
    #[must_use]
    pub fn take(self) -> (u64, u64) {
        (self.acc.into_inner(), self.out.into_inner())
    }
}

// ---------------------------------------------------------------------------
// Tile: register-tile instantiation choice + SIMD multiversioning.
// ---------------------------------------------------------------------------

/// A unit of work that can run at any register-tile instantiation. The
/// tile kernel picks the `TJ` (output columns per tile) and `R` (rows per
/// tile) constants and the ISA the body is compiled for; the job supplies
/// the loop nest. Implementations of `run` must be `#[inline(always)]`
/// so the body inlines *into* the `#[target_feature]` wrapper and LLVM
/// vectorizes it for that ISA.
pub trait TileJob {
    /// Result of the job (per-span statistics, or `()`).
    type Out;
    /// Runs the job at the `TJ × R` register-tile instantiation.
    fn run<const TJ: usize, const R: usize>(self) -> Self::Out;
}

/// Chooses the register-tile instantiation (and ISA) a [`TileJob`] runs
/// at. All kernels execute the same generic body in the same arithmetic
/// order — wider tiles only group more independent output columns per
/// pass — so every kernel is bit-identical.
pub trait TileKernel: Copy + Sync {
    /// Runs `job` at this kernel's tile instantiation.
    fn run<J: TileJob>(self, job: J) -> J::Out;
}

/// Pinned portable kernel: always runs the `TJ × R` instantiation with no
/// runtime dispatch. `PortableTile::<8, 2>` (float) and
/// `PortableTile::<8, 1>` (quant) are the reference tiers the
/// differential suites pin against the auto-dispatched kernels.
#[derive(Debug, Clone, Copy, Default)]
pub struct PortableTile<const TJ: usize, const R: usize>;

impl<const TJ: usize, const R: usize> TileKernel for PortableTile<TJ, R> {
    #[inline]
    fn run<J: TileJob>(self, job: J) -> J::Out {
        job.run::<TJ, R>()
    }
}

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
#[target_feature(enable = "avx512f")]
unsafe fn tile_run_avx512<J: TileJob, const TJ: usize, const R: usize>(job: J) -> J::Out {
    job.run::<TJ, R>()
}

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
#[target_feature(enable = "avx")]
unsafe fn tile_run_avx<J: TileJob, const TJ: usize, const R: usize>(job: J) -> J::Out {
    job.run::<TJ, R>()
}

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
#[target_feature(enable = "avx2")]
unsafe fn tile_run_avx2<J: TileJob, const TJ: usize, const R: usize>(job: J) -> J::Out {
    job.run::<TJ, R>()
}

/// Runtime-dispatched float kernel: AVX-512 (`32 × 4` tile) → AVX
/// (`16 × 2`) → portable (`8 × 2`), mirroring the historical
/// `gemm_nn_block` tiering so the refactor is bitwise invisible.
#[derive(Debug, Clone, Copy, Default)]
pub struct FloatAuto;

impl TileKernel for FloatAuto {
    #[inline]
    fn run<J: TileJob>(self, job: J) -> J::Out {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f") {
                // SAFETY: `avx512f` support was just detected on this CPU;
                // the callee is ordinary safe slice code whose only
                // `unsafe` obligation is target-feature availability.
                #[allow(unsafe_code)]
                return unsafe { tile_run_avx512::<J, TILE_J_512, 4>(job) };
            }
            if std::arch::is_x86_feature_detected!("avx") {
                // SAFETY: as above, for `avx`.
                #[allow(unsafe_code)]
                return unsafe { tile_run_avx::<J, TILE_J_WIDE, 2>(job) };
            }
        }
        job.run::<TILE_J, 2>()
    }
}

/// Runtime-dispatched integer kernel: AVX-512 (`32 × 1` tile) → AVX2
/// (`16 × 1`) → portable (`8 × 1`), mirroring the historical `qmatmul`
/// tiering. Single-row tiles: the i32 lane + sticky-flag state of the
/// quantized datapath already fills the vector register budget.
#[derive(Debug, Clone, Copy, Default)]
pub struct IntAuto;

impl TileKernel for IntAuto {
    #[inline]
    fn run<J: TileJob>(self, job: J) -> J::Out {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f") {
                // SAFETY: `avx512f` support was just detected on this CPU;
                // see `FloatAuto`.
                #[allow(unsafe_code)]
                return unsafe { tile_run_avx512::<J, QTILE_J_512, 1>(job) };
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                // SAFETY: as above, for `avx2`.
                #[allow(unsafe_code)]
                return unsafe { tile_run_avx2::<J, QTILE_J_WIDE, 1>(job) };
            }
        }
        job.run::<QTILE_J, 1>()
    }
}

// ---------------------------------------------------------------------------
// Shared raw-pointer plumbing.
// ---------------------------------------------------------------------------

/// Shareable raw destination pointer for scatter stores and disjoint slab
/// carving: spans write bijection-disjoint offsets (streaming stage) or
/// non-overlapping row slabs (k-blocked/Gram stages), so no two workers
/// touch the same element.
pub(crate) struct SendPtr<T>(pub(crate) *mut T);

#[allow(unsafe_code)]
// SAFETY: the pointer is only dereferenced at offsets derived from a
// validated `Dest` bijection or a disjoint row partition — no two threads
// ever write the same element, and the buffer outlives the dispatch (the
// caller holds `&mut` across the pool join).
unsafe impl<T> Send for SendPtr<T> {}
#[allow(unsafe_code)]
// SAFETY: as above — shared references to the wrapper only hand out the
// raw pointer; disjointness is guaranteed by the row partition.
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    pub(crate) fn get(&self) -> *mut T {
        self.0
    }
}

// ---------------------------------------------------------------------------
// Stage + Global: row-partitioned drivers.
// ---------------------------------------------------------------------------

/// How a stage wants its output rows partitioned across the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partition {
    /// Near-equal spans, one per thread (the GEMM default: uniform cost
    /// per row).
    Even,
    /// Fixed-size row slabs, oversubscribed so the pool's claim counter
    /// load-balances non-uniform rows (the Gram triangle).
    Slabs(usize),
}

/// One matmul stage: a row-partitionable unit of GEMM work plus its
/// statistics plumbing. [`global_matmul`] drives it over the pool.
pub trait StageMatmul: Sync {
    /// Shared sink per-span statistics merge into.
    type Sink: Sync + Default;
    /// Final statistics extracted from the sink.
    type Stats;

    /// Total output rows.
    fn rows(&self) -> usize;
    /// Work estimate (multiply-accumulates) for the spawn threshold.
    fn work(&self) -> usize;
    /// Partition choice given the thread count the driver settled on.
    fn partition(&self, _threads: usize) -> Partition {
        Partition::Even
    }
    /// Runs rows `row0 .. row0 + rows` of the stage.
    fn run_span(&self, row0: usize, rows: usize, sink: &Self::Sink);
    /// Extracts final statistics after all spans completed.
    fn take(sink: Self::Sink) -> Self::Stats;
}

/// Global driver: decides the thread count from the stage's work estimate,
/// partitions output rows per the stage's [`Partition`] choice, runs every
/// span on the persistent pool, and extracts the merged statistics.
///
/// Row-span boundaries depend only on `(rows, threads)` — identical to the
/// historical slab partition (`parallel::for_each_row_span` and
/// `parallel::for_each_row_slab` produce the same spans) — so outputs are
/// bit-deterministic at any `TIE_THREADS` setting.
pub fn global_matmul<S: StageMatmul>(stage: &S) -> S::Stats {
    let sink = S::Sink::default();
    let m = stage.rows();
    let threads = parallel::threads_for(stage.work(), m);
    match stage.partition(threads) {
        Partition::Even => {
            parallel::for_each_row_span(m, threads, |row0, rows| {
                stage.run_span(row0, rows, &sink);
            });
        }
        Partition::Slabs(slab_rows) => {
            let slab_rows = slab_rows.max(1);
            pool::dispatch(m.div_ceil(slab_rows), |s| {
                let row0 = s * slab_rows;
                stage.run_span(row0, slab_rows.min(m - row0), &sink);
            });
        }
    }
    S::take(sink)
}

// ---------------------------------------------------------------------------
// Streaming stage: full-k accumulation, fused epilogue + scatter store.
// ---------------------------------------------------------------------------

/// The streaming stage's per-span job: `R`-row × `TJ`-column register
/// tiles accumulated across the **whole** `k` extent (no k-blocking — the
/// tile never round-trips through `C`, which a scattered destination could
/// not reload cheaply anyway; since the k-blocked kernel's partial-sum
/// store/reload is exact, full-`k` accumulation produces identical bits),
/// then retired through `Datapath::finish` + the epilogue and scattered
/// through the destination.
struct StreamJob<'a, P: Datapath, D, E> {
    path: P,
    a: &'a [P::In],
    b: &'a [P::In],
    c: *mut P::Out,
    row0: usize,
    rows: usize,
    k: usize,
    n_mat: usize,
    bsz: usize,
    dest: &'a D,
    epi: &'a E,
}

/// Retires one row of a register tile: lane `t` is GEMM column `jt + t` of
/// logical row whose destination row offset is `base_row`. The `(q, cb)`
/// odometer advances without per-element division — one div/mod at entry,
/// then increment-and-wrap.
///
/// # Safety
///
/// `c` must point at a buffer of `dest.rows()·dest.cols()·bsz` elements
/// and `dest` must uphold the [`Dest`] bijection invariant with
/// `base_row = dest.row_base(i)` for a row `i` owned by this span.
#[allow(unsafe_code)]
#[allow(clippy::too_many_arguments)] // kernel-internal ABI: dims + state are positional
#[inline(always)]
unsafe fn finish_store<P: Datapath, D: Dest, E: Epilogue<P::EpiV>>(
    path: P,
    c: *mut P::Out,
    base_row: usize,
    dest: &D,
    bsz: usize,
    jt: usize,
    lanes: &[P::Lane],
    sats: &[P::Sat],
    epi: &E,
    stats: &mut P::Stats,
) {
    let mut q = jt / bsz;
    let mut cb = jt - q * bsz;
    for (&lane, &sat) in lanes.iter().zip(sats) {
        let e = base_row + dest.col_off(q);
        let out = path.finish(lane, sat, e, epi, stats);
        // SAFETY: `e·bsz + cb` is inside the destination buffer by the
        // `Dest` bijection invariant (see trait docs).
        unsafe {
            *c.add(e * bsz + cb) = out;
        }
        cb += 1;
        if cb == bsz {
            cb = 0;
            q += 1;
        }
    }
}

impl<P: Datapath, D: Dest, E: Epilogue<P::EpiV>> TileJob for StreamJob<'_, P, D, E> {
    type Out = P::Stats;

    #[inline(always)]
    fn run<const TJ: usize, const R: usize>(self) -> P::Stats {
        let StreamJob {
            path,
            a,
            b,
            c,
            row0,
            rows,
            k,
            n_mat,
            bsz,
            dest,
            epi,
        } = self;
        let n = n_mat * bsz;
        let mut stats = P::Stats::default();
        let i1 = row0 + rows;
        let mut i = row0;
        while i + R <= i1 {
            let mut jt = 0;
            while jt + TJ <= n {
                let mut lanes = [[path.lane_zero(); TJ]; R];
                let mut sats = [[path.sat_zero(); TJ]; R];
                for kk in 0..k {
                    let bv = &b[kk * n + jt..][..TJ];
                    for r in 0..R {
                        let ar = a[(i + r) * k + kk];
                        let (tr, sr) = (&mut lanes[r], &mut sats[r]);
                        for (t, &bt) in bv.iter().enumerate() {
                            path.mac(&mut tr[t], &mut sr[t], ar, bt);
                        }
                    }
                }
                for r in 0..R {
                    // SAFETY: rows `i..i+R` belong to this span; see
                    // `finish_store`.
                    #[allow(unsafe_code)]
                    unsafe {
                        finish_store(
                            path,
                            c,
                            dest.row_base(i + r),
                            dest,
                            bsz,
                            jt,
                            &lanes[r],
                            &sats[r],
                            epi,
                            &mut stats,
                        );
                    }
                }
                jt += TJ;
            }
            while jt < n {
                for r in 0..R {
                    let arow = &a[(i + r) * k..(i + r + 1) * k];
                    let mut lane = path.lane_zero();
                    let mut sat = path.sat_zero();
                    for (kk, &ar) in arow.iter().enumerate() {
                        path.mac(&mut lane, &mut sat, ar, b[kk * n + jt]);
                    }
                    // SAFETY: single in-range offset, as above.
                    #[allow(unsafe_code)]
                    unsafe {
                        finish_store(
                            path,
                            c,
                            dest.row_base(i + r),
                            dest,
                            bsz,
                            jt,
                            &[lane],
                            &[sat],
                            epi,
                            &mut stats,
                        );
                    }
                }
                jt += 1;
            }
            i += R;
        }
        while i < i1 {
            let arow = &a[i * k..(i + 1) * k];
            let base = dest.row_base(i);
            let mut jt = 0;
            while jt + TJ <= n {
                let mut lane = [path.lane_zero(); TJ];
                let mut sat = [path.sat_zero(); TJ];
                for (kk, &ar) in arow.iter().enumerate() {
                    let bv = &b[kk * n + jt..][..TJ];
                    for (t, &bt) in bv.iter().enumerate() {
                        path.mac(&mut lane[t], &mut sat[t], ar, bt);
                    }
                }
                // SAFETY: see `finish_store`.
                #[allow(unsafe_code)]
                unsafe {
                    finish_store(path, c, base, dest, bsz, jt, &lane, &sat, epi, &mut stats);
                }
                jt += TJ;
            }
            while jt < n {
                let mut lane = path.lane_zero();
                let mut sat = path.sat_zero();
                for (kk, &ar) in arow.iter().enumerate() {
                    path.mac(&mut lane, &mut sat, ar, b[kk * n + jt]);
                }
                // SAFETY: see `finish_store`.
                #[allow(unsafe_code)]
                unsafe {
                    finish_store(
                        path,
                        c,
                        base,
                        dest,
                        bsz,
                        jt,
                        &[lane],
                        &[sat],
                        epi,
                        &mut stats,
                    );
                }
                jt += 1;
            }
            i += 1;
        }
        stats
    }
}

/// The streaming stage: binds a datapath, tile kernel, operands,
/// destination and epilogue into a [`StageMatmul`].
struct StreamStage<'a, P: Datapath, K, D, E> {
    path: P,
    kern: K,
    a: &'a [P::In],
    b: &'a [P::In],
    c: SendPtr<P::Out>,
    m: usize,
    k: usize,
    n_mat: usize,
    bsz: usize,
    dest: &'a D,
    epi: &'a E,
}

impl<P: Datapath, K: TileKernel, D: Dest, E: Epilogue<P::EpiV>> StageMatmul
    for StreamStage<'_, P, K, D, E>
{
    type Sink = P::Sink;
    type Stats = P::Stats;

    fn rows(&self) -> usize {
        self.m
    }
    fn work(&self) -> usize {
        self.m * self.k * self.n_mat * self.bsz
    }
    fn run_span(&self, row0: usize, rows: usize, sink: &P::Sink) {
        let job = StreamJob {
            path: self.path,
            a: self.a,
            b: self.b,
            c: self.c.get(),
            row0,
            rows,
            k: self.k,
            n_mat: self.n_mat,
            bsz: self.bsz,
            dest: self.dest,
            epi: self.epi,
        };
        let stats = self.kern.run(job);
        P::stats_add(sink, stats);
    }
    fn take(sink: P::Sink) -> P::Stats {
        P::stats_take(sink)
    }
}

/// Streaming GEMM with fused epilogue and destination redirection:
/// `C = epilogue(A · B)` scattered through `dest`.
///
/// `a` is `m × k`, `b` is `k × (n_mat·bsz)` (logical columns
/// batch-inner), and output element `(i, q·bsz + cb)` lands at
/// `(dest.row_base(i) + dest.col_off(q))·bsz + cb` of `c`, transformed by
/// `epi` at the datapath's wide accumulator type. No pre-zero: the
/// destination bijection guarantees every element of `c` is written
/// exactly once. Returns the datapath's statistics (saturation counts for
/// the quantized path, `()` for float).
///
/// This is the kernel-layer entry; shape validation is by `assert!`
/// (the `Result`-returning wrappers live in [`crate::linalg`] and
/// `tie-quant`).
#[allow(clippy::too_many_arguments)] // GEMM kernel ABI: dims + slices are positional by design
pub fn stream_gemm<P: Datapath, K: TileKernel, D: Dest, E: Epilogue<P::EpiV>>(
    path: P,
    kern: K,
    a: &[P::In],
    b: &[P::In],
    c: &mut [P::Out],
    m: usize,
    k: usize,
    n_mat: usize,
    bsz: usize,
    dest: &D,
    epi: &E,
) -> P::Stats {
    assert!(bsz > 0, "stream_gemm: bsz must be positive");
    assert_eq!(dest.rows(), m, "stream_gemm: dest rows != m");
    assert_eq!(dest.cols(), n_mat, "stream_gemm: dest cols != n_mat");
    assert_eq!(a.len(), m * k, "stream_gemm: a length != m*k");
    assert_eq!(b.len(), k * n_mat * bsz, "stream_gemm: b length != k*n*bsz");
    assert_eq!(c.len(), m * n_mat * bsz, "stream_gemm: c length != m*n*bsz");
    let stage = StreamStage {
        path,
        kern,
        a,
        b,
        c: SendPtr(c.as_mut_ptr()),
        m,
        k,
        n_mat,
        bsz,
        dest,
        epi,
    };
    global_matmul(&stage)
}

// ---------------------------------------------------------------------------
// K-blocked stage: the cache-blocked float accumulate kernel.
// ---------------------------------------------------------------------------

/// The k-blocked stage's per-span job — the historical cache-blocked float
/// GEMM body, verbatim. `C` tiles load into registers once per k-block,
/// accumulate across the block, and store back; ascending `k0`/`kk` keeps
/// each output's accumulation order identical to the naive kernel, and the
/// partial-sum store/reload through `C` is bitwise exact. **No epilogue**:
/// mid-k partial sums round-trip through `C`, and an epilogue must only
/// ever see final sums — callers wanting fusion use the streaming stage.
struct KBlockJob<'a, T> {
    rows: usize,
    k: usize,
    n: usize,
    a: &'a [T],
    b: &'a [T],
    c: &'a mut [T],
}

impl<T: Scalar> TileJob for KBlockJob<'_, T> {
    type Out = ();

    #[inline(always)]
    fn run<const TJ: usize, const R: usize>(self) {
        let KBlockJob {
            rows,
            k,
            n,
            a,
            b,
            c,
        } = self;
        for i0 in (0..rows).step_by(BLOCK_M) {
            let i1 = (i0 + BLOCK_M).min(rows);
            for k0 in (0..k).step_by(BLOCK_K) {
                let k1 = (k0 + BLOCK_K).min(k);
                for j0 in (0..n).step_by(BLOCK_N) {
                    let j1 = (j0 + BLOCK_N).min(n);
                    let len = j1 - j0;
                    // R-row × TJ-column register microkernel: the C tiles
                    // are loaded into locals ONCE per k-block, accumulated
                    // across the whole `kk` loop, and stored back once —
                    // so steady state does one B-vector load per R output
                    // rows and no C traffic inside the k loop. The `jt`
                    // strip loop sits OUTSIDE the row loop so one
                    // `BLOCK_K × TJ` column strip of `B` stays L1-resident
                    // while every row pair of the slab sweeps over it.
                    // Because k-blocks advance in ascending order and each
                    // tile element adds its products in ascending `kk`,
                    // every output still sees the exact left-to-right
                    // accumulation sequence of the scalar loop, keeping
                    // the kernel bit-identical to `matmul_naive` on
                    // NaN/∞-free inputs. The fixed-size tile arrays give
                    // the compiler provable lengths, eliding bounds checks
                    // and vectorizing across the tile.
                    let mut jt = 0;
                    while jt + TJ <= len {
                        let jb = j0 + jt;
                        let mut i = i0;
                        while i + R <= i1 {
                            let mut t = [[T::ZERO; TJ]; R];
                            for (r, tr) in t.iter_mut().enumerate() {
                                tr.copy_from_slice(&c[(i + r) * n + jb..][..TJ]);
                            }
                            for kk in k0..k1 {
                                let bv = &b[kk * n + jb..][..TJ];
                                for (r, tr) in t.iter_mut().enumerate() {
                                    let ar = a[(i + r) * k + kk];
                                    for (x, &v) in tr.iter_mut().zip(bv) {
                                        *x += ar * v;
                                    }
                                }
                            }
                            for (r, tr) in t.iter().enumerate() {
                                c[(i + r) * n + jb..][..TJ].copy_from_slice(tr);
                            }
                            i += R;
                        }
                        while i < i1 {
                            let arow = &a[i * k..(i + 1) * k];
                            let crow = &mut c[i * n + jb..][..TJ];
                            let mut t0 = [T::ZERO; TJ];
                            t0.copy_from_slice(crow);
                            for kk in k0..k1 {
                                let a0 = arow[kk];
                                let bv = &b[kk * n + jb..][..TJ];
                                for (t, &v) in bv.iter().enumerate() {
                                    t0[t] += a0 * v;
                                }
                            }
                            crow.copy_from_slice(&t0);
                            i += 1;
                        }
                        jt += TJ;
                    }
                    // Remainder columns (< TJ wide): plain scalar
                    // accumulators, same ascending-k order.
                    while jt < len {
                        let jb = j0 + jt;
                        for i in i0..i1 {
                            let arow = &a[i * k..(i + 1) * k];
                            let mut s0 = c[i * n + jb];
                            for kk in k0..k1 {
                                s0 += arow[kk] * b[kk * n + jb];
                            }
                            c[i * n + jb] = s0;
                        }
                        jt += 1;
                    }
                }
            }
        }
    }
}

/// The k-blocked stage: row-major `C += A · B` over pre-zeroed output.
struct KBlockStage<'a, T, K> {
    kern: K,
    a: &'a [T],
    b: &'a [T],
    c: SendPtr<T>,
    m: usize,
    k: usize,
    n: usize,
}

impl<T: Scalar, K: TileKernel> StageMatmul for KBlockStage<'_, T, K> {
    type Sink = ();
    type Stats = ();

    fn rows(&self) -> usize {
        self.m
    }
    fn work(&self) -> usize {
        self.m * self.k * self.n
    }
    fn run_span(&self, row0: usize, rows: usize, _sink: &()) {
        // SAFETY: `global_matmul` hands each worker a disjoint row span,
        // so the carved sub-slices never alias; the buffer outlives the
        // dispatch (the caller holds `&mut` across the pool join).
        #[allow(unsafe_code)]
        let c_slab = unsafe {
            std::slice::from_raw_parts_mut(self.c.get().add(row0 * self.n), rows * self.n)
        };
        let a_slab = &self.a[row0 * self.k..(row0 + rows) * self.k];
        self.kern.run(KBlockJob {
            rows,
            k: self.k,
            n: self.n,
            a: a_slab,
            b: self.b,
            c: c_slab,
        });
    }
    fn take(_sink: ()) {}
}

/// Cache/k-blocked `C += A · B` (row-major, `c` pre-zeroed by the caller)
/// — the [`crate::linalg::gemm_into`] engine. No epilogue by design: see
/// [`KBlockJob`].
pub fn kblocked_gemm<T: Scalar, K: TileKernel>(
    kern: K,
    a: &[T],
    b: &[T],
    c: &mut [T],
    m: usize,
    k: usize,
    n: usize,
) {
    assert_eq!(a.len(), m * k, "kblocked_gemm: a length != m*k");
    assert_eq!(b.len(), k * n, "kblocked_gemm: b length != k*n");
    assert_eq!(c.len(), m * n, "kblocked_gemm: c length != m*n");
    let stage = KBlockStage {
        kern,
        a,
        b,
        c: SendPtr(c.as_mut_ptr()),
        m,
        k,
        n,
    };
    global_matmul(&stage)
}

/// One k-blocked span, run inline on the calling thread — the slab body
/// `gemm_into_scoped` (the pool-perf baseline) drives under its own
/// `std::thread::scope` partition.
pub(crate) fn kblocked_span<T: Scalar, K: TileKernel>(
    kern: K,
    rows: usize,
    k: usize,
    n: usize,
    a: &[T],
    b: &[T],
    c: &mut [T],
) {
    kern.run(KBlockJob {
        rows,
        k,
        n,
        a,
        b,
        c,
    });
}

// ---------------------------------------------------------------------------
// Gram stage: the triangular A·Aᵀ kernel.
// ---------------------------------------------------------------------------

/// Column-block size for the Gram stage: `m` row segments of 512 doubles
/// (4 KiB each) stay L2-resident while the `m²/2` pairwise dot products
/// reuse them, so `A` is streamed from memory exactly once.
pub(crate) const GRAM_BLOCK_K: usize = 512;

/// The Gram stage: lower triangle of `G += A · Aᵀ` (`g` pre-zeroed).
///
/// Row `i` of the triangle costs `i + 1` dot products, so the stage
/// requests [`Partition::Slabs`] oversubscribed 4× — the pool's claim
/// counter rebalances the triangle dynamically. The per-span body is the
/// degenerate "trivial tile" of the hierarchy (plain scalar dots, no
/// register tiling): every element `G[i][j]` accumulates its column
/// blocks in ascending-`k` order inside exactly one span, hence
/// bit-deterministic at any thread count.
struct GramStage<'a, T> {
    a: &'a [T],
    g: SendPtr<T>,
    m: usize,
    n: usize,
}

impl<T: Scalar> StageMatmul for GramStage<'_, T> {
    type Sink = ();
    type Stats = ();

    fn rows(&self) -> usize {
        self.m
    }
    fn work(&self) -> usize {
        self.m.saturating_mul(self.m).saturating_mul(self.n) / 2
    }
    fn partition(&self, threads: usize) -> Partition {
        if threads <= 1 {
            Partition::Slabs(self.m.max(1))
        } else {
            Partition::Slabs(self.m.div_ceil(threads * 4).max(1))
        }
    }
    fn run_span(&self, row0: usize, rows: usize, _sink: &()) {
        let (m, n, ad) = (self.m, self.n, self.a);
        // SAFETY: disjoint row spans (see `KBlockStage::run_span`).
        #[allow(unsafe_code)]
        let g_slab =
            unsafe { std::slice::from_raw_parts_mut(self.g.get().add(row0 * m), rows * m) };
        for k0 in (0..n).step_by(GRAM_BLOCK_K) {
            let k1 = (k0 + GRAM_BLOCK_K).min(n);
            for r in 0..rows {
                let i = row0 + r;
                let arow = &ad[i * n + k0..i * n + k1];
                for j in 0..=i {
                    let brow = &ad[j * n + k0..j * n + k1];
                    let mut acc = T::ZERO;
                    for (&x, &y) in arow.iter().zip(brow) {
                        acc += x * y;
                    }
                    g_slab[r * m + j] += acc;
                }
            }
        }
    }
    fn take(_sink: ()) {}
}

/// Lower triangle of the Gram matrix `G += A · Aᵀ` into pre-zeroed `g`
/// (`m × m`, row-major); `a` is `m × n`. The caller mirrors the upper
/// triangle (see [`crate::linalg`]'s `gram_nt`).
pub(crate) fn gram_into<T: Scalar>(a: &[T], g: &mut [T], m: usize, n: usize) {
    debug_assert_eq!(a.len(), m * n);
    debug_assert_eq!(g.len(), m * m);
    let stage = GramStage {
        a,
        g: SendPtr(g.as_mut_ptr()),
        m,
        n,
    };
    global_matmul(&stage)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize, scale: f64) -> Vec<f64> {
        (0..n)
            .map(|i| ((i * 7 + 3) % 11) as f64 * scale - 2.0)
            .collect()
    }

    fn naive(a: &[f64], b: &[f64], m: usize, k: usize, n: usize) -> Vec<f64> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a[i * k + kk] * b[kk * n + j];
                }
                c[i * n + j] = acc;
            }
        }
        c
    }

    #[test]
    fn stream_rowmajor_identity_matches_naive() {
        for (m, k, n) in [(1, 1, 1), (3, 5, 7), (9, 17, 33), (4, 1, 31)] {
            let a = seq(m * k, 0.5);
            let b = seq(k * n, 0.25);
            let want = naive(&a, &b, m, k, n);
            let mut c = vec![f64::NAN; m * n];
            stream_gemm(
                FloatPath::<f64>::new(),
                FloatAuto,
                &a,
                &b,
                &mut c,
                m,
                k,
                n,
                1,
                &RowMajor::new(m, n),
                &Identity,
            );
            assert_eq!(c, want, "auto kernel {m}x{k}x{n}");
            let mut cp = vec![f64::NAN; m * n];
            stream_gemm(
                FloatPath::<f64>::new(),
                PortableTile::<8, 2>,
                &a,
                &b,
                &mut cp,
                m,
                k,
                n,
                1,
                &RowMajor::new(m, n),
                &Identity,
            );
            assert_eq!(cp, want, "portable kernel {m}x{k}x{n}");
        }
    }

    #[test]
    fn fused_bias_relu_matches_separate_passes() {
        let (m, k, n) = (5, 9, 13);
        let a = seq(m * k, 0.3);
        let b = seq(k * n, -0.2);
        let bias = seq(m * n, 0.1);
        let plain = naive(&a, &b, m, k, n);
        let want: Vec<f64> = plain
            .iter()
            .zip(&bias)
            .map(|(&v, &bb)| {
                let s = v + bb;
                if s > 0.0 {
                    s
                } else {
                    0.0
                }
            })
            .collect();
        let mut c = vec![f64::NAN; m * n];
        stream_gemm(
            FloatPath::<f64>::new(),
            FloatAuto,
            &a,
            &b,
            &mut c,
            m,
            k,
            n,
            1,
            &RowMajor::new(m, n),
            &BiasRelu::new(&bias),
        );
        assert_eq!(
            c.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            want.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn kblocked_matches_streaming_bits() {
        let (m, k, n) = (37, 65, 41);
        let a = seq(m * k, 0.7);
        let b = seq(k * n, 0.9);
        let mut c1 = vec![0.0; m * n];
        kblocked_gemm(FloatAuto, &a, &b, &mut c1, m, k, n);
        let mut c2 = vec![f64::NAN; m * n];
        stream_gemm(
            FloatPath::<f64>::new(),
            FloatAuto,
            &a,
            &b,
            &mut c2,
            m,
            k,
            n,
            1,
            &RowMajor::new(m, n),
            &Identity,
        );
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&c1), bits(&c2));
    }

    #[test]
    fn activation_default_is_identity() {
        assert_eq!(Activation::default(), Activation::Identity);
    }
}
