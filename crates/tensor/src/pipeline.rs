//! Persistent dedicated worker group for stage pipelines.
//!
//! [`crate::pool`] is a *work-stealing* substrate: parked workers adopt
//! whichever job is oldest, and a nested dispatch runs inline on the
//! calling thread. Both properties are exactly wrong for a *pipeline*,
//! where each participant may block on a bounded channel waiting for a
//! peer — an adopted pipeline stage could park a pool worker behind a
//! channel whose producer is an unclaimed slab (a cross-job deadlock),
//! and inline nested execution would run the stages sequentially against
//! a bounded channel that assumes a live consumer.
//!
//! [`PipelineHost`] is the complement: a small set of *dedicated*
//! persistent threads that participate in every [`PipelineHost::run`]
//! call, never adopt foreign work, and park between calls. `run(f)`
//! invokes `f(i)` on worker thread `i` for `i < workers` and `f(workers)`
//! on the calling thread, returning only when **all** invocations have
//! finished — the same blocking-barrier contract as `pool::dispatch`, so
//! the closure may freely borrow caller-stack state (inputs, outputs,
//! channels). Because every branch has a dedicated live thread, bounded
//! producer/consumer handoffs between branches cannot deadlock.
//!
//! Warm `run` calls are allocation-free: the job is published as a
//! lifetime-erased borrow in a mutex-guarded slot (no boxing), exactly
//! like the pool's stack-resident job frames. The compute inside a branch
//! may still dispatch onto the shared [`crate::pool`] — the host threads
//! are not pool workers, so a nested GEMM parallelizes normally.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// Type-erased borrow of the closure of the `run` call in flight. Only
/// dereferenced between the epoch bump that publishes it and the matching
/// `done` increment — the caller waits out every increment before its
/// frame (and the borrow) can die.
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: lifetime-erased borrow; the dereference discipline is documented
// on the type and enforced by the barrier in `PipelineHost::run`.
#[allow(unsafe_code)]
unsafe impl Send for JobPtr {}

struct HostCtrl {
    /// Bumped once per published job; workers run a job exactly once.
    epoch: u64,
    /// The in-flight job, `None` between runs.
    job: Option<JobPtr>,
    /// Worker branches finished for the current epoch.
    done: usize,
    /// Worker branches that panicked in the current epoch.
    panics: usize,
    /// Set once by `Drop`; workers exit at the next wakeup.
    shutdown: bool,
}

struct HostShared {
    ctrl: Mutex<HostCtrl>,
    /// Workers park here between jobs.
    work_cv: Condvar,
    /// The caller parks here until `done == workers`.
    done_cv: Condvar,
}

fn lock(m: &Mutex<HostCtrl>) -> MutexGuard<'_, HostCtrl> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A persistent group of dedicated worker threads with a blocking
/// closure-barrier dispatch (see the module docs).
///
/// Dropping the host signals shutdown and joins every worker.
pub struct PipelineHost {
    shared: Arc<HostShared>,
    workers: usize,
    /// One run at a time: concurrent `run` calls serialize here (the job
    /// slot and the done counter are single-occupancy).
    run_lock: Mutex<()>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for PipelineHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelineHost")
            .field("workers", &self.workers)
            .finish()
    }
}

impl PipelineHost {
    /// Spawns `workers` dedicated threads (0 is valid: `run(f)` then just
    /// calls `f(0)` inline).
    #[must_use]
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(HostShared {
            ctrl: Mutex::new(HostCtrl {
                epoch: 0,
                job: None,
                done: 0,
                panics: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("tie-pipeline-{i}"))
                    .spawn(move || worker_loop(i, &shared))
                    .expect("spawn pipeline worker")
            })
            .collect();
        PipelineHost {
            shared,
            workers,
            run_lock: Mutex::new(()),
            handles,
        }
    }

    /// Number of dedicated worker threads (the caller is one extra
    /// participant: `run` passes branch indices `0..=workers`).
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `f(i)` on worker `i` for every `i < workers` and `f(workers)`
    /// on the calling thread; returns when all branches have finished.
    ///
    /// # Panics
    ///
    /// Re-raises the calling branch's panic; a worker-branch panic is
    /// surfaced as a panic after all branches have settled (the barrier is
    /// honored either way, so borrows stay sound).
    pub fn run<F: Fn(usize) + Sync>(&self, f: F) {
        if self.workers == 0 {
            f(0);
            return;
        }
        let _serial = self
            .run_lock
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        {
            let erased: &(dyn Fn(usize) + Sync) = &f;
            // SAFETY: lifetime erasure only — the pointer is dereferenced
            // exclusively while this frame is pinned below waiting for
            // `done == workers`.
            #[allow(unsafe_code)]
            let erased = unsafe {
                std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(
                    erased,
                )
            };
            let mut ctrl = lock(&self.shared.ctrl);
            ctrl.job = Some(JobPtr(erased));
            ctrl.done = 0;
            ctrl.panics = 0;
            ctrl.epoch += 1;
            self.shared.work_cv.notify_all();
        }

        // The caller is the most-downstream branch. Even if it panics, the
        // barrier below must complete before unwinding: the workers still
        // hold the lifetime-erased borrow.
        let caller = catch_unwind(AssertUnwindSafe(|| f(self.workers)));

        let mut ctrl = lock(&self.shared.ctrl);
        while ctrl.done < self.workers {
            ctrl = self
                .shared
                .done_cv
                .wait(ctrl)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        ctrl.job = None;
        let worker_panics = ctrl.panics;
        drop(ctrl);

        match caller {
            Err(payload) => resume_unwind(payload),
            Ok(()) => {
                assert_eq!(worker_panics, 0, "pipeline worker branch panicked");
            }
        }
    }
}

impl Drop for PipelineHost {
    fn drop(&mut self) {
        {
            let mut ctrl = lock(&self.shared.ctrl);
            ctrl.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(index: usize, shared: &HostShared) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut ctrl = lock(&shared.ctrl);
            loop {
                if ctrl.shutdown {
                    return;
                }
                if ctrl.epoch > seen {
                    break;
                }
                ctrl = shared
                    .work_cv
                    .wait(ctrl)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            seen = ctrl.epoch;
            ctrl.job.expect("published epoch carries a job")
        };
        // SAFETY: the caller of `run` is pinned until `done` below reaches
        // `workers`, so the borrow behind the pointer is live for the
        // whole call.
        #[allow(unsafe_code)]
        let f = unsafe { &*job.0 };
        let panicked = catch_unwind(AssertUnwindSafe(|| f(index))).is_err();
        let mut ctrl = lock(&shared.ctrl);
        ctrl.done += 1;
        if panicked {
            ctrl.panics += 1;
        }
        drop(ctrl);
        // Unconditional: the caller re-checks `done` under the lock, and a
        // branch finishing is rare enough that a spurious wake is free.
        shared.done_cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn all_branches_run_exactly_once() {
        let host = PipelineHost::new(3);
        let hits = [const { AtomicUsize::new(0) }; 4];
        host.run(|i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        });
        for h in &hits {
            assert_eq!(h.load(Ordering::SeqCst), 1);
        }
        // Warm reuse: same threads, fresh epoch.
        host.run(|i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        });
        for h in &hits {
            assert_eq!(h.load(Ordering::SeqCst), 2);
        }
    }

    #[test]
    fn zero_workers_runs_inline() {
        let host = PipelineHost::new(0);
        let hits = AtomicUsize::new(0);
        host.run(|i| {
            assert_eq!(i, 0);
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn branches_can_borrow_caller_stack_mutably_via_mutexes() {
        let host = PipelineHost::new(2);
        let outputs: Vec<Mutex<Vec<u32>>> = (0..3).map(|_| Mutex::new(Vec::new())).collect();
        host.run(|i| {
            outputs[i].lock().unwrap().push(i as u32 + 10);
        });
        let got: Vec<u32> = outputs.iter().map(|m| m.lock().unwrap()[0]).collect();
        assert_eq!(got, vec![10, 11, 12]);
    }

    #[test]
    fn worker_panic_is_surfaced_after_the_barrier() {
        let host = PipelineHost::new(1);
        let result = catch_unwind(AssertUnwindSafe(|| {
            host.run(|i| {
                if i == 0 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // The host survives: the next run proceeds normally.
        let hits = AtomicUsize::new(0);
        host.run(|_| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn drop_joins_cleanly_with_parked_workers() {
        let host = PipelineHost::new(4);
        host.run(|_| {});
        drop(host); // must not hang
    }
}
