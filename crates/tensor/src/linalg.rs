//! Matrix kernels: multiplication, Householder QR, one-sided Jacobi SVD.
//!
//! TT-SVD (in `tie-tt`) repeatedly computes truncated SVDs of unfolding
//! matrices; the compact inference scheme (in `tie-core`) is a chain of
//! matrix products. Both are served from here, with no external BLAS/LAPACK
//! dependency — everything is implemented from scratch per the reproduction
//! ground rules.

use crate::tile::{
    self, Activation, Bias, BiasRelu, FloatAuto, FloatPath, Identity, Mapped, Relu, RowMajor,
    BLOCK_K, BLOCK_M, BLOCK_N,
};
use crate::{parallel, Result, Scalar, Tensor, TensorError};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Dense matrix product `C = A · B`.
///
/// Cache-blocked (`BLOCK_M × BLOCK_K × BLOCK_N` tiles) and, above
/// [`parallel::PARALLEL_MIN_WORK`] multiply-adds, row-partitioned across
/// `std::thread::scope` workers (count from [`parallel::num_threads`]).
///
/// # Bit-consistency
///
/// For every output element the products `A[i,k]·B[k,j]` are accumulated in
/// ascending `k` with plain multiply-then-add, exactly like
/// [`matmul_naive`]; blocking and threading only reorder *independent*
/// outputs, so `matmul` and `matmul_naive` agree bit-for-bit at any thread
/// count. Both kernels skip `A[i,k] == 0.0` terms entirely. On finite
/// inputs the skip is also bitwise-neutral: the accumulator starts at
/// `+0.0` and can never become `-0.0` (IEEE 754 sums of zeros of either
/// sign are `+0.0`), and adding the skipped `±0.0` product to any such
/// accumulator returns it unchanged. The skip *is* observable when `B`
/// holds non-finite values (`0.0 · ∞` and `0.0 · NaN` are `NaN`, which the
/// skip never materializes) — callers that care about NaN propagation from
/// `B` must not place zeros in `A`.
///
/// # Errors
///
/// Returns [`TensorError::NotAMatrix`] if an operand is not 2-D or
/// [`TensorError::MatmulDimMismatch`] if the inner dimensions differ.
///
/// # Example
///
/// ```
/// use tie_tensor::{Tensor, linalg::matmul};
/// # fn main() -> Result<(), tie_tensor::TensorError> {
/// let a = Tensor::<f64>::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.])?;
/// let b = Tensor::<f64>::from_vec(vec![3, 1], vec![1., 0., -1.])?;
/// let c = matmul(&a, &b)?;
/// assert_eq!(c.data(), &[-2.0, -2.0]);
/// # Ok(())
/// # }
/// ```
pub fn matmul<T: Scalar>(a: &Tensor<T>, b: &Tensor<T>) -> Result<Tensor<T>> {
    let (m, ka) = (a.nrows()?, a.ncols()?);
    let (kb, n) = (b.nrows()?, b.ncols()?);
    if ka != kb {
        return Err(TensorError::MatmulDimMismatch {
            left: (m, ka),
            right: (kb, n),
        });
    }
    let mut out = Tensor::zeros(vec![m, n]);
    tile::kblocked_gemm(FloatAuto, a.data(), b.data(), out.data_mut(), m, ka, n);
    Ok(out)
}

/// Reference `i-k-j` matrix product (the pre-blocking workhorse kernel).
///
/// Kept as the ground truth the blocked [`matmul`] is property-tested
/// against; the innermost loop streams rows of `B` (row-major friendly)
/// and `A[i,k] == 0.0` terms are skipped.
///
/// # Errors
///
/// Returns shape errors as in [`matmul`].
pub fn matmul_naive<T: Scalar>(a: &Tensor<T>, b: &Tensor<T>) -> Result<Tensor<T>> {
    let (m, ka) = (a.nrows()?, a.ncols()?);
    let (kb, n) = (b.nrows()?, b.ncols()?);
    if ka != kb {
        return Err(TensorError::MatmulDimMismatch {
            left: (m, ka),
            right: (kb, n),
        });
    }
    let mut out = Tensor::zeros(vec![m, n]);
    {
        let ad = a.data();
        let bd = b.data();
        let cd = out.data_mut();
        for i in 0..m {
            let arow = &ad[i * ka..(i + 1) * ka];
            let crow = &mut cd[i * n..(i + 1) * n];
            for (k, &aik) in arow.iter().enumerate() {
                if aik == T::ZERO {
                    continue;
                }
                let brow = &bd[k * n..(k + 1) * n];
                for (c, &bkj) in crow.iter_mut().zip(brow) {
                    *c += aik * bkj;
                }
            }
        }
    }
    Ok(out)
}

/// Slice-level `C = A · B` into a caller-owned buffer (no allocation).
///
/// `a` is `m × k`, `b` is `k × n`, `c` is `m × n`, all row-major. `c` is
/// overwritten (zeroed, then accumulated). This is the zero-copy entry
/// point the compact engine's stage pipeline uses to keep its steady state
/// allocation-free; numerics are identical to [`matmul`].
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] if a slice length does not
/// match its `m`/`k`/`n` dimensions.
pub fn gemm_into<T: Scalar>(
    a: &[T],
    b: &[T],
    c: &mut [T],
    m: usize,
    k: usize,
    n: usize,
) -> Result<()> {
    if a.len() != m * k || b.len() != k * n || c.len() != m * n {
        return Err(TensorError::InvalidArgument {
            message: format!(
                "gemm_into: buffer lengths (a={}, b={}, c={}) do not match {m}x{k} · {k}x{n}",
                a.len(),
                b.len(),
                c.len()
            ),
        });
    }
    c.fill(T::ZERO);
    tile::kblocked_gemm(FloatAuto, a, b, c, m, k, n);
    Ok(())
}

/// [`gemm_into`] over freshly spawned `std::thread::scope` workers instead
/// of the persistent pool — same slab partition, same blocked kernel, same
/// bits. Kept solely as the dispatch-latency baseline for the pool benches
/// and the tier-2 regression gate; production code uses [`gemm_into`].
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] as [`gemm_into`] does.
#[doc(hidden)]
pub fn gemm_into_scoped<T: Scalar>(
    a: &[T],
    b: &[T],
    c: &mut [T],
    m: usize,
    k: usize,
    n: usize,
) -> Result<()> {
    if a.len() != m * k || b.len() != k * n || c.len() != m * n {
        return Err(TensorError::InvalidArgument {
            message: format!(
                "gemm_into_scoped: buffer lengths (a={}, b={}, c={}) do not match {m}x{k} · {k}x{n}",
                a.len(),
                b.len(),
                c.len()
            ),
        });
    }
    c.fill(T::ZERO);
    let threads = parallel::threads_for(m * k * n, m);
    parallel::for_each_row_slab_scoped(c, m, n, threads, |row0, c_slab| {
        let rows = c_slab.len() / n.max(1);
        let a_slab = &a[row0 * k..(row0 + rows) * k];
        tile::kblocked_span(FloatAuto, rows, k, n, a_slab, b, c_slab);
    });
    Ok(())
}

/// A separable destination map: the write epilogue of the mapped GEMM
/// kernels ([`gemm_into_mapped`]).
///
/// A plain GEMM stores output element `(i, q)` of an `rows × cols` product
/// at row-major offset `i·cols + q`. A mapped GEMM instead stores it at
/// `row[i] + col[q]` — any permutation of the output that *separates* into
/// independent row and column contributions can be fused into the store,
/// eliminating the follow-up permutation pass entirely. The inter-stage
/// Transform of the TIE compact scheme (Eqns. 8/10) is exactly such a map:
/// `tie-core`'s indexing-map compiler composes the transpose/reshape chain
/// into one strided affine map and splits it at the row/column boundary
/// into these two offset tables.
///
/// Construction validates full bijectivity — every `row[i] + col[q]` must
/// hit `[0, rows·cols)` exactly once — so the kernels can scatter through
/// the tables without bounds checks and without pre-zeroing the output.
///
/// # Batched destinations
///
/// The tables are in *logical element* units. The kernels take a separate
/// batch width `bsz`: GEMM column `q·bsz + cb` (sample `cb` of logical
/// column `q`, the batch-innermost layout the compact engine uses) lands at
/// `(row[i] + col[q])·bsz + cb`. One single-sample map therefore serves
/// every batch size with no per-batch table rebuild.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DestMap {
    row: Vec<usize>,
    col: Vec<usize>,
}

impl DestMap {
    /// Builds a map from per-row and per-column destination offsets,
    /// verifying that `(i, q) ↦ row[i] + col[q]` is a bijection onto
    /// `[0, row.len()·col.len())`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if any combined offset is
    /// out of range or duplicated.
    pub fn new(row: Vec<usize>, col: Vec<usize>) -> Result<Self> {
        let total = row.len() * col.len();
        let mut seen = vec![false; total];
        for (i, &r) in row.iter().enumerate() {
            for (q, &c) in col.iter().enumerate() {
                let off = r + c;
                if off >= total || seen[off] {
                    return Err(TensorError::InvalidArgument {
                        message: format!(
                            "DestMap: offset {off} for ({i}, {q}) is {} (space {total})",
                            if off >= total {
                                "out of range"
                            } else {
                                "duplicated"
                            }
                        ),
                    });
                }
                seen[off] = true;
            }
        }
        Ok(DestMap { row, col })
    }

    /// The identity map: `(i, q) ↦ i·cols + q`, i.e. plain row-major
    /// storage. A mapped kernel with this map is bitwise the unmapped one.
    #[must_use]
    pub fn identity(rows: usize, cols: usize) -> Self {
        DestMap {
            row: (0..rows).map(|i| i * cols).collect(),
            col: (0..cols).collect(),
        }
    }

    /// Number of logical output rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.row.len()
    }

    /// Number of logical output columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.col.len()
    }

    /// Destination offset of logical element `(i, q)`, in elements.
    #[must_use]
    pub fn offset(&self, i: usize, q: usize) -> usize {
        self.row[i] + self.col[q]
    }

    /// The per-row offset table (validated at construction).
    #[must_use]
    pub fn row_offsets(&self) -> &[usize] {
        &self.row
    }

    /// The per-column offset table (validated at construction).
    #[must_use]
    pub fn col_offsets(&self) -> &[usize] {
        &self.col
    }
}

/// `C = A · B` with a fused destination-map write epilogue — the software
/// realization of TIE's zero-cost Transform: the permutation that used to
/// be a separate gather pass happens *inside* the GEMM's store.
///
/// `a` is `m × k`, `b` is `k × (n_mat·bsz)` (logical columns batch-inner),
/// and output element `(i, q·bsz + cb)` is stored at
/// `(map.row[i] + map.col[q])·bsz + cb` of `c`. With
/// [`DestMap::identity`] this is exactly [`gemm_into`].
///
/// # Bit-consistency
///
/// Every output accumulates its products in ascending `k` with plain
/// multiply-then-add — the same sequence as [`gemm_into`] (whose cache
/// blocking stores and reloads exact partial sums, a bitwise no-op) — and
/// the row-span partition matches the unmapped kernel's slab partition, so
/// `gemm_into_mapped` is bit-identical to [`gemm_into`]-then-permute at
/// any thread count, on every SIMD path.
///
/// No pre-zero: the map's bijection guarantees every element of `c` is
/// written exactly once.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] on slice-length or map-extent
/// mismatch, or `bsz == 0`.
#[allow(clippy::too_many_arguments)] // GEMM kernel ABI: dims + slices are positional by design
pub fn gemm_into_mapped<T: Scalar>(
    a: &[T],
    b: &[T],
    c: &mut [T],
    m: usize,
    k: usize,
    n_mat: usize,
    bsz: usize,
    map: &DestMap,
) -> Result<()> {
    let n = n_mat * bsz;
    if bsz == 0 || map.rows() != m || map.cols() != n_mat {
        return Err(TensorError::InvalidArgument {
            message: format!(
                "gemm_into_mapped: map {}x{} (bsz {bsz}) does not match {m}x{n_mat}",
                map.rows(),
                map.cols()
            ),
        });
    }
    if a.len() != m * k || b.len() != k * n || c.len() != m * n {
        return Err(TensorError::InvalidArgument {
            message: format!(
                "gemm_into_mapped: buffer lengths (a={}, b={}, c={}) do not match {m}x{k} · {k}x{n}",
                a.len(),
                b.len(),
                c.len()
            ),
        });
    }
    tile::stream_gemm(
        FloatPath::<T>::new(),
        FloatAuto,
        a,
        b,
        c,
        m,
        k,
        n_mat,
        bsz,
        &Mapped::new(map),
        &Identity,
    );
    Ok(())
}

/// [`gemm_into_mapped`] with a fused bias/activation epilogue applied at
/// the accumulator, inside the GEMM's store loop — the last TT stage's
/// bias add + ReLU cost zero extra output passes.
///
/// `bias` (when present) is indexed by **logical destination element**
/// `map.row[i] + map.col[q]` — for the engines' final assemble maps, the
/// output-neuron index — and must have `m·n_mat` elements.
///
/// # Bit-consistency
///
/// The epilogue transforms each output's *finished* full-`k` accumulator,
/// so the result is bit-identical to [`gemm_into_mapped`] followed by a
/// separate bias/activation pass, at any thread count.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] as [`gemm_into_mapped`] does,
/// or if `bias` length differs from `m·n_mat`.
#[allow(clippy::too_many_arguments)] // GEMM kernel ABI: dims + slices are positional by design
pub fn gemm_into_mapped_fused<T: Scalar>(
    a: &[T],
    b: &[T],
    c: &mut [T],
    m: usize,
    k: usize,
    n_mat: usize,
    bsz: usize,
    map: &DestMap,
    bias: Option<&[T]>,
    act: Activation,
) -> Result<()> {
    let n = n_mat * bsz;
    if bsz == 0 || map.rows() != m || map.cols() != n_mat {
        return Err(TensorError::InvalidArgument {
            message: format!(
                "gemm_into_mapped_fused: map {}x{} (bsz {bsz}) does not match {m}x{n_mat}",
                map.rows(),
                map.cols()
            ),
        });
    }
    if a.len() != m * k || b.len() != k * n || c.len() != m * n {
        return Err(TensorError::InvalidArgument {
            message: format!(
                "gemm_into_mapped_fused: buffer lengths (a={}, b={}, c={}) do not match {m}x{k} · {k}x{n}",
                a.len(),
                b.len(),
                c.len()
            ),
        });
    }
    if let Some(bias) = bias {
        if bias.len() != m * n_mat {
            return Err(TensorError::InvalidArgument {
                message: format!(
                    "gemm_into_mapped_fused: bias length {} does not match {m}x{n_mat} output",
                    bias.len()
                ),
            });
        }
    }
    let path = FloatPath::<T>::new();
    let dest = Mapped::new(map);
    match (bias, act) {
        (None, Activation::Identity) => {
            tile::stream_gemm(path, FloatAuto, a, b, c, m, k, n_mat, bsz, &dest, &Identity);
        }
        (None, Activation::Relu) => {
            tile::stream_gemm(path, FloatAuto, a, b, c, m, k, n_mat, bsz, &dest, &Relu);
        }
        (Some(bias), Activation::Identity) => {
            tile::stream_gemm(
                path,
                FloatAuto,
                a,
                b,
                c,
                m,
                k,
                n_mat,
                bsz,
                &dest,
                &Bias::new(bias),
            );
        }
        (Some(bias), Activation::Relu) => {
            tile::stream_gemm(
                path,
                FloatAuto,
                a,
                b,
                c,
                m,
                k,
                n_mat,
                bsz,
                &dest,
                &BiasRelu::new(bias),
            );
        }
    }
    Ok(())
}

/// Row-major streaming GEMM with a fused bias/activation epilogue:
/// [`gemm_into`] + bias + activation in one pass, with batch-inner column
/// layout (`b` is `k × (n_mat·bsz)`, output element `(i, q·bsz + cb)` at
/// `(i·n_mat + q)·bsz + cb`). `bias` is indexed by `i·n_mat + q` and must
/// have `m·n_mat` elements. With `bsz == 1`, `bias == None`,
/// `act == Identity` this is bitwise [`gemm_into`].
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] on length mismatch or
/// `bsz == 0`.
#[allow(clippy::too_many_arguments)] // GEMM kernel ABI: dims + slices are positional by design
pub fn gemm_into_fused<T: Scalar>(
    a: &[T],
    b: &[T],
    c: &mut [T],
    m: usize,
    k: usize,
    n_mat: usize,
    bsz: usize,
    bias: Option<&[T]>,
    act: Activation,
) -> Result<()> {
    let n = n_mat * bsz;
    if bsz == 0 || a.len() != m * k || b.len() != k * n || c.len() != m * n {
        return Err(TensorError::InvalidArgument {
            message: format!(
                "gemm_into_fused: buffer lengths (a={}, b={}, c={}) do not match {m}x{k} · {k}x{n} (bsz {bsz})",
                a.len(),
                b.len(),
                c.len()
            ),
        });
    }
    if let Some(bias) = bias {
        if bias.len() != m * n_mat {
            return Err(TensorError::InvalidArgument {
                message: format!(
                    "gemm_into_fused: bias length {} does not match {m}x{n_mat} output",
                    bias.len()
                ),
            });
        }
    }
    let path = FloatPath::<T>::new();
    let dest = RowMajor::new(m, n_mat);
    match (bias, act) {
        (None, Activation::Identity) => {
            tile::stream_gemm(path, FloatAuto, a, b, c, m, k, n_mat, bsz, &dest, &Identity);
        }
        (None, Activation::Relu) => {
            tile::stream_gemm(path, FloatAuto, a, b, c, m, k, n_mat, bsz, &dest, &Relu);
        }
        (Some(bias), Activation::Identity) => {
            tile::stream_gemm(
                path,
                FloatAuto,
                a,
                b,
                c,
                m,
                k,
                n_mat,
                bsz,
                &dest,
                &Bias::new(bias),
            );
        }
        (Some(bias), Activation::Relu) => {
            tile::stream_gemm(
                path,
                FloatAuto,
                a,
                b,
                c,
                m,
                k,
                n_mat,
                bsz,
                &dest,
                &BiasRelu::new(bias),
            );
        }
    }
    Ok(())
}

/// Matrix-vector product `y = A · x` where `x` is a 1-D tensor.
///
/// Row-partitioned across threads above the work threshold; each row's dot
/// product accumulates in ascending column order (same as the serial
/// kernel), so results are identical at any thread count.
///
/// # Errors
///
/// Returns [`TensorError::NotAMatrix`] / [`TensorError::MatmulDimMismatch`]
/// on shape problems.
pub fn matvec<T: Scalar>(a: &Tensor<T>, x: &Tensor<T>) -> Result<Tensor<T>> {
    let (m, k) = (a.nrows()?, a.ncols()?);
    if x.ndim() != 1 || x.num_elements() != k {
        return Err(TensorError::MatmulDimMismatch {
            left: (m, k),
            right: (x.num_elements(), 1),
        });
    }
    let mut out = Tensor::zeros(vec![m]);
    matvec_slices(m, k, a.data(), x.data(), out.data_mut());
    Ok(out)
}

/// Slice-level `y = A · x` into a caller-owned buffer (no allocation).
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] on slice-length mismatch.
pub fn matvec_into<T: Scalar>(a: &[T], x: &[T], y: &mut [T], m: usize, k: usize) -> Result<()> {
    if a.len() != m * k || x.len() != k || y.len() != m {
        return Err(TensorError::InvalidArgument {
            message: format!(
                "matvec_into: buffer lengths (a={}, x={}, y={}) do not match {m}x{k} · {k}",
                a.len(),
                x.len(),
                y.len()
            ),
        });
    }
    matvec_slices(m, k, a, x, y);
    Ok(())
}

fn matvec_slices<T: Scalar>(m: usize, k: usize, a: &[T], x: &[T], y: &mut [T]) {
    let threads = parallel::threads_for(m * k, m);
    parallel::for_each_row_slab(y, m, 1, threads, |row0, y_slab| {
        for (r, out) in y_slab.iter_mut().enumerate() {
            let i = row0 + r;
            let arow = &a[i * k..(i + 1) * k];
            let mut acc = T::ZERO;
            for (&aij, &xj) in arow.iter().zip(x) {
                acc += aij * xj;
            }
            *out = acc;
        }
    });
}

/// Product `C = Aᵀ · B` without materializing `Aᵀ`.
///
/// Cache-blocked and row-partitioned like [`matmul`]; every output
/// accumulates in ascending `k`, so results match [`matmul_tn_naive`]
/// bit-for-bit at any thread count (see the note on [`matmul`]).
///
/// # Errors
///
/// Returns shape errors as in [`matmul`].
pub fn matmul_tn<T: Scalar>(a: &Tensor<T>, b: &Tensor<T>) -> Result<Tensor<T>> {
    let (ka, m) = (a.nrows()?, a.ncols()?);
    let (kb, n) = (b.nrows()?, b.ncols()?);
    if ka != kb {
        return Err(TensorError::MatmulDimMismatch {
            left: (m, ka),
            right: (kb, n),
        });
    }
    let mut out = Tensor::zeros(vec![m, n]);
    let ad = a.data();
    let bd = b.data();
    let cd = out.data_mut();
    let threads = parallel::threads_for(m * ka * n, m);
    parallel::for_each_row_slab(cd, m, n, threads, |row0, c_slab| {
        let rows = c_slab.len() / n.max(1);
        gemm_tn_block(row0, rows, ka, m, n, ad, bd, c_slab);
    });
    Ok(out)
}

/// Reference `k-i-j` kernel for `C = Aᵀ · B` (the pre-blocking loop).
///
/// # Errors
///
/// Returns shape errors as in [`matmul`].
pub fn matmul_tn_naive<T: Scalar>(a: &Tensor<T>, b: &Tensor<T>) -> Result<Tensor<T>> {
    let (ka, m) = (a.nrows()?, a.ncols()?);
    let (kb, n) = (b.nrows()?, b.ncols()?);
    if ka != kb {
        return Err(TensorError::MatmulDimMismatch {
            left: (m, ka),
            right: (kb, n),
        });
    }
    let mut out = Tensor::zeros(vec![m, n]);
    let ad = a.data();
    let bd = b.data();
    let cd = out.data_mut();
    for k in 0..ka {
        let arow = &ad[k * m..(k + 1) * m];
        let brow = &bd[k * n..(k + 1) * n];
        for (i, &aki) in arow.iter().enumerate() {
            if aki == T::ZERO {
                continue;
            }
            let crow = &mut cd[i * n..(i + 1) * n];
            for (c, &bkj) in crow.iter_mut().zip(brow) {
                *c += aki * bkj;
            }
        }
    }
    Ok(out)
}

/// Blocked `C[i0_global..][..] += Aᵀ · B` on one slab of output rows
/// (columns `i0_global..i0_global+rows` of `A`). `kk` ascends, matching
/// the naive kernel's per-output accumulation order.
#[allow(clippy::too_many_arguments)]
fn gemm_tn_block<T: Scalar>(
    i0_global: usize,
    rows: usize,
    ka: usize,
    m: usize,
    n: usize,
    a: &[T],
    b: &[T],
    c: &mut [T],
) {
    for i0 in (0..rows).step_by(BLOCK_M) {
        let i1 = (i0 + BLOCK_M).min(rows);
        for k0 in (0..ka).step_by(BLOCK_K) {
            let k1 = (k0 + BLOCK_K).min(ka);
            for j0 in (0..n).step_by(BLOCK_N) {
                let j1 = (j0 + BLOCK_N).min(n);
                for kk in k0..k1 {
                    let at_row = &a[kk * m..(kk + 1) * m];
                    let brow = &b[kk * n + j0..kk * n + j1];
                    for i in i0..i1 {
                        let aki = at_row[i0_global + i];
                        if aki == T::ZERO {
                            continue;
                        }
                        let crow = &mut c[i * n + j0..i * n + j1];
                        for (cv, &bkj) in crow.iter_mut().zip(brow) {
                            *cv += aki * bkj;
                        }
                    }
                }
            }
        }
    }
}

/// Product `C = A · Bᵀ` without materializing `Bᵀ`.
///
/// Both operands are walked along contiguous rows (dot products), so the
/// kernel is already cache-friendly; large problems are row-partitioned
/// across threads with per-output accumulation order unchanged.
///
/// # Errors
///
/// Returns shape errors as in [`matmul`].
pub fn matmul_nt<T: Scalar>(a: &Tensor<T>, b: &Tensor<T>) -> Result<Tensor<T>> {
    let (m, ka) = (a.nrows()?, a.ncols()?);
    let (n, kb) = (b.nrows()?, b.ncols()?);
    if ka != kb {
        return Err(TensorError::MatmulDimMismatch {
            left: (m, ka),
            right: (kb, n),
        });
    }
    let mut out = Tensor::zeros(vec![m, n]);
    let ad = a.data();
    let bd = b.data();
    let cd = out.data_mut();
    let threads = parallel::threads_for(m * ka * n, m);
    parallel::for_each_row_slab(cd, m, n, threads, |row0, c_slab| {
        for (r, crow) in c_slab.chunks_mut(n).enumerate() {
            let arow = &ad[(row0 + r) * ka..(row0 + r + 1) * ka];
            for (j, cv) in crow.iter_mut().enumerate() {
                let brow = &bd[j * kb..(j + 1) * kb];
                let mut acc = T::ZERO;
                for (&x, &y) in arow.iter().zip(brow) {
                    acc += x * y;
                }
                *cv = acc;
            }
        }
    });
    Ok(out)
}

/// Gram matrix `G = A · Aᵀ` of a row-major `m × n` matrix, without
/// materializing `Aᵀ`.
///
/// Column-blocked so each block of every row is read once from memory and
/// reused from cache across all `m²/2` pairwise dot products — the naive
/// per-pair dot would stream `A` from memory `m` times. Only the lower
/// triangle is computed; the upper is mirrored, so `G` is exactly
/// symmetric.
///
/// Large problems split the output rows into slabs on the persistent pool,
/// oversubscribed 4× relative to the thread count: row `i` of the lower
/// triangle costs `i + 1` dot products, so equal-row slabs would be badly
/// imbalanced — small slabs let the pool's claim counter rebalance the
/// triangle dynamically. Every element `G[i][j]` still accumulates its
/// column blocks in ascending-`k` order inside exactly one slab, hence
/// bit-deterministic at any `TIE_THREADS` setting (and identical to the
/// serial path).
fn gram_nt<T: Scalar>(a: &Tensor<T>) -> Result<Tensor<T>> {
    let (m, n) = (a.nrows()?, a.ncols()?);
    let mut g = Tensor::zeros(vec![m, m]);
    let gd = g.data_mut();
    tile::gram_into(a.data(), gd, m, n);
    for i in 0..m {
        for j in i + 1..m {
            gd[i * m + j] = gd[j * m + i];
        }
    }
    Ok(g)
}

/// Result of a (thin) QR factorization `A = Q · R`.
#[derive(Debug, Clone)]
pub struct Qr<T: Scalar> {
    /// `m × k` matrix with orthonormal columns (`k = min(m, n)`).
    pub q: Tensor<T>,
    /// `k × n` upper-triangular factor.
    pub r: Tensor<T>,
}

/// Applies the Householder reflector `H = I - 2 v vᵀ / (vᵀv)` to the
/// column block `[c0, cn)` of the row-major `rows × cn` matrix `md`,
/// acting on rows `j..j+v.len()`. `dots` is caller-provided scratch of
/// length ≥ `cn`.
///
/// Two row-major passes: first `dots[c] = Σ_t v[t]·M[j+t, c]`, then
/// `M[j+t, c] -= (2·dots[c]/vᵀv)·v[t]`. Every memory walk is along
/// contiguous rows (the original per-column walk strode by `cn`, which
/// thrashes the cache on tall-skinny panels — the randomized-SVD hot
/// path). Per output element the accumulation order over `t` is
/// unchanged, so results are bit-identical to the per-column form.
///
/// Large panels parallelize on the pool with the partition chosen per
/// pass to keep determinism free: pass 1 splits the **columns** (each
/// `dots[c]` sums over `t` in ascending order within one slab — exactly
/// the serial order), pass 2 splits the **rows** (each output element is
/// written once). Results are bit-identical at any thread count.
fn apply_reflector<T: Scalar>(
    md: &mut [T],
    cn: usize,
    j: usize,
    c0: usize,
    v: &[T],
    vnorm2: T,
    dots: &mut [T],
) {
    let width = cn - c0;
    let dots = &mut dots[..width];
    dots.fill(T::ZERO);
    let work = v.len().saturating_mul(width);
    let md_ro: &[T] = md;
    parallel::for_each_row_slab(
        dots,
        width,
        1,
        parallel::threads_for(work, width),
        |col0, dslab| {
            for (t, &vi) in v.iter().enumerate() {
                let base = (j + t) * cn + c0 + col0;
                let row = &md_ro[base..base + dslab.len()];
                for (d, &x) in dslab.iter_mut().zip(row) {
                    *d += vi * x;
                }
            }
        },
    );
    for d in dots.iter_mut() {
        *d = (T::ONE + T::ONE) * *d / vnorm2;
    }
    let panel = &mut md[j * cn..(j + v.len()) * cn];
    parallel::for_each_row_slab(
        panel,
        v.len(),
        cn,
        parallel::threads_for(work, v.len()),
        |t0, pslab| {
            for (r, row) in pslab.chunks_mut(cn).enumerate() {
                let vi = v[t0 + r];
                for (x, &d) in row[c0..].iter_mut().zip(dots.iter()) {
                    *x -= d * vi;
                }
            }
        },
    );
}

/// Thin Householder QR factorization.
///
/// Reflector applications run as contiguous row-major passes (see
/// [`apply_reflector`]), and `Q` is accumulated directly into the thin
/// `m × k` matrix touching only columns `j..k` when applying reflector
/// `j` — columns `c < j` of the partially formed `Q` are still unit
/// vectors supported above row `j`, so the skipped work is exactly zero.
/// Tall-skinny panels (the randomized-SVD hot path) therefore cost
/// `O(m·n·k)` with streaming access instead of strided column walks.
///
/// # Errors
///
/// Returns [`TensorError::NotAMatrix`] for non-2-D input.
pub fn qr<T: Scalar>(a: &Tensor<T>) -> Result<Qr<T>> {
    let (m, n) = (a.nrows()?, a.ncols()?);
    let k = m.min(n);
    let mut r = a.clone();
    // Accumulate Householder reflectors; apply them to a thin identity to
    // get Q.
    let mut vs: Vec<Vec<T>> = Vec::with_capacity(k);
    let mut dots = vec![T::ZERO; n];
    let rd = r.data_mut();
    for j in 0..k {
        // Build reflector for column j below the diagonal.
        let mut norm2 = T::ZERO;
        for i in j..m {
            let v = rd[i * n + j];
            norm2 += v * v;
        }
        let norm = norm2.sqrt();
        let x0 = rd[j * n + j];
        if norm == T::ZERO {
            vs.push(vec![T::ZERO; m - j]);
            continue;
        }
        let alpha = if x0 >= T::ZERO { -norm } else { norm };
        let mut v: Vec<T> = (j..m).map(|i| rd[i * n + j]).collect();
        v[0] -= alpha;
        let vnorm2: T = v.iter().map(|&x| x * x).sum();
        if vnorm2 > T::ZERO {
            // Apply H = I - 2 v vᵀ / (vᵀv) to R[j.., j..].
            apply_reflector(rd, n, j, j, &v, vnorm2, &mut dots);
        }
        vs.push(v);
    }
    // Q = H_0 H_1 … H_{k-1} · I_{m×k}, applied in reverse. When H_j is
    // applied, columns c < j are still e_c (supported at row c < j), so the
    // update is restricted to columns j..k.
    let mut q = Tensor::<T>::zeros(vec![m, k]);
    let qd = q.data_mut();
    for j in 0..k {
        qd[j * k + j] = T::ONE;
    }
    for j in (0..k).rev() {
        let v = &vs[j];
        let vnorm2: T = v.iter().map(|&x| x * x).sum();
        if vnorm2 == T::ZERO {
            continue;
        }
        apply_reflector(qd, k, j, j, v, vnorm2, &mut dots);
    }
    // Truncate R to k×n.
    let r_thin = r.rows(0, k).unwrap_or(r);
    Ok(Qr { q, r: r_thin })
}

/// Result of a singular value decomposition `A = U · diag(S) · Vᵀ`.
#[derive(Debug, Clone)]
pub struct Svd<T: Scalar> {
    /// `m × k` left singular vectors (orthonormal columns).
    pub u: Tensor<T>,
    /// `k` singular values, descending.
    pub s: Vec<T>,
    /// `k × n` right singular vectors, transposed.
    pub vt: Tensor<T>,
}

impl<T: Scalar> Svd<T> {
    /// Reconstructs `U · diag(S) · Vᵀ`.
    ///
    /// # Errors
    ///
    /// Propagates matmul shape errors (cannot occur for a well-formed SVD).
    pub fn reconstruct(&self) -> Result<Tensor<T>> {
        let mut us = self.u.clone();
        let k = self.s.len();
        let m = us.nrows()?;
        for i in 0..m {
            for j in 0..k {
                let off = i * k + j;
                let cur = us.data()[off];
                us.data_mut()[off] = cur * self.s[j];
            }
        }
        matmul(&us, &self.vt)
    }

    /// Keeps only the leading `rank` triplets.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if `rank` is zero or exceeds
    /// the stored rank.
    pub fn truncated(&self, rank: usize) -> Result<Svd<T>> {
        if rank == 0 || rank > self.s.len() {
            return Err(TensorError::InvalidArgument {
                message: format!("rank {rank} out of 1..={}", self.s.len()),
            });
        }
        Ok(Svd {
            u: self.u.cols(0, rank)?,
            s: self.s[..rank].to_vec(),
            vt: self.vt.rows(0, rank)?,
        })
    }
}

const JACOBI_MAX_SWEEPS: usize = 60;

/// One-sided Jacobi SVD.
///
/// Orthogonalizes the columns of (a copy of) `A` with Givens rotations; the
/// accumulated rotations form `V`, the column norms the singular values.
/// Chosen over bidiagonalization for robustness and simplicity — TT-SVD
/// calls this on unfolding matrices whose smaller dimension is at most a few
/// hundred, well within Jacobi's comfortable range.
///
/// For `m < n` the decomposition is computed on `Aᵀ` and swapped back, so
/// the rotation count is always governed by the smaller dimension.
///
/// # Errors
///
/// Returns [`TensorError::NoConvergence`] if the off-diagonal mass does not
/// fall below tolerance within 60 sweeps (pathological inputs only), or
/// shape errors for non-2-D input.
pub fn svd<T: Scalar>(a: &Tensor<T>) -> Result<Svd<T>> {
    let (m, n) = (a.nrows()?, a.ncols()?);
    if m < n {
        // A = U S Vᵀ  ⇔  Aᵀ = V S Uᵀ
        let at = a.transposed()?;
        let svd_t = svd(&at)?;
        let u = svd_t.vt.transposed()?;
        let vt = svd_t.u.transposed()?;
        return Ok(Svd { u, s: svd_t.s, vt });
    }
    let k = n;
    let mut w = a.clone(); // m × n, columns get orthogonalized
    let mut v = Tensor::<T>::eye(n);
    let eps = T::EPSILON * T::from_f64(8.0);
    // Columns whose squared norm is below this are numerical zeros (rank
    // deficiency); rotating against them only churns noise and prevents
    // convergence, so they are treated as already orthogonal.
    let norm = a.frobenius_norm();
    let tiny = T::from_f64((norm * T::EPSILON.to_f64()).powi(2).max(f64::MIN_POSITIVE));
    let mut converged = false;
    for _sweep in 0..JACOBI_MAX_SWEEPS {
        let mut off = T::ZERO;
        for p in 0..n {
            for q in (p + 1)..n {
                // Compute the 2x2 Gram entries for columns p, q.
                let (mut app, mut aqq, mut apq) = (T::ZERO, T::ZERO, T::ZERO);
                for i in 0..m {
                    let xp = w.data()[i * n + p];
                    let xq = w.data()[i * n + q];
                    app += xp * xp;
                    aqq += xq * xq;
                    apq += xp * xq;
                }
                if app <= tiny || aqq <= tiny || apq.abs() <= eps * (app * aqq).sqrt() {
                    continue;
                }
                off += apq.abs();
                // Jacobi rotation zeroing the (p,q) Gram entry.
                let tau = (aqq - app) / ((T::ONE + T::ONE) * apq);
                let t = {
                    let sign = if tau >= T::ZERO { T::ONE } else { -T::ONE };
                    sign / (tau.abs() + (T::ONE + tau * tau).sqrt())
                };
                let c = T::ONE / (T::ONE + t * t).sqrt();
                let s = c * t;
                for i in 0..m {
                    let xp = w.data()[i * n + p];
                    let xq = w.data()[i * n + q];
                    w.data_mut()[i * n + p] = c * xp - s * xq;
                    w.data_mut()[i * n + q] = s * xp + c * xq;
                }
                for i in 0..n {
                    let vp = v.data()[i * n + p];
                    let vq = v.data()[i * n + q];
                    v.data_mut()[i * n + p] = c * vp - s * vq;
                    v.data_mut()[i * n + q] = s * vp + c * vq;
                }
            }
        }
        if off == T::ZERO {
            converged = true;
            break;
        }
    }
    if !converged {
        // One more tolerance check: small residual off-diagonal mass is fine.
        let mut worst = 0.0f64;
        let tiny64 = tiny.to_f64();
        for p in 0..n {
            for q in (p + 1)..n {
                let (mut app, mut aqq, mut apq) = (0.0f64, 0.0f64, 0.0f64);
                for i in 0..m {
                    let xp = w.data()[i * n + p].to_f64();
                    let xq = w.data()[i * n + q].to_f64();
                    app += xp * xp;
                    aqq += xq * xq;
                    apq += xp * xq;
                }
                if app <= tiny64 || aqq <= tiny64 {
                    continue;
                }
                let denom = (app * aqq).sqrt().max(1e-300);
                worst = worst.max(apq.abs() / denom);
            }
        }
        if worst > 1e-6 {
            return Err(TensorError::NoConvergence {
                algorithm: "one-sided Jacobi SVD",
                iterations: JACOBI_MAX_SWEEPS,
            });
        }
    }
    // Column norms are the singular values; normalize columns to get U.
    let mut order: Vec<usize> = (0..k).collect();
    let mut sigmas: Vec<T> = Vec::with_capacity(k);
    for j in 0..k {
        let mut norm2 = T::ZERO;
        for i in 0..m {
            let x = w.data()[i * n + j];
            norm2 += x * x;
        }
        sigmas.push(norm2.sqrt());
    }
    order.sort_by(|&a, &b| {
        sigmas[b]
            .partial_cmp(&sigmas[a])
            .expect("finite singular values")
    });
    let mut u = Tensor::<T>::zeros(vec![m, k]);
    let mut vt = Tensor::<T>::zeros(vec![k, n]);
    let mut s = Vec::with_capacity(k);
    for (out_j, &j) in order.iter().enumerate() {
        let sigma = sigmas[j];
        s.push(sigma);
        if sigma > T::ZERO {
            for i in 0..m {
                u.data_mut()[i * k + out_j] = w.data()[i * n + j] / sigma;
            }
        } else if out_j < m {
            // Degenerate column: keep U well-formed with a unit vector.
            u.data_mut()[out_j * k + out_j] = T::ONE;
        }
        for i in 0..n {
            vt.data_mut()[out_j * n + i] = v.data()[i * n + j];
        }
    }
    Ok(Svd { u, s, vt })
}

/// Rank selection for a truncated SVD.
///
/// `max_rank` caps the rank; `frobenius_tol` (absolute) drops trailing
/// singular values whose squared sum stays below `frobenius_tol²` — the
/// standard TT-SVD delta-truncation rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Truncation {
    /// Hard cap on the retained rank (`None` = no cap).
    pub max_rank: Option<usize>,
    /// Absolute Frobenius-norm budget for the discarded tail (`0.0` = exact).
    pub frobenius_tol: f64,
}

impl Truncation {
    /// Truncation that keeps at most `rank` singular triplets.
    pub fn rank(rank: usize) -> Self {
        Truncation {
            max_rank: Some(rank),
            frobenius_tol: 0.0,
        }
    }

    /// Truncation by absolute Frobenius tolerance only.
    pub fn tolerance(tol: f64) -> Self {
        Truncation {
            max_rank: None,
            frobenius_tol: tol,
        }
    }

    /// Exact decomposition (keep everything above numerical noise).
    pub fn none() -> Self {
        Truncation {
            max_rank: None,
            frobenius_tol: 0.0,
        }
    }

    /// Number of singular values from `s` (descending) that survive.
    ///
    /// Always keeps at least one.
    pub fn select<T: Scalar>(&self, s: &[T]) -> usize {
        let mut keep = s.len();
        if self.frobenius_tol > 0.0 {
            let budget = self.frobenius_tol * self.frobenius_tol;
            let mut tail = 0.0f64;
            // Walk from the smallest singular value, dropping while the
            // accumulated squared tail stays within budget.
            while keep > 1 {
                let sv = s[keep - 1].to_f64();
                if tail + sv * sv > budget {
                    break;
                }
                tail += sv * sv;
                keep -= 1;
            }
        } else {
            // Drop exact numerical zeros.
            while keep > 1 && s[keep - 1].to_f64() == 0.0 {
                keep -= 1;
            }
        }
        if let Some(cap) = self.max_rank {
            keep = keep.min(cap.max(1));
        }
        keep.max(1)
    }
}

/// Truncated SVD: full Jacobi SVD followed by [`Truncation`] selection.
///
/// Equivalent to [`truncated_svd_with`] pinned to [`SvdMethod::Jacobi`];
/// callers that want the automatic Jacobi/randomized dispatch (large
/// rank-capped unfoldings go randomized) should use [`truncated_svd_with`]
/// with [`SvdMethod::default`].
///
/// # Errors
///
/// Propagates [`svd`] errors.
pub fn truncated_svd<T: Scalar>(a: &Tensor<T>, trunc: Truncation) -> Result<Svd<T>> {
    let full = svd(a)?;
    let keep = trunc.select(&full.s);
    full.truncated(keep)
}

/// Seed used by [`SvdMethod::default`] / [`RsvdParams::default`] so that
/// decompositions are reproducible without every caller threading a seed.
pub const DEFAULT_SVD_SEED: u64 = 0x5EED_71E0;

/// Default Gaussian-sketch oversampling (Halko et al. recommend 5–10).
const RSVD_DEFAULT_OVERSAMPLE: usize = 8;
/// Default subspace (power) iterations; 2 is enough for the slowly decaying
/// spectra of weight-matrix unfoldings.
const RSVD_DEFAULT_POWER_ITERS: usize = 2;
/// Below this element count [`SvdMethod::Auto`] always picks Jacobi — the
/// sketch setup would cost more than the exact decomposition.
const RSVD_MIN_ELEMS: usize = 1 << 14;
/// [`SvdMethod::Auto`] routes uncapped problems to the exact-sketch
/// randomized path only when the aspect ratio is at least this extreme
/// (the Jacobi rotations on such thin matrices stride over enormous rows).
const RSVD_THIN_ASPECT: usize = 8;
/// ... and the matrix is at least this large ...
const RSVD_THIN_MIN_ELEMS: usize = 1 << 20;
/// ... and the short side is at most this long — the Gram route's Jacobi
/// finish is `O(k³)` per sweep, which stops being cheap past a few
/// hundred.
const RSVD_GRAM_MAX_SIDE: usize = 256;

/// Tuning knobs for [`randomized_svd`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RsvdParams {
    /// Seed for the Gaussian test matrix. Same seed ⇒ bit-identical
    /// factors at any thread count (see the determinism note on
    /// [`randomized_svd`]).
    pub seed: u64,
    /// Extra sketch columns beyond the target rank.
    pub oversample: usize,
    /// Subspace-iteration count `q` (each adds two large GEMMs and one
    /// thin QR, and sharpens the basis for slowly decaying spectra).
    pub power_iters: usize,
}

impl Default for RsvdParams {
    fn default() -> Self {
        RsvdParams {
            seed: DEFAULT_SVD_SEED,
            oversample: RSVD_DEFAULT_OVERSAMPLE,
            power_iters: RSVD_DEFAULT_POWER_ITERS,
        }
    }
}

impl RsvdParams {
    /// Default parameters with an explicit `seed`.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        RsvdParams {
            seed,
            ..RsvdParams::default()
        }
    }
}

/// Algorithm selector for [`truncated_svd_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SvdMethod {
    /// Pick per problem: Jacobi for small or near-full-rank matrices,
    /// [`randomized_svd`] (with this seed and default oversampling/power
    /// iterations) for large rank-capped ones and for extremely thin
    /// uncapped ones (exact Gram regime). The exact rule is documented
    /// on [`truncated_svd_with`].
    Auto {
        /// Seed handed to the randomized path when it is chosen.
        seed: u64,
    },
    /// Always the exact one-sided Jacobi [`svd`] (legacy [`truncated_svd`]
    /// behaviour).
    Jacobi,
    /// Always [`randomized_svd`] with these parameters.
    Randomized(RsvdParams),
}

impl Default for SvdMethod {
    fn default() -> Self {
        SvdMethod::Auto {
            seed: DEFAULT_SVD_SEED,
        }
    }
}

impl SvdMethod {
    /// [`SvdMethod::Auto`] with an explicit seed for the randomized path.
    #[must_use]
    pub fn auto_seeded(seed: u64) -> Self {
        SvdMethod::Auto { seed }
    }
}

/// Exact truncated SVD of an extreme-aspect matrix via its small Gram
/// matrix.
///
/// With `k = min(m, n)`, forms the `k × k` Gram matrix (`AᵀA` for tall,
/// `A·Aᵀ` for wide) with one streaming pass over `A`, Jacobi-diagonalizes
/// it (`G = W Σ² Wᵀ`), and recovers the long singular factor with a single
/// blocked GEMM: `U = A W Σ⁻¹` (tall) or `Vᵀ = Σ⁻¹ Wᵀ A` (wide). Total
/// traffic is ~2 passes over `A` and the only `O(k³)` work is on the tiny
/// Gram matrix — no giant QR, no sketch. Fully deterministic (no RNG).
///
/// The price is the usual squared condition number of the normal-equations
/// route: singular values below `‖A‖₂ · √ε` lose all relative accuracy.
/// That is exactly the regime [`truncated_svd_with`] routes here — huge
/// thin unfoldings truncated far above the noise floor — and directions
/// with `σ ≈ 0` are guarded by leaving their (zero) long-factor columns
/// unscaled.
fn gram_svd<T: Scalar>(a: &Tensor<T>, trunc: Truncation) -> Result<Svd<T>> {
    let (m, n) = (a.nrows()?, a.ncols()?);
    let tall = m >= n;
    // Tall: G = AᵀA = V Σ² Vᵀ. Wide: G = A·Aᵀ = U Σ² Uᵀ. matmul_tn(a, a)
    // streams row-major A once for the tall case; gram_nt for the wide.
    let g = if tall { matmul_tn(a, a)? } else { gram_nt(a)? };
    let eig = svd(&g)?;
    // Eigenvalues of the PSD Gram matrix are squared singular values;
    // rounding can push tiny ones negative, so clamp before the sqrt.
    let s: Vec<T> = eig.s.iter().map(|&e| e.max(T::ZERO).sqrt()).collect();
    let keep = trunc.select(&s);
    let w = eig.u.cols(0, keep)?; // k × keep eigenbasis of G
    let s = s[..keep].to_vec();
    if tall {
        // U = A W Σ⁻¹ (m × keep), scaling columns.
        let mut u = matmul(a, &w)?;
        let ud = u.data_mut();
        for row in ud.chunks_mut(keep) {
            for (x, &sj) in row.iter_mut().zip(&s) {
                if sj > T::ZERO {
                    *x /= sj;
                }
            }
        }
        Ok(Svd {
            u,
            s,
            vt: w.transposed()?,
        })
    } else {
        // Vᵀ = Σ⁻¹ Wᵀ A (keep × n), scaling rows.
        let mut vt = matmul_tn(&w, a)?;
        let vd = vt.data_mut();
        for (row, &sj) in vd.chunks_mut(n).zip(&s) {
            if sj > T::ZERO {
                for x in row.iter_mut() {
                    *x /= sj;
                }
            }
        }
        Ok(Svd { u: w, s, vt })
    }
}

/// Randomized truncated SVD (Halko–Martinsson–Tropp range finder with
/// subspace iteration and a small-core Jacobi finish).
///
/// Sketches the range with a seeded Gaussian test matrix of
/// `ℓ = min(target_rank + oversample, min(m,n))` columns, optionally
/// sharpens it with `power_iters` QR-reorthogonalized subspace iterations,
/// projects `A` into the ℓ-dimensional subspace, and runs the exact
/// [`svd`] on the small projected core. All large products go through the
/// blocked, multithreaded [`matmul`]/[`matmul_tn`], so the routine
/// inherits the AVX dispatch and `TIE_THREADS` scaling of the kernel
/// layer; wide inputs are handled by sketching `Aᵀ` implicitly (via
/// [`matmul_tn`]) without ever materializing the transpose.
///
/// When `ℓ = min(m,n)` a sketch would span the full row/column space, so
/// the routine skips it and takes the deterministic Gram route instead
/// (diagonalize the small `k × k` Gram matrix, recover the long factor
/// with one GEMM) — exact up to roundoff and seed-independent.
/// [`truncated_svd_with`] uses this regime for huge thin unfoldings where
/// Jacobi's strided rotations are the bottleneck.
///
/// # Determinism
///
/// The only randomness is the ChaCha8-generated test matrix seeded from
/// `params.seed`. Every threaded kernel used here partitions independent
/// outputs only (see [`matmul`]'s bit-consistency contract), and the
/// QR/Jacobi finish is serial — so the same seed yields bit-identical
/// factors at any `TIE_THREADS` setting.
///
/// # Errors
///
/// Propagates shape errors and [`svd`] convergence failures on the
/// projected core.
pub fn randomized_svd<T: Scalar>(
    a: &Tensor<T>,
    trunc: Truncation,
    params: RsvdParams,
) -> Result<Svd<T>> {
    let (m, n) = (a.nrows()?, a.ncols()?);
    let k = m.min(n);
    let target = trunc.max_rank.unwrap_or(k).max(1).min(k);
    let l = (target + params.oversample).min(k).max(1);
    // ℓ = min(m,n): the sketch would span the whole smaller space, so skip
    // it entirely and take the deterministic Gram route — exact up to
    // roundoff, one streaming pass instead of a giant sketch + QR.
    if l == k {
        return gram_svd(a, trunc);
    }
    let iters = params.power_iters;
    let mut rng = ChaCha8Rng::seed_from_u64(params.seed);

    if m >= n {
        // Tall: find an orthonormal basis Q for the column space of A.
        let omega: Tensor<T> = crate::init::normal(&mut rng, vec![n, l], 1.0);
        let mut y = matmul(a, &omega)?; // m × ℓ
        for _ in 0..iters {
            let q = qr(&y)?.q;
            let z = matmul_tn(a, &q)?; // n × ℓ, Aᵀ·Q without transposing A
            y = matmul(a, &z)?;
        }
        let q = qr(&y)?.q; // m × ℓ
        let b = matmul_tn(&q, a)?; // ℓ × n projected core
        let small = svd(&b)?;
        let keep = trunc.select(&small.s);
        Ok(Svd {
            u: matmul(&q, &small.u.cols(0, keep)?)?,
            s: small.s[..keep].to_vec(),
            vt: small.vt.rows(0, keep)?,
        })
    } else {
        // Wide: run the tall scheme on Aᵀ implicitly. Q spans the row
        // space of A; the core B = A·Q is m × ℓ (ℓ ≤ m), small for Jacobi.
        let omega: Tensor<T> = crate::init::normal(&mut rng, vec![m, l], 1.0);
        let mut y = matmul_tn(a, &omega)?; // n × ℓ
        for _ in 0..iters {
            let q = qr(&y)?.q;
            let z = matmul(a, &q)?; // m × ℓ
            y = matmul_tn(a, &z)?;
        }
        let q = qr(&y)?.q; // n × ℓ
        let b = matmul(a, &q)?; // m × ℓ
        let small = svd(&b)?;
        let keep = trunc.select(&small.s);
        // A ≈ B Qᵀ = U_B S (Q V_B)ᵀ.
        let v_small = small.vt.transposed()?.cols(0, keep)?;
        Ok(Svd {
            u: small.u.cols(0, keep)?,
            s: small.s[..keep].to_vec(),
            vt: matmul(&q, &v_small)?.transposed()?,
        })
    }
}

/// Truncated SVD with explicit algorithm selection.
///
/// [`SvdMethod::Auto`] applies this rule (in order):
///
/// 1. fewer than 2¹⁴ elements → Jacobi (exact, and faster at this size);
/// 2. a truncation-friendly problem — `max_rank = r` with
///    `2·(r + oversample) ≤ min(m,n)` (the paper's rank-capped `r ≤ 16`
///    compression regime), or uncapped but extremely thin
///    (`max(m,n) ≥ 8·min(m,n)` and ≥ 2²⁰ elements) — goes to a fast path
///    chosen by the short side `k = min(m,n)`:
///    - `k ≤ 256` → the deterministic exact Gram route (diagonalize the
///      `k × k` Gram matrix, one streaming GEMM to recover the long
///      factor) — replaces Jacobi's strided giant-row rotations and is
///      seed-independent;
///    - `k > 256` (rank-capped only) → the seeded [`randomized_svd`]
///      sketch, whose cost scales with the target rank rather than `k`;
/// 3. otherwise → Jacobi.
///
/// # Errors
///
/// Propagates [`svd`] / [`randomized_svd`] errors.
pub fn truncated_svd_with<T: Scalar>(
    a: &Tensor<T>,
    trunc: Truncation,
    method: SvdMethod,
) -> Result<Svd<T>> {
    match method {
        SvdMethod::Jacobi => truncated_svd(a, trunc),
        SvdMethod::Randomized(params) => randomized_svd(a, trunc, params),
        SvdMethod::Auto { seed } => {
            let (m, n) = (a.nrows()?, a.ncols()?);
            let (k, big, elems) = (m.min(n), m.max(n), m * n);
            let capped_small = trunc
                .max_rank
                .is_some_and(|r| 2 * (r + RSVD_DEFAULT_OVERSAMPLE) <= k);
            let thin = big >= RSVD_THIN_ASPECT * k && elems >= RSVD_THIN_MIN_ELEMS;
            if elems < RSVD_MIN_ELEMS || !(capped_small || thin) {
                truncated_svd(a, trunc)
            } else if k <= RSVD_GRAM_MAX_SIDE {
                gram_svd(a, trunc)
            } else if capped_small {
                randomized_svd(a, trunc, RsvdParams::seeded(seed))
            } else {
                // Thin but with a short side too long for the Gram route's
                // O(k³) Jacobi finish, and no rank cap to sketch against.
                truncated_svd(a, trunc)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn assert_orthonormal_cols(m: &Tensor<f64>, tol: f64) {
        let g = matmul_tn(m, m).unwrap();
        let k = g.nrows().unwrap();
        for i in 0..k {
            for j in 0..k {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (g.get(&[i, j]).unwrap() - want).abs() < tol,
                    "gram[{i},{j}] = {}",
                    g.get(&[i, j]).unwrap()
                );
            }
        }
    }

    #[test]
    fn matmul_small_known_result() {
        let a = Tensor::<f64>::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let b = Tensor::<f64>::from_vec(vec![3, 2], vec![7., 8., 9., 10., 11., 12.]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_rejects_mismatched_inner_dims() {
        let a = Tensor::<f64>::zeros(vec![2, 3]);
        let b = Tensor::<f64>::zeros(vec![2, 3]);
        assert!(matches!(
            matmul(&a, &b),
            Err(TensorError::MatmulDimMismatch { .. })
        ));
    }

    #[test]
    fn matvec_matches_matmul() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let a: Tensor<f64> = init::uniform(&mut rng, vec![4, 5], 1.0);
        let x = init::uniform(&mut rng, vec![5], 1.0);
        let xm = x.reshaped(vec![5, 1]).unwrap();
        let y = matvec(&a, &x).unwrap();
        let ym = matmul(&a, &xm).unwrap();
        assert!(y.reshaped(vec![4, 1]).unwrap().approx_eq(&ym, 1e-12));
    }

    #[test]
    fn matmul_tn_and_nt_match_explicit_transpose() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let a: Tensor<f64> = init::uniform(&mut rng, vec![4, 3], 1.0);
        let b = init::uniform(&mut rng, vec![4, 5], 1.0);
        let c1 = matmul_tn(&a, &b).unwrap();
        let c2 = matmul(&a.transposed().unwrap(), &b).unwrap();
        assert!(c1.approx_eq(&c2, 1e-12));

        let d: Tensor<f64> = init::uniform(&mut rng, vec![5, 4], 1.0);
        let e1 = matmul_nt(&a.transposed().unwrap(), &d).unwrap();
        let e2 = matmul(&a.transposed().unwrap(), &d.transposed().unwrap()).unwrap();
        assert!(e1.approx_eq(&e2, 1e-12));
    }

    #[test]
    fn qr_reconstructs_and_q_is_orthonormal() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for (m, n) in [(5, 3), (3, 5), (4, 4), (1, 3), (6, 1)] {
            let a = init::uniform(&mut rng, vec![m, n], 1.0);
            let f = qr(&a).unwrap();
            let back = matmul(&f.q, &f.r).unwrap();
            assert!(
                back.approx_eq(&a, 1e-10),
                "QR reconstruct failed for {m}x{n}"
            );
            assert_orthonormal_cols(&f.q, 1e-10);
            // R upper triangular
            let k = f.r.nrows().unwrap();
            for i in 0..k {
                for j in 0..i.min(f.r.ncols().unwrap()) {
                    assert!(f.r.get(&[i, j]).unwrap().abs() < 1e-10);
                }
            }
        }
    }

    #[test]
    fn svd_reconstructs_tall_wide_square() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for (m, n) in [(6, 3), (3, 6), (5, 5), (1, 4), (4, 1)] {
            let a = init::uniform(&mut rng, vec![m, n], 1.0);
            let f = svd(&a).unwrap();
            let back = f.reconstruct().unwrap();
            assert!(
                back.approx_eq(&a, 1e-9),
                "SVD reconstruct failed for {m}x{n}: err {}",
                back.relative_error(&a).unwrap()
            );
            assert_orthonormal_cols(&f.u, 1e-9);
            assert_orthonormal_cols(&f.vt.transposed().unwrap(), 1e-9);
            for w in f.s.windows(2) {
                assert!(w[0] >= w[1], "singular values not sorted: {:?}", f.s);
            }
        }
    }

    #[test]
    fn svd_of_rank_deficient_matrix() {
        // rank-1 matrix: outer product
        let u = Tensor::<f64>::from_vec(vec![4, 1], vec![1., 2., 3., 4.]).unwrap();
        let v = Tensor::<f64>::from_vec(vec![1, 3], vec![1., 0., -1.]).unwrap();
        let a = matmul(&u, &v).unwrap();
        let f = svd(&a).unwrap();
        assert!(f.s[0] > 1.0);
        for &sv in &f.s[1..] {
            assert!(
                sv < 1e-10,
                "expected tiny trailing singular values: {:?}",
                f.s
            );
        }
        assert!(f.reconstruct().unwrap().approx_eq(&a, 1e-10));
    }

    #[test]
    fn svd_singular_values_match_known_diagonal() {
        let a =
            Tensor::<f64>::from_vec(vec![3, 3], vec![3., 0., 0., 0., 1., 0., 0., 0., 2.]).unwrap();
        let f = svd(&a).unwrap();
        assert!((f.s[0] - 3.0).abs() < 1e-12);
        assert!((f.s[1] - 2.0).abs() < 1e-12);
        assert!((f.s[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn truncation_rank_and_tolerance() {
        let s = [4.0f64, 2.0, 1.0, 0.5];
        assert_eq!(Truncation::rank(2).select(&s), 2);
        assert_eq!(Truncation::none().select(&s), 4);
        // tol 1.2: can drop 0.5 (0.25) and 1.0 (1.0+0.25=1.25 > 1.44? no,
        // 1.25 <= 1.44 so both dropped); next would add 4.0 -> stop at 2.
        assert_eq!(Truncation::tolerance(1.2).select(&s), 2);
        // tol 0.6: 0.25 <= 0.36, adding 1.0 exceeds -> keep 3.
        assert_eq!(Truncation::tolerance(0.6).select(&s), 3);
        // Always keeps at least 1.
        assert_eq!(Truncation::tolerance(1e9).select(&s), 1);
        assert_eq!(Truncation::rank(0).select(&s), 1);
    }

    #[test]
    fn truncated_svd_error_is_bounded_by_dropped_mass() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let a: Tensor<f64> = init::uniform(&mut rng, vec![8, 6], 1.0);
        let full = svd(&a).unwrap();
        let t = truncated_svd(&a, Truncation::rank(3)).unwrap();
        let back = t.reconstruct().unwrap();
        let err = back.sub(&a).unwrap().frobenius_norm();
        let bound: f64 = full.s[3..].iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(
            err <= bound * (1.0 + 1e-8) + 1e-12,
            "truncation error {err} exceeds bound {bound}"
        );
    }

    /// Low-rank matrix plus small noise: `rank`-dominant spectrum so
    /// randomized truncation has a meaningful tail to drop.
    fn low_rank_plus_noise(
        rng: &mut ChaCha8Rng,
        m: usize,
        n: usize,
        rank: usize,
        noise: f64,
    ) -> Tensor<f64> {
        let u: Tensor<f64> = init::uniform(rng, vec![m, rank], 1.0);
        let v: Tensor<f64> = init::uniform(rng, vec![rank, n], 1.0);
        let mut a = matmul(&u, &v).unwrap();
        let e: Tensor<f64> = init::uniform(rng, vec![m, n], noise);
        a = a.add(&e).unwrap();
        a
    }

    #[test]
    fn randomized_svd_exact_gram_regime_matches_matrix() {
        // ℓ = min(m,n): the Gram route replaces the sketch, and the result
        // is exact up to roundoff even for generic (full-rank) input.
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        for (m, n) in [(40, 12), (12, 40), (17, 17)] {
            let a: Tensor<f64> = init::uniform(&mut rng, vec![m, n], 1.0);
            let f = randomized_svd(&a, Truncation::none(), RsvdParams::seeded(1)).unwrap();
            let back = f.reconstruct().unwrap();
            assert!(
                back.approx_eq(&a, 1e-9),
                "exact-regime rSVD failed for {m}x{n}: err {}",
                back.relative_error(&a).unwrap()
            );
            assert_orthonormal_cols(&f.u, 1e-9);
            assert_orthonormal_cols(&f.vt.transposed().unwrap(), 1e-9);
        }
    }

    #[test]
    fn randomized_svd_rank_capped_within_dropped_mass_bound() {
        let mut rng = ChaCha8Rng::seed_from_u64(22);
        for (m, n) in [(60, 30), (30, 60)] {
            let a = low_rank_plus_noise(&mut rng, m, n, 5, 1e-3);
            let exact = svd(&a).unwrap();
            let f = randomized_svd(&a, Truncation::rank(5), RsvdParams::seeded(2)).unwrap();
            assert_eq!(f.s.len(), 5);
            let err = f.reconstruct().unwrap().sub(&a).unwrap().frobenius_norm();
            let bound: f64 = exact.s[5..].iter().map(|v| v * v).sum::<f64>().sqrt();
            // On a sharply decaying spectrum the sketch captures the
            // dominant subspace almost perfectly; allow 10% slack.
            assert!(
                err <= bound * 1.1 + 1e-12,
                "rSVD error {err} vs optimal {bound} for {m}x{n}"
            );
        }
    }

    #[test]
    fn randomized_svd_same_seed_is_bit_identical_at_any_thread_count() {
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let a = low_rank_plus_noise(&mut rng, 96, 48, 6, 1e-2);
        let trunc = Truncation::rank(6);
        let params = RsvdParams::seeded(42);
        let prev = parallel::set_num_threads(1);
        let serial = randomized_svd(&a, trunc, params).unwrap();
        parallel::set_num_threads(4);
        let threaded = randomized_svd(&a, trunc, params).unwrap();
        parallel::set_num_threads(prev);
        assert_eq!(serial.u.data(), threaded.u.data());
        assert_eq!(serial.s, threaded.s);
        assert_eq!(serial.vt.data(), threaded.vt.data());
        // And a different seed actually changes the sketch (sanity check
        // that the seed is wired through).
        let other = randomized_svd(&a, trunc, RsvdParams::seeded(43)).unwrap();
        assert_ne!(serial.u.data(), other.u.data());
    }

    #[test]
    fn truncated_svd_with_jacobi_matches_legacy_bitwise() {
        let mut rng = ChaCha8Rng::seed_from_u64(24);
        let a: Tensor<f64> = init::uniform(&mut rng, vec![12, 9], 1.0);
        let trunc = Truncation::rank(4);
        let legacy = truncated_svd(&a, trunc).unwrap();
        let pinned = truncated_svd_with(&a, trunc, SvdMethod::Jacobi).unwrap();
        assert_eq!(legacy.u.data(), pinned.u.data());
        assert_eq!(legacy.s, pinned.s);
        assert_eq!(legacy.vt.data(), pinned.vt.data());
        // Auto on a sub-threshold matrix also takes the Jacobi path.
        let auto = truncated_svd_with(&a, trunc, SvdMethod::default()).unwrap();
        assert_eq!(legacy.u.data(), auto.u.data());
    }

    #[test]
    fn truncated_svd_with_auto_sketches_large_rank_capped() {
        // 272×320 with rank cap 8: the short side exceeds the Gram
        // threshold, so Auto must take the seeded sketch and still land
        // within the optimal-truncation bound (plus slack).
        let mut rng = ChaCha8Rng::seed_from_u64(25);
        let a = low_rank_plus_noise(&mut rng, 272, 320, 8, 1e-3);
        let auto = truncated_svd_with(&a, Truncation::rank(8), SvdMethod::default()).unwrap();
        let pinned = randomized_svd(
            &a,
            Truncation::rank(8),
            RsvdParams::seeded(DEFAULT_SVD_SEED),
        )
        .unwrap();
        // Auto must be exactly the seeded randomized path (proves dispatch).
        assert_eq!(auto.u.data(), pinned.u.data());
        let exact = svd(&a).unwrap();
        let err = auto
            .reconstruct()
            .unwrap()
            .sub(&a)
            .unwrap()
            .frobenius_norm();
        let bound: f64 = exact.s[8..].iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(err <= bound * 1.1 + 1e-12, "err {err} vs bound {bound}");
    }

    #[test]
    fn truncated_svd_with_auto_takes_gram_route_for_short_side() {
        // 128×2048 with rank cap 8: large, rank-capped, short side ≤ 256 —
        // Auto must take the exact Gram route, which a forced ℓ = min(m,n)
        // sketch (oversample ≥ k) also reaches; the two must agree bitwise
        // and match Jacobi's optimal truncation to roundoff.
        let mut rng = ChaCha8Rng::seed_from_u64(26);
        let a = low_rank_plus_noise(&mut rng, 128, 2048, 8, 1e-3);
        let trunc = Truncation::rank(8);
        let auto = truncated_svd_with(&a, trunc, SvdMethod::default()).unwrap();
        let gram = randomized_svd(
            &a,
            trunc,
            RsvdParams {
                seed: 7, // must be irrelevant: the Gram route is seed-free
                oversample: 128,
                power_iters: 0,
            },
        )
        .unwrap();
        assert_eq!(auto.u.data(), gram.u.data());
        assert_eq!(auto.vt.data(), gram.vt.data());
        let exact = truncated_svd(&a, trunc).unwrap();
        for (sg, sj) in auto.s.iter().zip(&exact.s) {
            assert!((sg - sj).abs() <= 1e-8 * exact.s[0], "{sg} vs {sj}");
        }
        let err = auto
            .reconstruct()
            .unwrap()
            .sub(&a)
            .unwrap()
            .frobenius_norm();
        let jerr = exact
            .reconstruct()
            .unwrap()
            .sub(&a)
            .unwrap()
            .frobenius_norm();
        assert!(err <= jerr * (1.0 + 1e-6), "gram {err} vs jacobi {jerr}");
    }

    #[test]
    fn svd_f32_also_works() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let a64: Tensor<f64> = init::uniform(&mut rng, vec![5, 4], 1.0);
        let a: Tensor<f32> = a64.cast();
        let f = svd(&a).unwrap();
        let back = f.reconstruct().unwrap();
        assert!(back.approx_eq(&a, 1e-4));
    }

    #[test]
    fn dest_map_rejects_non_bijections() {
        // Duplicate offset.
        assert!(DestMap::new(vec![0, 0], vec![0, 1]).is_err());
        // Out of range.
        assert!(DestMap::new(vec![0, 4], vec![0, 1]).is_err());
        // A genuine transpose of a 2x3 output into 3x2 storage.
        let t = DestMap::new(vec![0, 1], vec![0, 2, 4]).unwrap();
        assert_eq!(t.offset(1, 2), 5);
        assert_eq!(t.rows(), 2);
        assert_eq!(t.cols(), 3);
    }

    #[test]
    fn gemm_mapped_identity_is_bitwise_gemm_into() {
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        for (m, k, n_mat, bsz) in [(7, 5, 6, 1), (16, 24, 10, 3), (33, 9, 17, 4)] {
            let a: Tensor<f64> = init::uniform(&mut rng, vec![m, k], 1.0);
            let b: Tensor<f64> = init::uniform(&mut rng, vec![k, n_mat * bsz], 1.0);
            let mut plain = vec![0.0f64; m * n_mat * bsz];
            gemm_into(a.data(), b.data(), &mut plain, m, k, n_mat * bsz).unwrap();
            let map = DestMap::identity(m, n_mat);
            let mut mapped = vec![f64::NAN; m * n_mat * bsz];
            gemm_into_mapped(a.data(), b.data(), &mut mapped, m, k, n_mat, bsz, &map).unwrap();
            for (x, y) in mapped.iter().zip(&plain) {
                assert_eq!(x.to_bits(), y.to_bits(), "m={m} k={k} n={n_mat} bsz={bsz}");
            }
        }
    }

    #[test]
    fn gemm_mapped_transpose_matches_gemm_then_permute_at_any_pool_size() {
        let mut rng = ChaCha8Rng::seed_from_u64(32);
        let (m, k, n_mat) = (12, 20, 9);
        // Transposed destination: (i, q) -> q*m + i.
        let map = DestMap::new((0..m).collect(), (0..n_mat).map(|q| q * m).collect()).unwrap();
        for bsz in [1usize, 2, 5] {
            let a: Tensor<f64> = init::uniform(&mut rng, vec![m, k], 1.0);
            let b: Tensor<f64> = init::uniform(&mut rng, vec![k, n_mat * bsz], 1.0);
            let mut plain = vec![0.0f64; m * n_mat * bsz];
            gemm_into(a.data(), b.data(), &mut plain, m, k, n_mat * bsz).unwrap();
            let mut want = vec![0.0f64; m * n_mat * bsz];
            for i in 0..m {
                for q in 0..n_mat {
                    for cb in 0..bsz {
                        want[(q * m + i) * bsz + cb] = plain[i * n_mat * bsz + q * bsz + cb];
                    }
                }
            }
            let prev = parallel::set_num_threads(1);
            let mut serial = vec![f64::NAN; m * n_mat * bsz];
            gemm_into_mapped(a.data(), b.data(), &mut serial, m, k, n_mat, bsz, &map).unwrap();
            for threads in [2usize, 8] {
                parallel::set_num_threads(threads);
                let mut pooled = vec![f64::NAN; m * n_mat * bsz];
                gemm_into_mapped(a.data(), b.data(), &mut pooled, m, k, n_mat, bsz, &map).unwrap();
                for (x, y) in pooled.iter().zip(&serial) {
                    assert_eq!(x.to_bits(), y.to_bits(), "bsz={bsz} threads={threads}");
                }
            }
            parallel::set_num_threads(prev);
            for (x, y) in serial.iter().zip(&want) {
                assert_eq!(x.to_bits(), y.to_bits(), "bsz={bsz}");
            }
        }
    }

    #[test]
    fn gemm_mapped_rejects_mismatched_map_and_lengths() {
        let a = [0.0f64; 6];
        let b = [0.0f64; 6];
        let mut c = [0.0f64; 4];
        let map = DestMap::identity(2, 2);
        // k*n mismatch for b.
        assert!(gemm_into_mapped(&a, &b, &mut c, 2, 3, 2, 1, &map).is_ok());
        assert!(gemm_into_mapped(&a, &b, &mut c, 2, 3, 2, 2, &map).is_err());
        let map3 = DestMap::identity(3, 2);
        assert!(gemm_into_mapped(&a, &b, &mut c, 2, 3, 2, 1, &map3).is_err());
        assert!(gemm_into_mapped(&a, &b, &mut c, 2, 3, 2, 0, &map).is_err());
    }
}
