//! Matrix kernels: multiplication, Householder QR, one-sided Jacobi SVD.
//!
//! TT-SVD (in `tie-tt`) repeatedly computes truncated SVDs of unfolding
//! matrices; the compact inference scheme (in `tie-core`) is a chain of
//! matrix products. Both are served from here, with no external BLAS/LAPACK
//! dependency — everything is implemented from scratch per the reproduction
//! ground rules.

use crate::{Result, Scalar, Tensor, TensorError};

/// Dense matrix product `C = A · B`.
///
/// Uses an `i-k-j` loop order so the innermost loop streams rows of `B`
/// (row-major friendly); this is the workhorse of the whole workspace.
///
/// # Errors
///
/// Returns [`TensorError::NotAMatrix`] if an operand is not 2-D or
/// [`TensorError::MatmulDimMismatch`] if the inner dimensions differ.
///
/// # Example
///
/// ```
/// use tie_tensor::{Tensor, linalg::matmul};
/// # fn main() -> Result<(), tie_tensor::TensorError> {
/// let a = Tensor::<f64>::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.])?;
/// let b = Tensor::<f64>::from_vec(vec![3, 1], vec![1., 0., -1.])?;
/// let c = matmul(&a, &b)?;
/// assert_eq!(c.data(), &[-2.0, -2.0]);
/// # Ok(())
/// # }
/// ```
pub fn matmul<T: Scalar>(a: &Tensor<T>, b: &Tensor<T>) -> Result<Tensor<T>> {
    let (m, ka) = (a.nrows()?, a.ncols()?);
    let (kb, n) = (b.nrows()?, b.ncols()?);
    if ka != kb {
        return Err(TensorError::MatmulDimMismatch {
            left: (m, ka),
            right: (kb, n),
        });
    }
    let mut out = Tensor::zeros(vec![m, n]);
    {
        let ad = a.data();
        let bd = b.data();
        let cd = out.data_mut();
        for i in 0..m {
            let arow = &ad[i * ka..(i + 1) * ka];
            let crow = &mut cd[i * n..(i + 1) * n];
            for (k, &aik) in arow.iter().enumerate() {
                if aik == T::ZERO {
                    continue;
                }
                let brow = &bd[k * n..(k + 1) * n];
                for (c, &bkj) in crow.iter_mut().zip(brow) {
                    *c += aik * bkj;
                }
            }
        }
    }
    Ok(out)
}

/// Matrix-vector product `y = A · x` where `x` is a 1-D tensor.
///
/// # Errors
///
/// Returns [`TensorError::NotAMatrix`] / [`TensorError::MatmulDimMismatch`]
/// on shape problems.
pub fn matvec<T: Scalar>(a: &Tensor<T>, x: &Tensor<T>) -> Result<Tensor<T>> {
    let (m, k) = (a.nrows()?, a.ncols()?);
    if x.ndim() != 1 || x.num_elements() != k {
        return Err(TensorError::MatmulDimMismatch {
            left: (m, k),
            right: (x.num_elements(), 1),
        });
    }
    let mut out = Tensor::zeros(vec![m]);
    let ad = a.data();
    let xd = x.data();
    let yd = out.data_mut();
    for i in 0..m {
        let mut acc = T::ZERO;
        for (j, &xj) in xd.iter().enumerate() {
            acc += ad[i * k + j] * xj;
        }
        yd[i] = acc;
    }
    Ok(out)
}

/// Product `C = Aᵀ · B` without materializing `Aᵀ`.
///
/// # Errors
///
/// Returns shape errors as in [`matmul`].
pub fn matmul_tn<T: Scalar>(a: &Tensor<T>, b: &Tensor<T>) -> Result<Tensor<T>> {
    let (ka, m) = (a.nrows()?, a.ncols()?);
    let (kb, n) = (b.nrows()?, b.ncols()?);
    if ka != kb {
        return Err(TensorError::MatmulDimMismatch {
            left: (m, ka),
            right: (kb, n),
        });
    }
    let mut out = Tensor::zeros(vec![m, n]);
    let ad = a.data();
    let bd = b.data();
    let cd = out.data_mut();
    for k in 0..ka {
        let arow = &ad[k * m..(k + 1) * m];
        let brow = &bd[k * n..(k + 1) * n];
        for (i, &aki) in arow.iter().enumerate() {
            if aki == T::ZERO {
                continue;
            }
            let crow = &mut cd[i * n..(i + 1) * n];
            for (c, &bkj) in crow.iter_mut().zip(brow) {
                *c += aki * bkj;
            }
        }
    }
    Ok(out)
}

/// Product `C = A · Bᵀ` without materializing `Bᵀ`.
///
/// # Errors
///
/// Returns shape errors as in [`matmul`].
pub fn matmul_nt<T: Scalar>(a: &Tensor<T>, b: &Tensor<T>) -> Result<Tensor<T>> {
    let (m, ka) = (a.nrows()?, a.ncols()?);
    let (n, kb) = (b.nrows()?, b.ncols()?);
    if ka != kb {
        return Err(TensorError::MatmulDimMismatch {
            left: (m, ka),
            right: (kb, n),
        });
    }
    let mut out = Tensor::zeros(vec![m, n]);
    let ad = a.data();
    let bd = b.data();
    let cd = out.data_mut();
    for i in 0..m {
        let arow = &ad[i * ka..(i + 1) * ka];
        for j in 0..n {
            let brow = &bd[j * kb..(j + 1) * kb];
            let mut acc = T::ZERO;
            for (&x, &y) in arow.iter().zip(brow) {
                acc += x * y;
            }
            cd[i * n + j] = acc;
        }
    }
    Ok(out)
}

/// Result of a (thin) QR factorization `A = Q · R`.
#[derive(Debug, Clone)]
pub struct Qr<T: Scalar> {
    /// `m × k` matrix with orthonormal columns (`k = min(m, n)`).
    pub q: Tensor<T>,
    /// `k × n` upper-triangular factor.
    pub r: Tensor<T>,
}

/// Thin Householder QR factorization.
///
/// # Errors
///
/// Returns [`TensorError::NotAMatrix`] for non-2-D input.
pub fn qr<T: Scalar>(a: &Tensor<T>) -> Result<Qr<T>> {
    let (m, n) = (a.nrows()?, a.ncols()?);
    let k = m.min(n);
    let mut r = a.clone();
    // Accumulate Householder reflectors; apply them to an identity to get Q.
    let mut vs: Vec<Vec<T>> = Vec::with_capacity(k);
    let rd_len = n;
    for j in 0..k {
        // Build reflector for column j below the diagonal.
        let mut norm2 = T::ZERO;
        for i in j..m {
            let v = r.data()[i * rd_len + j];
            norm2 += v * v;
        }
        let norm = norm2.sqrt();
        let x0 = r.data()[j * rd_len + j];
        if norm == T::ZERO {
            vs.push(vec![T::ZERO; m - j]);
            continue;
        }
        let alpha = if x0 >= T::ZERO { -norm } else { norm };
        let mut v: Vec<T> = (j..m).map(|i| r.data()[i * rd_len + j]).collect();
        v[0] -= alpha;
        let vnorm2: T = v.iter().map(|&x| x * x).sum();
        if vnorm2 > T::ZERO {
            // Apply H = I - 2 v vᵀ / (vᵀv) to R[j.., j..].
            for c in j..n {
                let mut dot = T::ZERO;
                for (t, &vi) in v.iter().enumerate() {
                    dot += vi * r.data()[(j + t) * rd_len + c];
                }
                let scale = (T::ONE + T::ONE) * dot / vnorm2;
                for (t, &vi) in v.iter().enumerate() {
                    let off = (j + t) * rd_len + c;
                    let cur = r.data()[off];
                    r.data_mut()[off] = cur - scale * vi;
                }
            }
        }
        vs.push(v);
    }
    // Q = H_0 H_1 … H_{k-1} · I_{m×k}, applied in reverse.
    let mut q = Tensor::<T>::zeros(vec![m, k]);
    for j in 0..k {
        q.data_mut()[j * k + j] = T::ONE;
    }
    for j in (0..k).rev() {
        let v = &vs[j];
        let vnorm2: T = v.iter().map(|&x| x * x).sum();
        if vnorm2 == T::ZERO {
            continue;
        }
        for c in 0..k {
            let mut dot = T::ZERO;
            for (t, &vi) in v.iter().enumerate() {
                dot += vi * q.data()[(j + t) * k + c];
            }
            let scale = (T::ONE + T::ONE) * dot / vnorm2;
            for (t, &vi) in v.iter().enumerate() {
                let off = (j + t) * k + c;
                let cur = q.data()[off];
                q.data_mut()[off] = cur - scale * vi;
            }
        }
    }
    // Truncate R to k×n.
    let r_thin = r.rows(0, k).unwrap_or(r);
    Ok(Qr { q, r: r_thin })
}

/// Result of a singular value decomposition `A = U · diag(S) · Vᵀ`.
#[derive(Debug, Clone)]
pub struct Svd<T: Scalar> {
    /// `m × k` left singular vectors (orthonormal columns).
    pub u: Tensor<T>,
    /// `k` singular values, descending.
    pub s: Vec<T>,
    /// `k × n` right singular vectors, transposed.
    pub vt: Tensor<T>,
}

impl<T: Scalar> Svd<T> {
    /// Reconstructs `U · diag(S) · Vᵀ`.
    ///
    /// # Errors
    ///
    /// Propagates matmul shape errors (cannot occur for a well-formed SVD).
    pub fn reconstruct(&self) -> Result<Tensor<T>> {
        let mut us = self.u.clone();
        let k = self.s.len();
        let m = us.nrows()?;
        for i in 0..m {
            for j in 0..k {
                let off = i * k + j;
                let cur = us.data()[off];
                us.data_mut()[off] = cur * self.s[j];
            }
        }
        matmul(&us, &self.vt)
    }

    /// Keeps only the leading `rank` triplets.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if `rank` is zero or exceeds
    /// the stored rank.
    pub fn truncated(&self, rank: usize) -> Result<Svd<T>> {
        if rank == 0 || rank > self.s.len() {
            return Err(TensorError::InvalidArgument {
                message: format!("rank {rank} out of 1..={}", self.s.len()),
            });
        }
        Ok(Svd {
            u: self.u.cols(0, rank)?,
            s: self.s[..rank].to_vec(),
            vt: self.vt.rows(0, rank)?,
        })
    }
}

const JACOBI_MAX_SWEEPS: usize = 60;

/// One-sided Jacobi SVD.
///
/// Orthogonalizes the columns of (a copy of) `A` with Givens rotations; the
/// accumulated rotations form `V`, the column norms the singular values.
/// Chosen over bidiagonalization for robustness and simplicity — TT-SVD
/// calls this on unfolding matrices whose smaller dimension is at most a few
/// hundred, well within Jacobi's comfortable range.
///
/// For `m < n` the decomposition is computed on `Aᵀ` and swapped back, so
/// the rotation count is always governed by the smaller dimension.
///
/// # Errors
///
/// Returns [`TensorError::NoConvergence`] if the off-diagonal mass does not
/// fall below tolerance within 60 sweeps (pathological inputs only), or
/// shape errors for non-2-D input.
pub fn svd<T: Scalar>(a: &Tensor<T>) -> Result<Svd<T>> {
    let (m, n) = (a.nrows()?, a.ncols()?);
    if m < n {
        // A = U S Vᵀ  ⇔  Aᵀ = V S Uᵀ
        let at = a.transposed()?;
        let svd_t = svd(&at)?;
        let u = svd_t.vt.transposed()?;
        let vt = svd_t.u.transposed()?;
        return Ok(Svd { u, s: svd_t.s, vt });
    }
    let k = n;
    let mut w = a.clone(); // m × n, columns get orthogonalized
    let mut v = Tensor::<T>::eye(n);
    let eps = T::EPSILON * T::from_f64(8.0);
    // Columns whose squared norm is below this are numerical zeros (rank
    // deficiency); rotating against them only churns noise and prevents
    // convergence, so they are treated as already orthogonal.
    let norm = a.frobenius_norm();
    let tiny = T::from_f64((norm * T::EPSILON.to_f64()).powi(2).max(f64::MIN_POSITIVE));
    let mut converged = false;
    for _sweep in 0..JACOBI_MAX_SWEEPS {
        let mut off = T::ZERO;
        for p in 0..n {
            for q in (p + 1)..n {
                // Compute the 2x2 Gram entries for columns p, q.
                let (mut app, mut aqq, mut apq) = (T::ZERO, T::ZERO, T::ZERO);
                for i in 0..m {
                    let xp = w.data()[i * n + p];
                    let xq = w.data()[i * n + q];
                    app += xp * xp;
                    aqq += xq * xq;
                    apq += xp * xq;
                }
                if app <= tiny || aqq <= tiny || apq.abs() <= eps * (app * aqq).sqrt() {
                    continue;
                }
                off += apq.abs();
                // Jacobi rotation zeroing the (p,q) Gram entry.
                let tau = (aqq - app) / ((T::ONE + T::ONE) * apq);
                let t = {
                    let sign = if tau >= T::ZERO { T::ONE } else { -T::ONE };
                    sign / (tau.abs() + (T::ONE + tau * tau).sqrt())
                };
                let c = T::ONE / (T::ONE + t * t).sqrt();
                let s = c * t;
                for i in 0..m {
                    let xp = w.data()[i * n + p];
                    let xq = w.data()[i * n + q];
                    w.data_mut()[i * n + p] = c * xp - s * xq;
                    w.data_mut()[i * n + q] = s * xp + c * xq;
                }
                for i in 0..n {
                    let vp = v.data()[i * n + p];
                    let vq = v.data()[i * n + q];
                    v.data_mut()[i * n + p] = c * vp - s * vq;
                    v.data_mut()[i * n + q] = s * vp + c * vq;
                }
            }
        }
        if off == T::ZERO {
            converged = true;
            break;
        }
    }
    if !converged {
        // One more tolerance check: small residual off-diagonal mass is fine.
        let mut worst = 0.0f64;
        let tiny64 = tiny.to_f64();
        for p in 0..n {
            for q in (p + 1)..n {
                let (mut app, mut aqq, mut apq) = (0.0f64, 0.0f64, 0.0f64);
                for i in 0..m {
                    let xp = w.data()[i * n + p].to_f64();
                    let xq = w.data()[i * n + q].to_f64();
                    app += xp * xp;
                    aqq += xq * xq;
                    apq += xp * xq;
                }
                if app <= tiny64 || aqq <= tiny64 {
                    continue;
                }
                let denom = (app * aqq).sqrt().max(1e-300);
                worst = worst.max(apq.abs() / denom);
            }
        }
        if worst > 1e-6 {
            return Err(TensorError::NoConvergence {
                algorithm: "one-sided Jacobi SVD",
                iterations: JACOBI_MAX_SWEEPS,
            });
        }
    }
    // Column norms are the singular values; normalize columns to get U.
    let mut order: Vec<usize> = (0..k).collect();
    let mut sigmas: Vec<T> = Vec::with_capacity(k);
    for j in 0..k {
        let mut norm2 = T::ZERO;
        for i in 0..m {
            let x = w.data()[i * n + j];
            norm2 += x * x;
        }
        sigmas.push(norm2.sqrt());
    }
    order.sort_by(|&a, &b| sigmas[b].partial_cmp(&sigmas[a]).expect("finite singular values"));
    let mut u = Tensor::<T>::zeros(vec![m, k]);
    let mut vt = Tensor::<T>::zeros(vec![k, n]);
    let mut s = Vec::with_capacity(k);
    for (out_j, &j) in order.iter().enumerate() {
        let sigma = sigmas[j];
        s.push(sigma);
        if sigma > T::ZERO {
            for i in 0..m {
                u.data_mut()[i * k + out_j] = w.data()[i * n + j] / sigma;
            }
        } else if out_j < m {
            // Degenerate column: keep U well-formed with a unit vector.
            u.data_mut()[out_j * k + out_j] = T::ONE;
        }
        for i in 0..n {
            vt.data_mut()[out_j * n + i] = v.data()[i * n + j];
        }
    }
    Ok(Svd { u, s, vt })
}

/// Rank selection for a truncated SVD.
///
/// `max_rank` caps the rank; `frobenius_tol` (absolute) drops trailing
/// singular values whose squared sum stays below `frobenius_tol²` — the
/// standard TT-SVD delta-truncation rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Truncation {
    /// Hard cap on the retained rank (`None` = no cap).
    pub max_rank: Option<usize>,
    /// Absolute Frobenius-norm budget for the discarded tail (`0.0` = exact).
    pub frobenius_tol: f64,
}

impl Truncation {
    /// Truncation that keeps at most `rank` singular triplets.
    pub fn rank(rank: usize) -> Self {
        Truncation {
            max_rank: Some(rank),
            frobenius_tol: 0.0,
        }
    }

    /// Truncation by absolute Frobenius tolerance only.
    pub fn tolerance(tol: f64) -> Self {
        Truncation {
            max_rank: None,
            frobenius_tol: tol,
        }
    }

    /// Exact decomposition (keep everything above numerical noise).
    pub fn none() -> Self {
        Truncation {
            max_rank: None,
            frobenius_tol: 0.0,
        }
    }

    /// Number of singular values from `s` (descending) that survive.
    ///
    /// Always keeps at least one.
    pub fn select<T: Scalar>(&self, s: &[T]) -> usize {
        let mut keep = s.len();
        if self.frobenius_tol > 0.0 {
            let budget = self.frobenius_tol * self.frobenius_tol;
            let mut tail = 0.0f64;
            // Walk from the smallest singular value, dropping while the
            // accumulated squared tail stays within budget.
            while keep > 1 {
                let sv = s[keep - 1].to_f64();
                if tail + sv * sv > budget {
                    break;
                }
                tail += sv * sv;
                keep -= 1;
            }
        } else {
            // Drop exact numerical zeros.
            while keep > 1 && s[keep - 1].to_f64() == 0.0 {
                keep -= 1;
            }
        }
        if let Some(cap) = self.max_rank {
            keep = keep.min(cap.max(1));
        }
        keep.max(1)
    }
}

/// Truncated SVD: full Jacobi SVD followed by [`Truncation`] selection.
///
/// # Errors
///
/// Propagates [`svd`] errors.
pub fn truncated_svd<T: Scalar>(a: &Tensor<T>, trunc: Truncation) -> Result<Svd<T>> {
    let full = svd(a)?;
    let keep = trunc.select(&full.s);
    full.truncated(keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn assert_orthonormal_cols(m: &Tensor<f64>, tol: f64) {
        let g = matmul_tn(m, m).unwrap();
        let k = g.nrows().unwrap();
        for i in 0..k {
            for j in 0..k {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (g.get(&[i, j]).unwrap() - want).abs() < tol,
                    "gram[{i},{j}] = {}",
                    g.get(&[i, j]).unwrap()
                );
            }
        }
    }

    #[test]
    fn matmul_small_known_result() {
        let a = Tensor::<f64>::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let b = Tensor::<f64>::from_vec(vec![3, 2], vec![7., 8., 9., 10., 11., 12.]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_rejects_mismatched_inner_dims() {
        let a = Tensor::<f64>::zeros(vec![2, 3]);
        let b = Tensor::<f64>::zeros(vec![2, 3]);
        assert!(matches!(
            matmul(&a, &b),
            Err(TensorError::MatmulDimMismatch { .. })
        ));
    }

    #[test]
    fn matvec_matches_matmul() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let a: Tensor<f64> = init::uniform(&mut rng, vec![4, 5], 1.0);
        let x = init::uniform(&mut rng, vec![5], 1.0);
        let xm = x.reshaped(vec![5, 1]).unwrap();
        let y = matvec(&a, &x).unwrap();
        let ym = matmul(&a, &xm).unwrap();
        assert!(y.reshaped(vec![4, 1]).unwrap().approx_eq(&ym, 1e-12));
    }

    #[test]
    fn matmul_tn_and_nt_match_explicit_transpose() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let a: Tensor<f64> = init::uniform(&mut rng, vec![4, 3], 1.0);
        let b = init::uniform(&mut rng, vec![4, 5], 1.0);
        let c1 = matmul_tn(&a, &b).unwrap();
        let c2 = matmul(&a.transposed().unwrap(), &b).unwrap();
        assert!(c1.approx_eq(&c2, 1e-12));

        let d: Tensor<f64> = init::uniform(&mut rng, vec![5, 4], 1.0);
        let e1 = matmul_nt(&a.transposed().unwrap(), &d).unwrap();
        let e2 = matmul(&a.transposed().unwrap(), &d.transposed().unwrap()).unwrap();
        assert!(e1.approx_eq(&e2, 1e-12));
    }

    #[test]
    fn qr_reconstructs_and_q_is_orthonormal() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for (m, n) in [(5, 3), (3, 5), (4, 4), (1, 3), (6, 1)] {
            let a = init::uniform(&mut rng, vec![m, n], 1.0);
            let f = qr(&a).unwrap();
            let back = matmul(&f.q, &f.r).unwrap();
            assert!(back.approx_eq(&a, 1e-10), "QR reconstruct failed for {m}x{n}");
            assert_orthonormal_cols(&f.q, 1e-10);
            // R upper triangular
            let k = f.r.nrows().unwrap();
            for i in 0..k {
                for j in 0..i.min(f.r.ncols().unwrap()) {
                    assert!(f.r.get(&[i, j]).unwrap().abs() < 1e-10);
                }
            }
        }
    }

    #[test]
    fn svd_reconstructs_tall_wide_square() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for (m, n) in [(6, 3), (3, 6), (5, 5), (1, 4), (4, 1)] {
            let a = init::uniform(&mut rng, vec![m, n], 1.0);
            let f = svd(&a).unwrap();
            let back = f.reconstruct().unwrap();
            assert!(
                back.approx_eq(&a, 1e-9),
                "SVD reconstruct failed for {m}x{n}: err {}",
                back.relative_error(&a).unwrap()
            );
            assert_orthonormal_cols(&f.u, 1e-9);
            assert_orthonormal_cols(&f.vt.transposed().unwrap(), 1e-9);
            for w in f.s.windows(2) {
                assert!(w[0] >= w[1], "singular values not sorted: {:?}", f.s);
            }
        }
    }

    #[test]
    fn svd_of_rank_deficient_matrix() {
        // rank-1 matrix: outer product
        let u = Tensor::<f64>::from_vec(vec![4, 1], vec![1., 2., 3., 4.]).unwrap();
        let v = Tensor::<f64>::from_vec(vec![1, 3], vec![1., 0., -1.]).unwrap();
        let a = matmul(&u, &v).unwrap();
        let f = svd(&a).unwrap();
        assert!(f.s[0] > 1.0);
        for &sv in &f.s[1..] {
            assert!(sv < 1e-10, "expected tiny trailing singular values: {:?}", f.s);
        }
        assert!(f.reconstruct().unwrap().approx_eq(&a, 1e-10));
    }

    #[test]
    fn svd_singular_values_match_known_diagonal() {
        let a =
            Tensor::<f64>::from_vec(vec![3, 3], vec![3., 0., 0., 0., 1., 0., 0., 0., 2.]).unwrap();
        let f = svd(&a).unwrap();
        assert!((f.s[0] - 3.0).abs() < 1e-12);
        assert!((f.s[1] - 2.0).abs() < 1e-12);
        assert!((f.s[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn truncation_rank_and_tolerance() {
        let s = [4.0f64, 2.0, 1.0, 0.5];
        assert_eq!(Truncation::rank(2).select(&s), 2);
        assert_eq!(Truncation::none().select(&s), 4);
        // tol 1.2: can drop 0.5 (0.25) and 1.0 (1.0+0.25=1.25 > 1.44? no,
        // 1.25 <= 1.44 so both dropped); next would add 4.0 -> stop at 2.
        assert_eq!(Truncation::tolerance(1.2).select(&s), 2);
        // tol 0.6: 0.25 <= 0.36, adding 1.0 exceeds -> keep 3.
        assert_eq!(Truncation::tolerance(0.6).select(&s), 3);
        // Always keeps at least 1.
        assert_eq!(Truncation::tolerance(1e9).select(&s), 1);
        assert_eq!(Truncation::rank(0).select(&s), 1);
    }

    #[test]
    fn truncated_svd_error_is_bounded_by_dropped_mass() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let a: Tensor<f64> = init::uniform(&mut rng, vec![8, 6], 1.0);
        let full = svd(&a).unwrap();
        let t = truncated_svd(&a, Truncation::rank(3)).unwrap();
        let back = t.reconstruct().unwrap();
        let err = back.sub(&a).unwrap().frobenius_norm();
        let bound: f64 = full.s[3..].iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(
            err <= bound * (1.0 + 1e-8) + 1e-12,
            "truncation error {err} exceeds bound {bound}"
        );
    }

    #[test]
    fn svd_f32_also_works() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let a64: Tensor<f64> = init::uniform(&mut rng, vec![5, 4], 1.0);
        let a: Tensor<f32> = a64.cast();
        let f = svd(&a).unwrap();
        let back = f.reconstruct().unwrap();
        assert!(back.approx_eq(&a, 1e-4));
    }
}
