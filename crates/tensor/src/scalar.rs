use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Floating-point element types usable inside a [`crate::Tensor`].
///
/// This is a deliberately small abstraction over `f32` and `f64`: the TIE
/// software reference pipeline uses `f64` for decomposition (TT-SVD needs the
/// head-room) and `f32` for neural-network training, while the bit-accurate
/// simulator in `tie-sim` quantizes down to the 16-bit fixed-point datapath
/// modeled by `tie-quant`.
///
/// The trait is sealed by construction (all methods are required and the impl
/// surface is exactly `f32` / `f64`); downstream crates are not expected to
/// implement it.
pub trait Scalar:
    Copy
    + Debug
    + Display
    + Default
    + PartialEq
    + PartialOrd
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
    + Send
    + Sync
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Machine epsilon of the representation.
    const EPSILON: Self;

    /// Lossless widening to `f64` (used by accuracy metrics and the SVD
    /// convergence tests).
    fn to_f64(self) -> f64;
    /// Conversion from `f64`, rounding to the nearest representable value.
    fn from_f64(v: f64) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// `self * a + b` (fused in spirit; precision follows the primitive).
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// Natural exponential.
    fn exp(self) -> Self;
    /// Natural logarithm.
    fn ln(self) -> Self;
    /// Hyperbolic tangent.
    fn tanh(self) -> Self;
    /// Euclidean hypotenuse `sqrt(self^2 + other^2)` without overflow.
    fn hypot(self, other: Self) -> Self;
    /// Maximum treating NaN as smaller than everything.
    fn max(self, other: Self) -> Self;
    /// Minimum treating NaN as larger than everything.
    fn min(self, other: Self) -> Self;
    /// True if the value is finite (not NaN / infinity).
    fn is_finite(self) -> bool;
    /// Raise to an integer power.
    fn powi(self, n: i32) -> Self;
}

macro_rules! impl_scalar {
    ($t:ty) => {
        impl Scalar for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const EPSILON: Self = <$t>::EPSILON;

            #[inline]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline]
            fn from_f64(v: f64) -> Self {
                v as $t
            }
            #[inline]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
            #[inline]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }
            #[inline]
            fn mul_add(self, a: Self, b: Self) -> Self {
                self * a + b
            }
            #[inline]
            fn exp(self) -> Self {
                <$t>::exp(self)
            }
            #[inline]
            fn ln(self) -> Self {
                <$t>::ln(self)
            }
            #[inline]
            fn tanh(self) -> Self {
                <$t>::tanh(self)
            }
            #[inline]
            fn hypot(self, other: Self) -> Self {
                <$t>::hypot(self, other)
            }
            #[inline]
            fn max(self, other: Self) -> Self {
                <$t>::max(self, other)
            }
            #[inline]
            fn min(self, other: Self) -> Self {
                <$t>::min(self, other)
            }
            #[inline]
            fn is_finite(self) -> bool {
                <$t>::is_finite(self)
            }
            #[inline]
            fn powi(self, n: i32) -> Self {
                <$t>::powi(self, n)
            }
        }
    };
}

impl_scalar!(f32);
impl_scalar!(f64);

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Scalar>(v: f64) -> f64 {
        T::from_f64(v).to_f64()
    }

    #[test]
    fn constants_are_consistent() {
        assert_eq!(f32::ZERO + f32::ONE, 1.0f32);
        assert_eq!(f64::ZERO + f64::ONE, 1.0f64);
    }

    #[test]
    fn f64_roundtrip_is_exact() {
        for v in [0.0, 1.5, -3.25, 1e-12, 1e12] {
            assert_eq!(roundtrip::<f64>(v), v);
        }
    }

    #[test]
    fn f32_roundtrip_is_close() {
        for v in [0.0, 1.5, -3.25] {
            assert_eq!(roundtrip::<f32>(v), v);
        }
    }

    #[test]
    fn helpers_behave_like_std() {
        assert_eq!(Scalar::abs(-2.0f64), 2.0);
        assert_eq!(Scalar::sqrt(9.0f64), 3.0);
        assert_eq!(Scalar::max(1.0f32, 2.0), 2.0);
        assert_eq!(Scalar::min(1.0f32, 2.0), 1.0);
        assert_eq!(Scalar::powi(2.0f64, 10), 1024.0);
        assert!(Scalar::is_finite(1.0f32));
        assert!(!Scalar::is_finite(f64::INFINITY));
    }
}
