//! Dense tensor and linear-algebra substrate for the TIE reproduction.
//!
//! This crate provides the numeric foundation every other crate in the
//! workspace builds on:
//!
//! * [`Shape`] — dimension bookkeeping with row-major strides,
//! * [`Tensor`] — an owned, row-major, `d`-dimensional array over any
//!   [`Scalar`] element type (`f32` / `f64`),
//! * [`linalg`] — cache-blocked, optionally multi-threaded matrix
//!   multiplication, Householder QR and one-sided Jacobi SVD (including the
//!   truncated SVD used by TT-SVD decomposition),
//! * [`parallel`] — thread-count control for the dense kernels
//!   (`TIE_THREADS` env var, runtime override, spawn threshold),
//! * [`init`] — deterministic pseudo-random initialization helpers.
//!
//! The TIE paper (ISCA '19) evaluates tensor-train compressed layers; the
//! decomposition pipeline in `tie-tt` is a chain of reshapes and truncated
//! SVDs over these tensors, and the compact inference scheme in `tie-core`
//! is a chain of matrix multiplications and index transforms.
//!
//! # Example
//!
//! ```
//! use tie_tensor::{Tensor, linalg};
//!
//! # fn main() -> Result<(), tie_tensor::TensorError> {
//! let a = Tensor::<f64>::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0])?;
//! let b = Tensor::<f64>::eye(2);
//! let c = linalg::matmul(&a, &b)?;
//! assert_eq!(c.data(), a.data());
//! # Ok(())
//! # }
//! ```

// `deny` rather than `forbid`: five sanctioned exceptions. (1) The
// `#[target_feature]` SIMD multiversioning in `tile` (runtime-dispatched
// AVX/AVX2/AVX-512 instantiations of the shared tile-job bodies) — no
// raw-pointer code, the `unsafe` is solely the target-feature calling
// contract, discharged by `is_x86_feature_detected!` at the call site.
// (2) The lifetime-erased job handoff and disjoint slab carving in `pool`
// — each `unsafe` block there carries a SAFETY comment tying it to the
// dispatch protocol (a dispatcher never returns while a worker can still
// reach its job frame, and distinct slab indices map to non-overlapping
// sub-slices). (3) The streaming stage's scatter store in `tile` — raw
// writes through a `Dest` whose **unsafe trait** contract demands a
// proven bijection (`DestMap::new` validates it; `RowMajor` holds it by
// construction), so the stores are in-bounds and disjoint across the
// row-partitioned workers. (4) The same lifetime-erased job handoff, in
// barrier form, for the dedicated stage-pipeline threads in `pipeline`.
// (5) The per-span row-slab carving in `tile`'s k-blocked and Gram
// stages — `from_raw_parts_mut` over disjoint row spans handed out by
// the global driver's partition.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod scalar;
mod shape;
mod tensor;

pub mod init;
pub mod linalg;
pub mod parallel;
pub mod pipeline;
pub mod pool;
pub mod tile;

pub use error::TensorError;
pub use scalar::Scalar;
pub use shape::Shape;
pub use tensor::Tensor;

/// Convenience result alias used across the tensor substrate.
pub type Result<T, E = TensorError> = std::result::Result<T, E>;
