use crate::{Result, TensorError};

/// A tensor shape: the extent of each dimension, in row-major order.
///
/// `Shape` owns the dimension list and provides the index arithmetic the rest
/// of the workspace relies on — row-major strides, flattening/unflattening of
/// multi-indices, and validity checks. Zero-sized dimensions are rejected at
/// construction: the TIE data path never produces empty tensors, and allowing
/// them would riddle the index math with special cases.
///
/// # Example
///
/// ```
/// use tie_tensor::Shape;
///
/// # fn main() -> Result<(), tie_tensor::TensorError> {
/// let s = Shape::new(vec![2, 3, 4])?;
/// assert_eq!(s.num_elements(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// assert_eq!(s.flatten(&[1, 2, 3])?, 23);
/// assert_eq!(s.unflatten(23), vec![1, 2, 3]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a dimension list.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyShape`] if `dims` is empty or any
    /// dimension is zero.
    pub fn new(dims: Vec<usize>) -> Result<Self> {
        if dims.is_empty() || dims.contains(&0) {
            return Err(TensorError::EmptyShape);
        }
        Ok(Shape { dims })
    }

    /// Creates a 2-D (matrix) shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyShape`] if either dimension is zero.
    pub fn matrix(rows: usize, cols: usize) -> Result<Self> {
        Shape::new(vec![rows, cols])
    }

    /// The dimension list.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions (`d` in the paper's notation).
    pub fn ndim(&self) -> usize {
        self.dims.len()
    }

    /// Extent of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= self.ndim()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// Total number of elements (`∏ dims`).
    pub fn num_elements(&self) -> usize {
        self.dims.iter().product()
    }

    /// Row-major strides: `strides[k] = ∏_{t>k} dims[t]`.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for k in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[k] = strides[k + 1] * self.dims[k + 1];
        }
        strides
    }

    /// Flattens a multi-index into a row-major linear offset.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if the index has the wrong
    /// arity or any coordinate exceeds its dimension.
    pub fn flatten(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.dims.len() || index.iter().zip(&self.dims).any(|(&i, &d)| i >= d) {
            return Err(TensorError::IndexOutOfBounds {
                index: index.to_vec(),
                shape: self.dims.clone(),
            });
        }
        let mut offset = 0;
        for (i, d) in index.iter().zip(&self.dims) {
            offset = offset * d + i;
        }
        Ok(offset)
    }

    /// Inverse of [`Shape::flatten`]; `offset` is taken modulo the element
    /// count, so any `usize` is accepted.
    pub fn unflatten(&self, offset: usize) -> Vec<usize> {
        let mut rem = offset % self.num_elements();
        let mut index = vec![0usize; self.dims.len()];
        for k in (0..self.dims.len()).rev() {
            index[k] = rem % self.dims[k];
            rem /= self.dims[k];
        }
        index
    }

    /// True when `other` has the same element count (reshape-compatible).
    pub fn is_reshape_compatible(&self, other: &Shape) -> bool {
        self.num_elements() == other.num_elements()
    }

    /// Applies a permutation to the axes, producing the transposed shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidPermutation`] if `perm` is not a
    /// permutation of `0..ndim`.
    pub fn permute(&self, perm: &[usize]) -> Result<Shape> {
        validate_permutation(perm, self.ndim())?;
        Ok(Shape {
            dims: perm.iter().map(|&p| self.dims[p]).collect(),
        })
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (k, d) in self.dims.iter().enumerate() {
            if k > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

impl TryFrom<Vec<usize>> for Shape {
    type Error = TensorError;

    fn try_from(dims: Vec<usize>) -> Result<Self> {
        Shape::new(dims)
    }
}

impl AsRef<[usize]> for Shape {
    fn as_ref(&self) -> &[usize] {
        &self.dims
    }
}

/// Checks that `perm` is a permutation of `0..ndim`.
///
/// # Errors
///
/// Returns [`TensorError::InvalidPermutation`] otherwise.
pub fn validate_permutation(perm: &[usize], ndim: usize) -> Result<()> {
    let mut seen = vec![false; ndim];
    let valid = perm.len() == ndim
        && perm.iter().all(|&p| {
            if p < ndim && !seen[p] {
                seen[p] = true;
                true
            } else {
                false
            }
        });
    if valid {
        Ok(())
    } else {
        Err(TensorError::InvalidPermutation {
            perm: perm.to_vec(),
            ndim,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_empty_and_zero() {
        assert_eq!(Shape::new(vec![]), Err(TensorError::EmptyShape));
        assert_eq!(Shape::new(vec![2, 0]), Err(TensorError::EmptyShape));
    }

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(vec![3, 4, 5]).unwrap();
        assert_eq!(s.strides(), vec![20, 5, 1]);
        let s1 = Shape::new(vec![7]).unwrap();
        assert_eq!(s1.strides(), vec![1]);
    }

    #[test]
    fn flatten_unflatten_roundtrip() {
        let s = Shape::new(vec![2, 7, 8]).unwrap();
        for off in 0..s.num_elements() {
            let idx = s.unflatten(off);
            assert_eq!(s.flatten(&idx).unwrap(), off);
        }
    }

    #[test]
    fn flatten_checks_bounds() {
        let s = Shape::new(vec![2, 3]).unwrap();
        assert!(s.flatten(&[2, 0]).is_err());
        assert!(s.flatten(&[0]).is_err());
        assert!(s.flatten(&[0, 1, 2]).is_err());
    }

    #[test]
    fn permute_reorders_dims() {
        let s = Shape::new(vec![2, 3, 4]).unwrap();
        let p = s.permute(&[2, 0, 1]).unwrap();
        assert_eq!(p.dims(), &[4, 2, 3]);
        assert!(s.permute(&[0, 0, 1]).is_err());
        assert!(s.permute(&[0, 1]).is_err());
    }

    #[test]
    fn display_formats_dims() {
        let s = Shape::new(vec![5, 12]).unwrap();
        assert_eq!(s.to_string(), "(5x12)");
    }

    #[test]
    fn try_from_vec_behaves_like_new() {
        let s: Shape = vec![4, 4].try_into().unwrap();
        assert_eq!(s.num_elements(), 16);
        let e: std::result::Result<Shape, _> = Vec::<usize>::new().try_into();
        assert!(e.is_err());
    }
}
