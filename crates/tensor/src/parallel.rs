//! Thread-count control and row-partitioned dispatch for the dense kernels.
//!
//! The blocked kernels in [`crate::linalg`] split their output rows across
//! the persistent worker pool in [`crate::pool`] once a problem is large
//! enough to amortize dispatch. The worker count is resolved, in order,
//! from:
//!
//! 1. a process-wide runtime override ([`set_num_threads`], used by tests
//!    to pin determinism checks to specific counts),
//! 2. the `TIE_THREADS` environment variable (parsed once),
//! 3. [`std::thread::available_parallelism`].
//!
//! # Precedence and the live pool
//!
//! The pool never caches a thread count: [`num_threads`] is re-resolved on
//! **every** dispatch, and the resolved value decides how many slabs the
//! work is cut into. So a runtime override deterministically wins over a
//! pool whose workers were spawned under a different `TIE_THREADS` — a
//! pool grown to 8 workers dispatched after `set_num_threads(2)` produces
//! exactly 2 slabs (bit-identical to a fresh 2-thread process); the six
//! idle workers never receive work. Raising the count mid-process likewise
//! takes effect on the next dispatch (the pool lazily spawns the missing
//! workers). Clearing the override (`set_num_threads(0)`) falls back to
//! `TIE_THREADS`, which is parsed once per process.
//!
//! Small problems never dispatch: work below [`PARALLEL_MIN_WORK`] scalar
//! multiply-adds stays on the calling thread regardless of the configured
//! count. With the persistent pool, warm dispatch costs on the order of a
//! microsecond instead of the tens of microseconds a `std::thread::scope`
//! spawn/join cost, so the threshold sits 8x lower than the scoped-spawn
//! era (`1 << 17`) and mid-size compact-scheme stage GEMMs now
//! parallelize. The remaining cold-path copies (engine construction, the
//! prepared-input staging) share the same threshold through
//! [`threads_for`] — the separate element-count copy threshold died with
//! the read-side Transform permutation pass, whose hot-loop copies are now
//! fused into the GEMM write epilogue.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Minimum number of scalar multiply-adds (`m·k·n` for a GEMM) before a
/// kernel considers splitting across threads. Below this, even warm-pool
/// dispatch costs more than the compute. Re-tuned from `1 << 17` when
/// per-call `std::thread::scope` spawning was replaced by [`crate::pool`].
pub const PARALLEL_MIN_WORK: usize = 1 << 14;

/// Runtime override; `0` means "not set" (fall back to env / hardware).
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// `TIE_THREADS` parsed once; `0` means unset or unparsable.
static ENV_THREADS: OnceLock<usize> = OnceLock::new();

fn env_threads() -> usize {
    *ENV_THREADS.get_or_init(|| {
        std::env::var("TIE_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .map_or(0, |n| n.max(1))
    })
}

/// Number of worker threads the hardware offers (≥ 1).
#[must_use]
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Resolved worker count for the dense kernels (≥ 1). Re-evaluated on
/// every dispatch; see the module docs for precedence over a live pool.
#[must_use]
pub fn num_threads() -> usize {
    let o = OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    let e = env_threads();
    if e > 0 {
        return e;
    }
    available_parallelism()
}

/// Overrides the worker count for this process; `0` clears the override
/// (back to `TIE_THREADS` / hardware). Returns the previous override
/// (`0` if none), so tests can restore it.
///
/// Takes effect on the **next** dispatch: the persistent pool re-resolves
/// the width per call, so an override set while the pool is warm still
/// deterministically bounds every subsequent kernel (the pool's spawned
/// workers are an upper bound on concurrency, never a floor).
pub fn set_num_threads(n: usize) -> usize {
    OVERRIDE.swap(n, Ordering::Relaxed)
}

/// Worker count for a kernel with `work` scalar multiply-adds spread over
/// `rows` independent output rows: 1 below the spawn threshold, otherwise
/// the configured count capped by the row count.
#[must_use]
pub fn threads_for(work: usize, rows: usize) -> usize {
    if work < PARALLEL_MIN_WORK {
        return 1;
    }
    num_threads().min(rows.max(1))
}

/// Runs `f` over `buf` split into `threads` near-equal row slabs on the
/// persistent pool.
///
/// `buf` holds `rows` rows of `row_len` elements; each invocation gets the
/// global index of its first row and the mutable slab. With one thread (or
/// one slab) this calls `f` inline without dispatching. Slab boundaries
/// depend only on `(rows, threads)` — never on which thread runs a slab —
/// and every output element is produced by exactly one invocation, so
/// results are bit-identical for any pool size and identical to
/// [`for_each_row_slab_scoped`].
pub fn for_each_row_slab<T, F>(buf: &mut [T], rows: usize, row_len: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    debug_assert_eq!(buf.len(), rows * row_len);
    let slab_rows = rows.div_ceil(threads.max(1)).max(1);
    if threads <= 1 || slab_rows >= rows {
        f(0, buf);
        return;
    }
    crate::pool::for_each_slab(buf, slab_rows * row_len, |slab_idx, slab| {
        f(slab_idx * slab_rows, slab);
    });
}

/// Runs `f(row0, rows_in_span)` for each of `threads` near-equal row spans
/// on the persistent pool — the *range-only* form of
/// [`for_each_row_slab`], for kernels whose outputs are **scattered** (a
/// destination-mapped GEMM epilogue writes each span's rows to
/// non-contiguous, bijection-disjoint positions, so no `&mut` slab can be
/// carved out up front).
///
/// Span boundaries are the same `rows.div_ceil(threads)` partition as
/// [`for_each_row_slab`] — they depend only on `(rows, threads)`, so a
/// mapped kernel splits its rows identically to its unmapped twin and
/// stays bit-identical at any pool size. With one thread (or one span)
/// `f` runs inline on the calling thread.
pub fn for_each_row_span<F>(rows: usize, threads: usize, f: F)
where
    F: Fn(usize, usize) + Sync,
{
    let slab_rows = rows.div_ceil(threads.max(1)).max(1);
    if threads <= 1 || slab_rows >= rows {
        f(0, rows);
        return;
    }
    let spans = rows.div_ceil(slab_rows);
    crate::pool::dispatch(spans, |idx| {
        let row0 = idx * slab_rows;
        f(row0, (row0 + slab_rows).min(rows) - row0);
    });
}

/// The pre-pool implementation of [`for_each_row_slab`]: identical slab
/// partition, but workers are freshly spawned per call via
/// `std::thread::scope`. Kept as the dispatch-latency baseline for the
/// pool benches and the tier-2 regression gate — not used by any kernel.
#[doc(hidden)]
pub fn for_each_row_slab_scoped<T, F>(
    buf: &mut [T],
    rows: usize,
    row_len: usize,
    threads: usize,
    f: F,
) where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    debug_assert_eq!(buf.len(), rows * row_len);
    let slab_rows = rows.div_ceil(threads.max(1)).max(1);
    if threads <= 1 || slab_rows >= rows {
        f(0, buf);
        return;
    }
    // Row slabs are disjoint `chunks_mut` regions, so the scoped borrows
    // are independent; `scope` joins every worker before returning.
    std::thread::scope(|scope| {
        for (slab_idx, slab) in buf.chunks_mut(slab_rows * row_len).enumerate() {
            let f = &f;
            scope.spawn(move || f(slab_idx * slab_rows, slab));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn num_threads_is_positive_and_overridable() {
        assert!(num_threads() >= 1);
        let prev = set_num_threads(3);
        assert_eq!(num_threads(), 3);
        set_num_threads(prev);
        assert!(num_threads() >= 1);
    }

    #[test]
    fn small_work_never_splits() {
        let prev = set_num_threads(8);
        assert_eq!(threads_for(PARALLEL_MIN_WORK - 1, 1024), 1);
        assert_eq!(threads_for(PARALLEL_MIN_WORK, 1024), 8);
        // Never more threads than rows.
        assert_eq!(threads_for(PARALLEL_MIN_WORK, 2), 2);
        set_num_threads(prev);
    }

    #[test]
    fn row_spans_match_row_slab_partition() {
        // The scatter-write form must cut rows exactly where the
        // contiguous form does, at every thread count.
        for rows in [1usize, 2, 10, 37] {
            for threads in [1usize, 2, 3, 8] {
                let spans = std::sync::Mutex::new(Vec::new());
                for_each_row_span(rows, threads, |row0, len| {
                    spans.lock().unwrap().push((row0, len));
                });
                let mut got = spans.into_inner().unwrap();
                got.sort_unstable();
                let slabs = std::sync::Mutex::new(Vec::new());
                let mut buf = vec![0u8; rows];
                for_each_row_slab(&mut buf, rows, 1, threads, |row0, slab| {
                    slabs.lock().unwrap().push((row0, slab.len()));
                });
                let mut want = slabs.into_inner().unwrap();
                want.sort_unstable();
                assert_eq!(got, want, "rows={rows} threads={threads}");
            }
        }
    }

    #[test]
    fn row_slabs_cover_everything_exactly_once() {
        let rows = 10;
        let row_len = 3;
        let mut buf = vec![0u32; rows * row_len];
        for_each_row_slab(&mut buf, rows, row_len, 4, |row0, slab| {
            for (r, row) in slab.chunks_mut(row_len).enumerate() {
                for v in row.iter_mut() {
                    *v += (row0 + r) as u32 + 1;
                }
            }
        });
        let want: Vec<u32> = (0..rows)
            .flat_map(|r| std::iter::repeat_n(r as u32 + 1, row_len))
            .collect();
        assert_eq!(buf, want);
    }

    #[test]
    fn pooled_and_scoped_partitions_are_identical() {
        let rows = 37;
        let row_len = 5;
        for threads in [2usize, 3, 8] {
            let mut pooled = vec![0u32; rows * row_len];
            let mut scoped = vec![0u32; rows * row_len];
            let fill = |row0: usize, slab: &mut [u32]| {
                for (r, row) in slab.chunks_mut(row_len).enumerate() {
                    for (c, v) in row.iter_mut().enumerate() {
                        *v = ((row0 + r) * 1000 + c) as u32;
                    }
                }
            };
            for_each_row_slab(&mut pooled, rows, row_len, threads, fill);
            for_each_row_slab_scoped(&mut scoped, rows, row_len, threads, fill);
            assert_eq!(pooled, scoped, "threads={threads}");
        }
    }

    #[test]
    fn inline_path_used_for_single_thread() {
        let mut buf = vec![0u8; 6];
        for_each_row_slab(&mut buf, 2, 3, 1, |row0, slab| {
            assert_eq!(row0, 0);
            assert_eq!(slab.len(), 6);
        });
    }

    #[test]
    fn override_flips_win_over_live_pool_mid_process() {
        // Warm the pool wide, then force a narrow override: the dispatch
        // width (observable as the set of distinct slab start rows) must
        // follow the override immediately, not the pool size.
        let prev = set_num_threads(0);
        crate::pool::prewarm(8);
        let rows = 64;
        let distinct_slabs = |threads: usize| {
            let mut buf = vec![0u8; rows];
            let starts = std::sync::Mutex::new(Vec::new());
            for_each_row_slab(&mut buf, rows, 1, threads, |row0, _slab| {
                starts.lock().unwrap().push(row0);
            });
            let mut s = starts.into_inner().unwrap();
            s.sort_unstable();
            s
        };
        set_num_threads(8);
        assert_eq!(distinct_slabs(super::num_threads().min(rows)).len(), 8);
        // Narrow mid-process: 8 spawned workers must NOT widen this.
        set_num_threads(2);
        assert_eq!(distinct_slabs(super::num_threads().min(rows)).len(), 2);
        // Widen again on the very next dispatch.
        set_num_threads(4);
        assert_eq!(distinct_slabs(super::num_threads().min(rows)).len(), 4);
        set_num_threads(prev);
    }
}
