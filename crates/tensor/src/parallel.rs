//! Thread-count control and row-partitioned dispatch for the dense kernels.
//!
//! The blocked kernels in [`crate::linalg`] split their output rows across
//! `std::thread::scope` workers once a problem is large enough to amortize
//! thread spawn/join. The worker count is resolved, in order, from:
//!
//! 1. a process-wide runtime override ([`set_num_threads`], used by tests
//!    to pin determinism checks to specific counts),
//! 2. the `TIE_THREADS` environment variable (parsed once),
//! 3. [`std::thread::available_parallelism`].
//!
//! Small problems never spawn: work below [`PARALLEL_MIN_WORK`] scalar
//! multiply-adds stays on the calling thread regardless of the configured
//! count, which keeps the compact engine's many tiny stage products on the
//! fast path.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Minimum number of scalar multiply-adds (`m·k·n` for a GEMM) before a
/// kernel considers splitting across threads. Below this, spawn/join costs
/// more than the compute.
pub const PARALLEL_MIN_WORK: usize = 1 << 17;

/// Runtime override; `0` means "not set" (fall back to env / hardware).
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// `TIE_THREADS` parsed once; `0` means unset or unparsable.
static ENV_THREADS: OnceLock<usize> = OnceLock::new();

fn env_threads() -> usize {
    *ENV_THREADS.get_or_init(|| {
        std::env::var("TIE_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .map_or(0, |n| n.max(1))
    })
}

/// Number of worker threads the hardware offers (≥ 1).
#[must_use]
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Resolved worker count for the dense kernels (≥ 1).
#[must_use]
pub fn num_threads() -> usize {
    let o = OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    let e = env_threads();
    if e > 0 {
        return e;
    }
    available_parallelism()
}

/// Overrides the worker count for this process; `0` clears the override
/// (back to `TIE_THREADS` / hardware). Returns the previous override
/// (`0` if none), so tests can restore it.
pub fn set_num_threads(n: usize) -> usize {
    OVERRIDE.swap(n, Ordering::Relaxed)
}

/// Worker count for a kernel with `work` scalar multiply-adds spread over
/// `rows` independent output rows: 1 below the spawn threshold, otherwise
/// the configured count capped by the row count.
#[must_use]
pub fn threads_for(work: usize, rows: usize) -> usize {
    if work < PARALLEL_MIN_WORK {
        return 1;
    }
    num_threads().min(rows.max(1))
}

/// Runs `f` over `buf` split into `threads` near-equal row slabs.
///
/// `buf` holds `rows` rows of `row_len` elements; each invocation gets the
/// global index of its first row and the mutable slab. With one thread (or
/// one slab) this calls `f` inline without spawning.
pub fn for_each_row_slab<T, F>(buf: &mut [T], rows: usize, row_len: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    debug_assert_eq!(buf.len(), rows * row_len);
    let slab_rows = rows.div_ceil(threads.max(1)).max(1);
    if threads <= 1 || slab_rows >= rows {
        f(0, buf);
        return;
    }
    // Row slabs are disjoint `chunks_mut` regions, so the scoped borrows
    // are independent; `scope` joins every worker before returning.
    std::thread::scope(|scope| {
        for (slab_idx, slab) in buf.chunks_mut(slab_rows * row_len).enumerate() {
            let f = &f;
            scope.spawn(move || f(slab_idx * slab_rows, slab));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn num_threads_is_positive_and_overridable() {
        assert!(num_threads() >= 1);
        let prev = set_num_threads(3);
        assert_eq!(num_threads(), 3);
        set_num_threads(prev);
        assert!(num_threads() >= 1);
    }

    #[test]
    fn small_work_never_splits() {
        let prev = set_num_threads(8);
        assert_eq!(threads_for(PARALLEL_MIN_WORK - 1, 1024), 1);
        assert_eq!(threads_for(PARALLEL_MIN_WORK, 1024), 8);
        // Never more threads than rows.
        assert_eq!(threads_for(PARALLEL_MIN_WORK, 2), 2);
        set_num_threads(prev);
    }

    #[test]
    fn row_slabs_cover_everything_exactly_once() {
        let rows = 10;
        let row_len = 3;
        let mut buf = vec![0u32; rows * row_len];
        for_each_row_slab(&mut buf, rows, row_len, 4, |row0, slab| {
            for (r, row) in slab.chunks_mut(row_len).enumerate() {
                for v in row.iter_mut() {
                    *v += (row0 + r) as u32 + 1;
                }
            }
        });
        let want: Vec<u32> = (0..rows)
            .flat_map(|r| std::iter::repeat_n(r as u32 + 1, row_len))
            .collect();
        assert_eq!(buf, want);
    }

    #[test]
    fn inline_path_used_for_single_thread() {
        let mut buf = vec![0u8; 6];
        for_each_row_slab(&mut buf, 2, 3, 1, |row0, slab| {
            assert_eq!(row0, 0);
            assert_eq!(slab.len(), 6);
        });
    }
}
