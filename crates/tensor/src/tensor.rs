use crate::{Result, Scalar, Shape, TensorError};

/// An owned, row-major, `d`-dimensional dense array.
///
/// `Tensor` is the universal data container in the workspace: weight
/// matrices, activations, tensor-train cores (as 3-D / 4-D tensors), and the
/// intermediate `V_h` matrices of the compact inference scheme are all
/// `Tensor`s. Data is stored contiguously in row-major order and the type is
/// cheap to reshape (metadata only) and explicit about anything that moves
/// data (`permuted`, `transposed`).
///
/// # Example
///
/// ```
/// use tie_tensor::Tensor;
///
/// # fn main() -> Result<(), tie_tensor::TensorError> {
/// let t = Tensor::<f32>::from_fn(vec![2, 3], |idx| (idx[0] * 3 + idx[1]) as f32)?;
/// assert_eq!(t.get(&[1, 2])?, 5.0);
/// let r = t.reshaped(vec![3, 2])?;
/// assert_eq!(r.get(&[2, 1])?, 5.0); // same linear order
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor<T: Scalar> {
    shape: Shape,
    data: Vec<T>,
}

impl<T: Scalar> Tensor<T> {
    /// Creates a tensor filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty or contains a zero (programmer error: shapes
    /// are static in all call sites; use [`Tensor::try_zeros`] for dynamic
    /// shapes).
    pub fn zeros(dims: Vec<usize>) -> Self {
        Self::try_zeros(dims).expect("valid shape")
    }

    /// Creates a tensor filled with zeros, reporting invalid shapes.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyShape`] for an empty/zero shape.
    pub fn try_zeros(dims: Vec<usize>) -> Result<Self> {
        let shape = Shape::new(dims)?;
        let n = shape.num_elements();
        Ok(Tensor {
            shape,
            data: vec![T::ZERO; n],
        })
    }

    /// Creates a tensor with every element equal to `value`.
    pub fn filled(dims: Vec<usize>, value: T) -> Result<Self> {
        let shape = Shape::new(dims)?;
        let n = shape.num_elements();
        Ok(Tensor {
            shape,
            data: vec![value; n],
        })
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ElementCountMismatch`] if `data.len()` differs
    /// from the shape's element count, or [`TensorError::EmptyShape`] for an
    /// invalid shape.
    pub fn from_vec(dims: Vec<usize>, data: Vec<T>) -> Result<Self> {
        let shape = Shape::new(dims)?;
        if shape.num_elements() != data.len() {
            return Err(TensorError::ElementCountMismatch {
                expected: shape.num_elements(),
                got: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Builds a tensor by evaluating `f` at every multi-index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyShape`] for an invalid shape.
    pub fn from_fn(dims: Vec<usize>, mut f: impl FnMut(&[usize]) -> T) -> Result<Self> {
        let shape = Shape::new(dims)?;
        let n = shape.num_elements();
        let mut data = Vec::with_capacity(n);
        for off in 0..n {
            let idx = shape.unflatten(off);
            data.push(f(&idx));
        }
        Ok(Tensor { shape, data })
    }

    /// The `n`-by-`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(vec![n, n]);
        for i in 0..n {
            t.data[i * n + i] = T::ONE;
        }
        t
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The dimension list (shortcut for `shape().dims()`).
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.shape.ndim()
    }

    /// Total number of elements.
    pub fn num_elements(&self) -> usize {
        self.shape.num_elements()
    }

    /// Read-only view of the row-major buffer.
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Mutable view of the row-major buffer.
    pub fn data_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Element at a multi-index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for a bad index.
    pub fn get(&self, index: &[usize]) -> Result<T> {
        Ok(self.data[self.shape.flatten(index)?])
    }

    /// Sets the element at a multi-index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for a bad index.
    pub fn set(&mut self, index: &[usize], value: T) -> Result<()> {
        let off = self.shape.flatten(index)?;
        self.data[off] = value;
        Ok(())
    }

    /// Reshapes in place (metadata only; the buffer is untouched).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ElementCountMismatch`] if the element count
    /// changes.
    pub fn reshape(&mut self, dims: Vec<usize>) -> Result<()> {
        let shape = Shape::new(dims)?;
        if shape.num_elements() != self.data.len() {
            return Err(TensorError::ElementCountMismatch {
                expected: shape.num_elements(),
                got: self.data.len(),
            });
        }
        self.shape = shape;
        Ok(())
    }

    /// Returns a reshaped copy of the tensor (same linear order).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ElementCountMismatch`] if the element count
    /// changes.
    pub fn reshaped(&self, dims: Vec<usize>) -> Result<Self> {
        let mut t = self.clone();
        t.reshape(dims)?;
        Ok(t)
    }

    /// Returns a copy with axes permuted (data is physically reordered).
    ///
    /// `perm[k]` names the source axis that becomes output axis `k`, matching
    /// NumPy's `transpose` convention.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidPermutation`] for a bad permutation.
    pub fn permuted(&self, perm: &[usize]) -> Result<Self> {
        let out_shape = self.shape.permute(perm)?;
        let in_strides = self.shape.strides();
        let mut out = Tensor {
            shape: out_shape.clone(),
            data: vec![T::ZERO; self.data.len()],
        };
        // Walk the output in linear order, computing the matching input
        // offset incrementally (odometer) to avoid re-deriving indices.
        let ndim = perm.len();
        let mut out_idx = vec![0usize; ndim];
        let mut in_off = 0usize;
        let perm_strides: Vec<usize> = perm.iter().map(|&p| in_strides[p]).collect();
        for out_off in 0..self.data.len() {
            out.data[out_off] = self.data[in_off];
            // increment odometer over out_idx (row-major, last axis fastest)
            for k in (0..ndim).rev() {
                out_idx[k] += 1;
                in_off += perm_strides[k];
                if out_idx[k] < out_shape.dim(k) {
                    break;
                }
                in_off -= perm_strides[k] * out_shape.dim(k);
                out_idx[k] = 0;
            }
        }
        Ok(out)
    }

    /// Matrix transpose (fast path of [`Tensor::permuted`] for 2-D tensors).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::NotAMatrix`] for non-2-D tensors.
    pub fn transposed(&self) -> Result<Self> {
        if self.ndim() != 2 {
            return Err(TensorError::NotAMatrix { ndim: self.ndim() });
        }
        let (r, c) = (self.shape.dim(0), self.shape.dim(1));
        let mut data = vec![T::ZERO; self.data.len()];
        for i in 0..r {
            for j in 0..c {
                data[j * r + i] = self.data[i * c + j];
            }
        }
        Ok(Tensor {
            shape: Shape::matrix(c, r).expect("nonzero dims"),
            data,
        })
    }

    /// Number of rows (2-D tensors).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::NotAMatrix`] for non-2-D tensors.
    pub fn nrows(&self) -> Result<usize> {
        if self.ndim() != 2 {
            return Err(TensorError::NotAMatrix { ndim: self.ndim() });
        }
        Ok(self.shape.dim(0))
    }

    /// Number of columns (2-D tensors).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::NotAMatrix`] for non-2-D tensors.
    pub fn ncols(&self) -> Result<usize> {
        if self.ndim() != 2 {
            return Err(TensorError::NotAMatrix { ndim: self.ndim() });
        }
        Ok(self.shape.dim(1))
    }

    /// Copies a contiguous row range `[r0, r1)` of a matrix.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::NotAMatrix`] for non-2-D tensors or
    /// [`TensorError::InvalidArgument`] for a bad range.
    pub fn rows(&self, r0: usize, r1: usize) -> Result<Self> {
        let (r, c) = (self.nrows()?, self.ncols()?);
        if r0 >= r1 || r1 > r {
            return Err(TensorError::InvalidArgument {
                message: format!("row range {r0}..{r1} out of 0..{r}"),
            });
        }
        Ok(Tensor {
            shape: Shape::matrix(r1 - r0, c).expect("nonzero dims"),
            data: self.data[r0 * c..r1 * c].to_vec(),
        })
    }

    /// Copies a contiguous column range `[c0, c1)` of a matrix.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::NotAMatrix`] for non-2-D tensors or
    /// [`TensorError::InvalidArgument`] for a bad range.
    pub fn cols(&self, c0: usize, c1: usize) -> Result<Self> {
        let (r, c) = (self.nrows()?, self.ncols()?);
        if c0 >= c1 || c1 > c {
            return Err(TensorError::InvalidArgument {
                message: format!("column range {c0}..{c1} out of 0..{c}"),
            });
        }
        let w = c1 - c0;
        let mut data = Vec::with_capacity(r * w);
        for i in 0..r {
            data.extend_from_slice(&self.data[i * c + c0..i * c + c1]);
        }
        Ok(Tensor {
            shape: Shape::matrix(r, w).expect("nonzero dims"),
            data,
        })
    }

    /// One row of a matrix as a slice (no copy).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not a matrix or `i` is out of range.
    pub fn row(&self, i: usize) -> &[T] {
        let c = self.ncols().expect("matrix");
        &self.data[i * c..(i + 1) * c]
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(T) -> T) -> Self {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(T) -> T) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Elementwise sum.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, other: &Self) -> Result<Self> {
        self.zip_with(other, |a, b| a + b)
    }

    /// Elementwise difference.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn sub(&self, other: &Self) -> Result<Self> {
        self.zip_with(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn hadamard(&self, other: &Self) -> Result<Self> {
        self.zip_with(other, |a, b| a * b)
    }

    /// Elementwise combination with a binary closure.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn zip_with(&self, other: &Self, f: impl Fn(T, T) -> T) -> Result<Self> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: other.dims().to_vec(),
            });
        }
        Ok(Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// `self += alpha * other` (BLAS `axpy`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn axpy(&mut self, alpha: T, other: &Self) -> Result<()> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: other.dims().to_vec(),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Multiplies every element by `alpha`.
    pub fn scale(&mut self, alpha: T) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Returns the scaled copy `alpha * self`.
    pub fn scaled(&self, alpha: T) -> Self {
        let mut t = self.clone();
        t.scale(alpha);
        t
    }

    /// Sum of all elements.
    pub fn sum(&self) -> T {
        self.data.iter().copied().sum()
    }

    /// Frobenius norm (`sqrt(Σ x²)`), computed in `f64` for stability.
    pub fn frobenius_norm(&self) -> f64 {
        self.data
            .iter()
            .map(|v| {
                let x = v.to_f64();
                x * x
            })
            .sum::<f64>()
            .sqrt()
    }

    /// Largest absolute element, in `f64`.
    pub fn max_abs(&self) -> f64 {
        self.data
            .iter()
            .map(|v| v.to_f64().abs())
            .fold(0.0, f64::max)
    }

    /// Index (flat) and value of the maximum element.
    pub fn argmax(&self) -> (usize, T) {
        let mut best = (0usize, self.data[0]);
        for (i, &v) in self.data.iter().enumerate() {
            if v > best.1 {
                best = (i, v);
            }
        }
        best
    }

    /// True when every element differs from `other` by at most `tol`
    /// (absolute, in `f64`).
    pub fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        self.shape == other.shape
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a.to_f64() - b.to_f64()).abs() <= tol)
    }

    /// Relative Frobenius distance `‖self − other‖_F / max(‖other‖_F, 1e-30)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn relative_error(&self, other: &Self) -> Result<f64> {
        let diff = self.sub(other)?;
        Ok(diff.frobenius_norm() / other.frobenius_norm().max(1e-30))
    }

    /// Converts the element type (e.g. `f64` reference → `f32` training).
    pub fn cast<U: Scalar>(&self) -> Tensor<U> {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|v| U::from_f64(v.to_f64())).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iota(dims: Vec<usize>) -> Tensor<f64> {
        let n: usize = dims.iter().product();
        Tensor::from_vec(dims, (0..n).map(|v| v as f64).collect()).unwrap()
    }

    #[test]
    fn from_vec_validates_len() {
        assert!(Tensor::<f32>::from_vec(vec![2, 2], vec![1.0; 3]).is_err());
        assert!(Tensor::<f32>::from_vec(vec![2, 2], vec![1.0; 4]).is_ok());
    }

    #[test]
    fn get_set_roundtrip() {
        let mut t = Tensor::<f64>::zeros(vec![3, 4]);
        t.set(&[2, 1], 7.5).unwrap();
        assert_eq!(t.get(&[2, 1]).unwrap(), 7.5);
        assert_eq!(t.get(&[0, 0]).unwrap(), 0.0);
        assert!(t.get(&[3, 0]).is_err());
    }

    #[test]
    fn eye_is_identity() {
        let i = Tensor::<f64>::eye(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i.get(&[r, c]).unwrap(), if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn reshape_preserves_linear_order() {
        let t = iota(vec![2, 6]);
        let r = t.reshaped(vec![3, 4]).unwrap();
        assert_eq!(r.get(&[2, 3]).unwrap(), 11.0);
        assert!(t.reshaped(vec![5, 5]).is_err());
    }

    #[test]
    fn permuted_matches_manual_transpose() {
        let t = iota(vec![2, 3]);
        let p = t.permuted(&[1, 0]).unwrap();
        let tr = t.transposed().unwrap();
        assert_eq!(p, tr);
        assert_eq!(p.get(&[2, 1]).unwrap(), t.get(&[1, 2]).unwrap());
    }

    #[test]
    fn permuted_3d_moves_elements_correctly() {
        let t = iota(vec![2, 3, 4]);
        let p = t.permuted(&[2, 0, 1]).unwrap();
        assert_eq!(p.dims(), &[4, 2, 3]);
        for a in 0..2 {
            for b in 0..3 {
                for c in 0..4 {
                    assert_eq!(
                        p.get(&[c, a, b]).unwrap(),
                        t.get(&[a, b, c]).unwrap(),
                        "mismatch at ({a},{b},{c})"
                    );
                }
            }
        }
    }

    #[test]
    fn double_permute_is_identity() {
        let t = iota(vec![3, 4, 5]);
        let p = t.permuted(&[1, 2, 0]).unwrap();
        // inverse of [1,2,0] is [2,0,1]
        let back = p.permuted(&[2, 0, 1]).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn rows_and_cols_slices() {
        let t = iota(vec![4, 3]);
        let r = t.rows(1, 3).unwrap();
        assert_eq!(r.dims(), &[2, 3]);
        assert_eq!(r.get(&[0, 0]).unwrap(), 3.0);
        let c = t.cols(1, 2).unwrap();
        assert_eq!(c.dims(), &[4, 1]);
        assert_eq!(c.get(&[2, 0]).unwrap(), 7.0);
        assert!(t.rows(3, 3).is_err());
        assert!(t.cols(0, 4).is_err());
    }

    #[test]
    fn row_returns_borrowed_slice() {
        let t = iota(vec![2, 3]);
        assert_eq!(t.row(1), &[3.0, 4.0, 5.0]);
    }

    #[test]
    fn elementwise_ops() {
        let a = iota(vec![2, 2]);
        let b = Tensor::filled(vec![2, 2], 2.0).unwrap();
        assert_eq!(a.add(&b).unwrap().data(), &[2.0, 3.0, 4.0, 5.0]);
        assert_eq!(a.sub(&b).unwrap().data(), &[-2.0, -1.0, 0.0, 1.0]);
        assert_eq!(a.hadamard(&b).unwrap().data(), &[0.0, 2.0, 4.0, 6.0]);
        let bad = Tensor::<f64>::zeros(vec![3]);
        assert!(a.add(&bad).is_err());
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = iota(vec![3]);
        let b = Tensor::filled(vec![3], 1.0).unwrap();
        a.axpy(2.0, &b).unwrap();
        assert_eq!(a.data(), &[2.0, 3.0, 4.0]);
        a.scale(0.5);
        assert_eq!(a.data(), &[1.0, 1.5, 2.0]);
    }

    #[test]
    fn norms_and_argmax() {
        let t = Tensor::<f64>::from_vec(vec![2, 2], vec![3.0, -4.0, 0.0, 0.0]).unwrap();
        assert!((t.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(t.max_abs(), 4.0);
        assert_eq!(t.argmax(), (0, 3.0));
        assert_eq!(t.sum(), -1.0);
    }

    #[test]
    fn approx_and_relative_error() {
        let a = iota(vec![2, 2]);
        let mut b = a.clone();
        b.data_mut()[0] += 1e-9;
        assert!(a.approx_eq(&b, 1e-8));
        assert!(!a.approx_eq(&b, 1e-10));
        assert!(a.relative_error(&b).unwrap() < 1e-9);
    }

    #[test]
    fn cast_roundtrips_within_f32_precision() {
        let a = iota(vec![2, 3]);
        let f: Tensor<f32> = a.cast();
        let back: Tensor<f64> = f.cast();
        assert!(a.approx_eq(&back, 1e-6));
    }

    #[test]
    fn map_applies_elementwise() {
        let a = iota(vec![2]);
        let m = a.map(|v| v * v);
        assert_eq!(m.data(), &[0.0, 1.0]);
        let mut b = a.clone();
        b.map_inplace(|v| v + 1.0);
        assert_eq!(b.data(), &[1.0, 2.0]);
    }
}
