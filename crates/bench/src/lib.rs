//! Experiment harness: regenerates every table and figure of the TIE
//! paper's evaluation (§5) from the reproduction stack.
//!
//! Each experiment lives in [`experiments`] as a `run()` function
//! returning a [`report::Report`]; the `src/bin/` binaries are thin
//! wrappers that print it (and optionally dump JSON next to the text).
//! `cargo run -p tie-bench --release --bin <experiment>`; the `all_experiments`
//! binary runs the full battery and writes `EXPERIMENTS`-ready output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod measure;
pub mod report;
