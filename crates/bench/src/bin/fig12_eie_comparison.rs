//! Regenerates the paper's Fig. 12 (EIE vs TIE on FC6/FC7).
fn main() {
    match tie_bench::experiments::comparisons::fig12() {
        Ok(report) => {
            println!("{report}");
            if let Err(e) = report.save_json(std::path::Path::new("target/experiments")) {
                eprintln!("warning: could not save JSON: {e}");
            }
        }
        Err(e) => {
            eprintln!("experiment failed: {e}");
            std::process::exit(1);
        }
    }
}
