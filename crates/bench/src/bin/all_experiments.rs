//! Runs the full experiment battery in paper order and writes JSON
//! records to `target/experiments/`.
fn main() {
    match tie_bench::experiments::run_all() {
        Ok(reports) => {
            for report in &reports {
                println!("{report}");
                println!();
                if let Err(e) = report.save_json(std::path::Path::new("target/experiments")) {
                    eprintln!("warning: could not save JSON for {}: {e}", report.id);
                }
            }
            println!("{} experiments completed.", reports.len());
        }
        Err(e) => {
            eprintln!("experiment battery failed: {e}");
            std::process::exit(1);
        }
    }
}
