//! Regenerates the quantization-width ablation (extension).
fn main() {
    match tie_bench::experiments::ablations::quant_sweep() {
        Ok(report) => {
            println!("{report}");
            if let Err(e) = report.save_json(std::path::Path::new("target/experiments")) {
                eprintln!("warning: could not save JSON: {e}");
            }
        }
        Err(e) => {
            eprintln!("experiment failed: {e}");
            std::process::exit(1);
        }
    }
}
