//! Regenerates the Sec. 1/3.2 memory-traffic analysis.
fn main() {
    match tie_bench::experiments::flexibility::analysis_memory() {
        Ok(report) => {
            println!("{report}");
            if let Err(e) = report.save_json(std::path::Path::new("target/experiments")) {
                eprintln!("warning: could not save JSON: {e}");
            }
        }
        Err(e) => {
            eprintln!("experiment failed: {e}");
            std::process::exit(1);
        }
    }
}
