//! Regenerates the paper's Table 9 (Eyeriss comparison on VGG CONV).
fn main() {
    match tie_bench::experiments::comparisons::table9() {
        Ok(report) => {
            println!("{report}");
            if let Err(e) = report.save_json(std::path::Path::new("target/experiments")) {
                eprintln!("warning: could not save JSON: {e}");
            }
        }
        Err(e) => {
            eprintln!("experiment failed: {e}");
            std::process::exit(1);
        }
    }
}
