//! Report formatting: aligned text tables plus machine-readable JSON.

use serde::Serialize;
use std::fmt;
use std::path::Path;

/// A formatted experiment report.
#[derive(Debug, Clone, Serialize)]
pub struct Report {
    /// Experiment identifier (e.g. `"table4"`).
    pub id: String,
    /// Human title.
    pub title: String,
    /// What the paper reports (for side-by-side reading).
    pub paper_claim: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Table rows.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (substitutions, deviations, seeds).
    pub notes: Vec<String>,
}

impl Report {
    /// New empty report.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        paper_claim: impl Into<String>,
    ) -> Self {
        Report {
            id: id.into(),
            title: title.into(),
            paper_claim: paper_claim.into(),
            headers: Vec::new(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Sets the column headers.
    pub fn headers<I: IntoIterator<Item = S>, S: Into<String>>(&mut self, h: I) -> &mut Self {
        self.headers = h.into_iter().map(Into::into).collect();
        self
    }

    /// Appends one row.
    pub fn row<I: IntoIterator<Item = S>, S: Into<String>>(&mut self, r: I) -> &mut Self {
        self.rows.push(r.into_iter().map(Into::into).collect());
        self
    }

    /// Appends a note.
    pub fn note(&mut self, n: impl Into<String>) -> &mut Self {
        self.notes.push(n.into());
        self
    }

    /// Writes the JSON form to `dir/<id>.json`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem and serialization errors.
    pub fn save_json(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.id));
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        std::fs::write(path, json)
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== {} [{}] ===", self.title, self.id)?;
        writeln!(f, "paper: {}", self.paper_claim)?;
        writeln!(f)?;
        // Column widths.
        let ncols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let print_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:<w$}  "));
            }
            writeln!(f, "{}", line.trim_end())
        };
        if !self.headers.is_empty() {
            print_row(f, &self.headers)?;
            let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
            writeln!(f, "{}", "-".repeat(total))?;
        }
        for row in &self.rows {
            print_row(f, row)?;
        }
        if !self.notes.is_empty() {
            writeln!(f)?;
            for n in &self.notes {
                writeln!(f, "note: {n}")?;
            }
        }
        Ok(())
    }
}

/// Formats a float with sensible precision for tables.
pub fn fnum(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else if v.abs() >= 0.01 {
        format!("{v:.3}")
    } else {
        format!("{v:.2e}")
    }
}

/// Formats a ratio as `"N.NNx"`.
pub fn ratio(v: f64) -> String {
    if v >= 1000.0 {
        format!("{v:.0}x")
    } else {
        format!("{v:.2}x")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_aligns_columns() {
        let mut r = Report::new("t", "Title", "claim");
        r.headers(["a", "long-header"]);
        r.row(["x", "1"]);
        r.row(["yyyy", "2"]);
        let s = r.to_string();
        assert!(s.contains("Title"));
        assert!(s.contains("long-header"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    fn fnum_scales_precision() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(12345.6), "12346");
        assert_eq!(fnum(12.34), "12.3");
        assert_eq!(fnum(0.5), "0.500");
        assert_eq!(fnum(0.0001), "1.00e-4");
    }

    #[test]
    fn ratio_formats() {
        assert_eq!(ratio(7.216), "7.22x");
        assert_eq!(ratio(50972.0), "50972x");
    }

    #[test]
    fn json_roundtrip_to_disk() {
        let dir = std::env::temp_dir().join("tie-report-test");
        let mut r = Report::new("tj", "T", "c");
        r.headers(["a"]).row(["1"]).note("n");
        r.save_json(&dir).unwrap();
        let content = std::fs::read_to_string(dir.join("tj.json")).unwrap();
        assert!(content.contains("\"id\": \"tj\""));
    }
}
