//! Shared measurement helpers used by the experiment modules.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tie_baselines::eie::{CscMatrix, EieModel, EieRunStats};
use tie_core::InferencePlan;
use tie_energy::TieAreaPowerModel;
use tie_sim::{RunStats, TieAccelerator, TieConfig};
use tie_tensor::{init, Result, Tensor};
use tie_tt::{TtMatrix, TtShape};
use tie_workloads::sparsity::SparsityProfile;

/// One TIE measurement on a layer workload.
#[derive(Debug, Clone)]
pub struct TieMeasurement {
    /// Full simulator statistics.
    pub stats: RunStats,
    /// Latency in seconds at the configured clock.
    pub latency_s: f64,
    /// Dense-equivalent ops of the layer (`2·M·N`).
    pub dense_ops: u64,
    /// Dense-equivalent throughput, ops/s.
    pub equivalent_ops_per_sec: f64,
    /// MAC-array utilization.
    pub utilization: f64,
    /// Modeled power at that utilization, mW.
    pub power_mw: f64,
    /// Modeled die area, mm².
    pub area_mm2: f64,
}

/// Runs the cycle-accurate simulator on a randomly-weighted instance of
/// `shape` (performance depends only on the layout) and derives the
/// paper's figures of merit.
///
/// # Errors
///
/// Propagates simulator errors (capacity, shapes).
pub fn measure_tie_layer(config: &TieConfig, shape: &TtShape, seed: u64) -> Result<TieMeasurement> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let matrix = TtMatrix::<f64>::random(&mut rng, shape, 0.5)?;
    let mut tie = TieAccelerator::new(*config)?;
    let loaded = tie.load_layer(matrix)?;
    let x: Tensor<f64> = init::uniform(&mut rng, vec![shape.num_cols()], 1.0);
    let (_, stats) = tie.run(&loaded, &x, false)?;
    let latency_s = stats.latency_seconds(config.freq_mhz);
    let dense_ops = loaded.plan().dense_equivalent_ops();
    let utilization = stats.utilization(config.n_pe, config.n_mac);
    let model = tie_power_model(config);
    Ok(TieMeasurement {
        equivalent_ops_per_sec: stats.equivalent_ops_per_sec(dense_ops, config.freq_mhz),
        latency_s,
        dense_ops,
        utilization,
        power_mw: model.power_at_utilization(utilization).total(),
        area_mm2: model.area().total(),
        stats,
    })
}

/// Converts the simulator's word/element counters into the crate-neutral
/// [`tie_energy::Activity`] event record (weight words expand to
/// `n_mac` elements each).
pub fn activity_of(stats: &RunStats, n_mac: usize) -> tie_energy::Activity {
    tie_energy::Activity {
        macs: stats.macs(),
        weight_elem_reads: stats.weight_word_reads() * n_mac as u64,
        act_elem_reads: stats.act_reads(),
        act_elem_writes: stats.act_writes() * 16, // write words are N_PE-wide
        cycles: stats.cycles(),
    }
}

/// The area/power model instance matching a simulator configuration.
pub fn tie_power_model(config: &TieConfig) -> TieAreaPowerModel {
    TieAreaPowerModel::new(
        config.n_pe * config.n_mac,
        (config.weight_sram_bytes + 2 * config.working_sram_bytes) as f64 / 1024.0,
        config.freq_mhz,
    )
}

/// Analytic cycle count for a *batched* compact-scheme pass (all `batch`
/// matrix-vector products interleaved as extra `V` columns) — the CONV
/// execution model of Fig. 3, where every output pixel is one column.
/// `Σ_h ceil(R_h/N_MAC) · ceil(W_h·batch/N_PE) · C_h`.
pub fn batched_cycles(plan: &InferencePlan, batch: usize, n_pe: usize, n_mac: usize) -> u64 {
    plan.stages()
        .iter()
        .map(|s| {
            (s.gtilde_rows.div_ceil(n_mac) * (s.v_cols * batch).div_ceil(n_pe) * s.gtilde_cols)
                as u64
        })
        .sum()
}

/// One EIE measurement on a sparse layer.
#[derive(Debug, Clone, Copy)]
pub struct EieMeasurement {
    /// Cycle-model statistics.
    pub stats: EieRunStats,
    /// Latency in seconds at `freq_mhz`.
    pub latency_s: f64,
    /// Dense-equivalent throughput, ops/s.
    pub equivalent_ops_per_sec: f64,
}

/// Runs the EIE model on a synthetic sparse layer of the published
/// density profile.
///
/// # Errors
///
/// Propagates model errors (cannot occur for consistent arguments).
pub fn measure_eie(
    rows: usize,
    cols: usize,
    profile: &SparsityProfile,
    freq_mhz: f64,
    seed: u64,
) -> Result<EieMeasurement> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let w = CscMatrix::random(&mut rng, rows, cols, profile.weight_density, 16);
    let model = EieModel::default();
    let stats = model.estimate(&mut rng, &w, profile.act_density)?;
    let latency_s = stats.cycles as f64 / (freq_mhz * 1e6);
    let dense_ops = 2.0 * rows as f64 * cols as f64;
    Ok(EieMeasurement {
        stats,
        latency_s,
        equivalent_ops_per_sec: dense_ops / latency_s,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tie_measurement_on_fc7_is_consistent() {
        let cfg = TieConfig::default();
        let shape = TtShape::uniform_rank(vec![4; 6], vec![4; 6], 4).unwrap();
        let m = measure_tie_layer(&cfg, &shape, 1).unwrap();
        assert!(m.latency_s > 0.0);
        assert!(m.utilization > 0.0 && m.utilization <= 1.0);
        assert!((m.area_mm2 - 1.744).abs() < 0.01);
        assert!(m.power_mw <= 154.9);
        // equivalent throughput = dense_ops / latency
        let expect = m.dense_ops as f64 / m.latency_s;
        assert!((m.equivalent_ops_per_sec - expect).abs() / expect < 1e-12);
    }

    #[test]
    fn batched_cycles_scale_roughly_linearly() {
        let shape = TtShape::uniform_rank(vec![4, 4], vec![4, 4], 4).unwrap();
        let plan = InferencePlan::new(&shape).unwrap();
        let one = batched_cycles(&plan, 1, 16, 16);
        let many = batched_cycles(&plan, 64, 16, 16);
        assert!(many > one);
        // Large batches amortize tiling padding: ≤ 64× the single cost.
        assert!(many <= 64 * one);
    }

    #[test]
    fn eie_measurement_fc7_scale() {
        let m = measure_eie(512, 512, &tie_workloads::sparsity::VGG_FC7, 800.0, 7).unwrap();
        assert!(m.stats.cycles > 0);
        assert!(m.equivalent_ops_per_sec > 0.0);
    }
}
