//! Dense-vs-TT training analogs for the accuracy columns of Tables 1–3.
//!
//! The paper's accuracy numbers come from ImageNet / CIFAR-10 / Youtube
//! Celebrities training runs quoted from prior work. What they establish
//! is a *comparison*: TT-compressed layers match dense accuracy on CNNs
//! (small loss) and outperform plain RNNs on high-dimensional sequence
//! inputs. These harnesses run the same comparisons on deterministic
//! synthetic datasets at tractable scale (substitution documented in
//! DESIGN.md / EXPERIMENTS.md).

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tie_nn::data::{gaussian_blobs, noisy_sequences, Dataset};
use tie_nn::rnn::{LstmCell, SequenceClassifier};
use tie_nn::zoo;
use tie_nn::{
    softmax_cross_entropy, Conv2d, Dense, Flatten, Layer, MaxPool2d, Relu, Sequential, Sgd,
    Trainable, TtConv2d, TtDense,
};
use tie_tensor::{Result, Tensor};
use tie_tt::TtShape;

/// Outcome of one dense-vs-TT accuracy comparison.
#[derive(Debug, Clone, Copy)]
pub struct AccuracyComparison {
    /// Test accuracy of the dense baseline.
    pub dense_acc: f64,
    /// Test accuracy of the TT model.
    pub tt_acc: f64,
    /// Trainable-parameter ratio dense/TT of the compressed layer.
    pub layer_cr: f64,
}

fn eval_acc(net: &mut Sequential, data: &Dataset) -> Result<f64> {
    let logits = net.forward(&data.features)?;
    Ok(tie_nn::loss::accuracy(&logits, &data.labels))
}

fn train_net(net: &mut Sequential, train: &Dataset, epochs: usize, lr: f32) -> Result<()> {
    let mut opt = Sgd::with_momentum(lr, 0.9);
    for _ in 0..epochs {
        let logits = net.forward(&train.features)?;
        let loss = softmax_cross_entropy(&logits, &train.labels)?;
        net.zero_grads();
        net.backward(&loss.grad)?;
        opt.step(net);
    }
    Ok(())
}

/// Table 1 analog: dense vs TT fully-connected classifier on Gaussian
/// clusters (an "FC-dominated" model).
///
/// # Errors
///
/// Propagates training shape errors (none for the fixed configuration).
pub fn fc_comparison(seed: u64) -> Result<AccuracyComparison> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let data = gaussian_blobs(&mut rng, 4, 64, 60, 0.55);
    let (train, test) = data.split(0.67);
    let shape = TtShape::uniform_rank(vec![4, 4, 4], vec![4, 4, 4], 4)?;

    let mut dense = Sequential::new();
    dense.push(Dense::new(&mut rng, 64, 64));
    dense.push(Relu::new());
    dense.push(Dense::new(&mut rng, 64, 4));
    train_net(&mut dense, &train, 120, 0.05)?;

    let mut tt = Sequential::new();
    let tt_layer = TtDense::new(&mut rng, &shape);
    let layer_cr = shape.dense_params() as f64 / shape.num_params() as f64;
    tt.push(tt_layer);
    tt.push(Relu::new());
    tt.push(Dense::new(&mut rng, 64, 4));
    train_net(&mut tt, &train, 120, 0.05)?;

    Ok(AccuracyComparison {
        dense_acc: eval_acc(&mut dense, &test)?,
        tt_acc: eval_acc(&mut tt, &test)?,
        layer_cr,
    })
}

/// Table 2 analog: dense vs TT convolutional classifier on image-shaped
/// Gaussian patterns (a "CONV-dominated" model).
///
/// # Errors
///
/// Propagates training shape errors (none for the fixed configuration).
pub fn conv_comparison(seed: u64) -> Result<AccuracyComparison> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // 1×8×8 images, 3 classes.
    let data = gaussian_blobs(&mut rng, 3, 64, 50, 0.7);
    let (train, test) = data.split(0.6);
    let as_images =
        |d: &Dataset| -> Result<Tensor<f32>> { d.features.reshaped(vec![d.len(), 1, 8, 8]) };
    let train_x = as_images(&train)?;
    let test_x = as_images(&test)?;
    let geo = tie_nn::conv::ConvGeometry {
        in_channels: 1,
        out_channels: 8,
        kernel: 3,
        stride: 1,
        padding: 1,
    };
    // TT layout of the conv matrix: 8 = 4·2 rows, 9 = 3·3 cols.
    let tt_shape = TtShape::uniform_rank(vec![4, 2], vec![3, 3], 2)?;
    let layer_cr = tt_shape.dense_params() as f64 / tt_shape.num_params() as f64;

    let run = |rng: &mut ChaCha8Rng, use_tt: bool| -> Result<f64> {
        let mut net = Sequential::new();
        if use_tt {
            net.push(TtConv2d::new(rng, geo, &tt_shape)?);
        } else {
            net.push(Conv2d::new(rng, geo));
        }
        net.push(Relu::new());
        net.push(MaxPool2d::new(2, 2));
        net.push(Flatten::new());
        net.push(Dense::new(rng, 8 * 4 * 4, 3));
        let mut opt = Sgd::with_momentum(0.03, 0.9);
        for _ in 0..60 {
            let logits = net.forward(&train_x)?;
            let loss = softmax_cross_entropy(&logits, &train.labels)?;
            net.zero_grads();
            net.backward(&loss.grad)?;
            opt.step(&mut net);
        }
        let logits = net.forward(&test_x)?;
        Ok(tie_nn::loss::accuracy(&logits, &test.labels))
    };
    let dense_acc = run(&mut rng, false)?;
    let tt_acc = run(&mut rng, true)?;
    Ok(AccuracyComparison {
        dense_acc,
        tt_acc,
        layer_cr,
    })
}

/// Table 3 analog: plain LSTM vs TT-LSTM on high-dimensional noisy
/// sequences (3840-d frames, as raw video frames are in \[77\]). The paper
/// reports TT *ahead* of dense on natural video — a data-regime effect a
/// linear synthetic task cannot recreate (dense is Bayes-optimal for a
/// class-direction signal); what this harness establishes is **parity at
/// ~85× fewer input-projection parameters**, the compression half of the
/// claim (deviation documented in EXPERIMENTS.md).
///
/// # Errors
///
/// Propagates training shape errors (none for the fixed configuration).
pub fn rnn_comparison(seed: u64) -> Result<AccuracyComparison> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let (classes, t_len, dim, hidden) = (3usize, 5usize, 3840usize, 8usize);
    let all = noisy_sequences(&mut rng, classes, t_len, 16, dim, 1.0);
    let (train, test) = all.split(6.0 / 16.0);
    // 4H = 32 = 2·4·4 ; 3840 = 12·16·20.
    let shape = TtShape::uniform_rank(vec![2, 4, 4], vec![12, 16, 20], 4)?;
    let layer_cr = (dim * 4 * hidden) as f64 / shape.num_params() as f64;

    let mut run = |use_tt: bool| -> Result<f64> {
        let cell = if use_tt {
            LstmCell::tt(&mut rng, &shape, hidden)?
        } else {
            LstmCell::dense(&mut rng, dim, hidden)
        };
        let mut clf = SequenceClassifier::new(&mut rng, cell, classes);
        let mut opt = Sgd::with_momentum(0.05, 0.9);
        for _ in 0..40 {
            let logits = clf.forward(&train.sequences)?;
            let loss = softmax_cross_entropy(&logits, &train.labels)?;
            clf.zero_grads();
            clf.backward(&loss.grad)?;
            opt.step(&mut clf);
        }
        let logits = clf.forward(&test.sequences)?;
        Ok(tie_nn::loss::accuracy(&logits, &test.labels))
    };
    let dense_acc = run(false)?;
    let tt_acc = run(true)?;
    Ok(AccuracyComparison {
        dense_acc,
        tt_acc,
        layer_cr,
    })
}

/// Re-exported for Table 1's compression side.
pub use zoo::vgg16_tt_compression;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fc_comparison_both_models_learn() {
        let c = fc_comparison(42).unwrap();
        assert!(c.dense_acc > 0.7, "dense acc {}", c.dense_acc);
        assert!(c.tt_acc > 0.7, "tt acc {}", c.tt_acc);
        assert!(c.layer_cr > 1.0);
    }
}
