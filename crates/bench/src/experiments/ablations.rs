//! Ablation studies beyond the paper's tables: PE-array scaling,
//! quantization width, and working-SRAM banking — the design choices
//! DESIGN.md calls out.

use crate::measure::{measure_tie_layer, tie_power_model};
use crate::report::{fnum, Report};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tie_quant::{error_stats, QFormat};
use tie_sim::{QuantConfig, TieAccelerator, TieConfig};
use tie_tensor::{init, Result, Tensor};
use tie_tt::{TtMatrix, TtShape};
use tie_workloads::sweep::PE_SWEEP;

/// PE-count scaling on VGG-FC7: throughput, utilization, and the
/// efficiency frontier (why the paper picked 16×16).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn pe_sweep() -> Result<Report> {
    let shape = TtShape::uniform_rank(vec![4; 6], vec![4; 6], 4)?;
    let mut r = Report::new(
        "ablation_pe",
        "Ablation: PE-array scaling on VGG-FC7",
        "(extension) the prototype is 16 PEs x 16 MACs",
    );
    r.headers([
        "PEs x MACs",
        "cycles",
        "eq. TOPS",
        "utilization",
        "power (mW)",
        "TOPS/W",
        "area (mm2)",
    ]);
    for &n in &PE_SWEEP {
        let cfg = TieConfig {
            n_pe: n,
            n_mac: n,
            working_sram_banks: n.max(16),
            ..TieConfig::default()
        };
        let m = measure_tie_layer(&cfg, &shape, 1000 + n as u64)?;
        let model = tie_power_model(&cfg);
        let tops = m.equivalent_ops_per_sec / 1e12;
        r.row([
            format!("{n}x{n}"),
            m.stats.cycles().to_string(),
            fnum(tops),
            format!("{:.0}%", m.utilization * 100.0),
            fnum(m.power_mw),
            fnum(tops / (m.power_mw / 1e3)),
            fnum(model.area().total()),
        ]);
    }
    r.note("throughput grows sub-quadratically with the array (tiling fragmentation on r=4 stage matrices); 16x16 sits near the knee of TOPS/W");
    Ok(r)
}

/// Quantization-width sweep: output SQNR of the bit-accurate datapath vs
/// weight fraction bits, on VGG-FC7.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn quant_sweep() -> Result<Report> {
    let shape = TtShape::uniform_rank(vec![4; 6], vec![4; 6], 4)?;
    let mut rng = ChaCha8Rng::seed_from_u64(1100);
    let matrix = TtMatrix::<f64>::random(&mut rng, &shape, 0.5)?;
    let x: Tensor<f64> = init::uniform(&mut rng, vec![4096], 1.0);
    let mut r = Report::new(
        "ablation_quant",
        "Ablation: datapath precision on VGG-FC7",
        "(extension) the prototype quantizes to 16 bits; the sweep shows the margin",
    );
    r.headers([
        "weight frac bits",
        "SQNR (dB)",
        "max abs error",
        "saturations",
    ]);
    for frac in [4u32, 6, 8, 10, 12, 14] {
        let cfg = TieConfig {
            quant: QuantConfig {
                weight_format: QFormat::new(frac)?,
                activation_format: QFormat::new(frac.min(12))?,
                calibrate_activations: false,
                calibrate_weights: false,
                ..QuantConfig::default()
            },
            ..TieConfig::default()
        };
        let mut tie = TieAccelerator::new(cfg)?;
        let loaded = tie.load_layer(matrix.clone())?;
        let (y_ref, _) = loaded.reference().matvec(&x)?;
        let (y, stats) = tie.run(&loaded, &x, false)?;
        let s = error_stats(&y, &y_ref)?;
        r.row([
            frac.to_string(),
            fnum(s.sqnr_db),
            fnum(s.max_abs_error),
            stats.saturations().to_string(),
        ]);
    }
    r.note("with calibration disabled, coarse formats visibly degrade SQNR and eventually saturate — quantifying the headroom the 16-bit choice buys");
    Ok(r)
}

/// SRAM-sizing design-space study: which Table 4 workloads fit at which
/// weight/working SRAM capacities — the rationale behind Table 5's
/// 16 KB / 2×384 KB budgets (§3.2).
///
/// # Errors
///
/// Propagates simulator errors other than capacity rejections (which are
/// the data points here).
pub fn sram_sweep() -> Result<Report> {
    let mut r = Report::new(
        "ablation_sram",
        "Ablation: SRAM sizing vs workload feasibility",
        "(extension) Table 5 budgets: 16 KB weight + 2 x 384 KB working SRAM",
    );
    let sizes_kb = [(8usize, 96usize), (8, 192), (16, 192), (16, 384), (32, 768)];
    let mut headers = vec!["weight/working (KB)".to_string()];
    headers.extend(
        tie_workloads::table4_benchmarks()
            .iter()
            .map(|b| b.name.to_string()),
    );
    r.headers(headers);
    for (wkb, akb) in sizes_kb {
        let cfg = TieConfig {
            weight_sram_bytes: wkb * 1024,
            working_sram_bytes: akb * 1024,
            ..TieConfig::default()
        };
        let mut cells = vec![format!("{wkb} / 2x{akb}")];
        for (i, b) in tie_workloads::table4_benchmarks().iter().enumerate() {
            match measure_tie_layer(&cfg, &b.shape, 1200 + (wkb + akb + i) as u64) {
                Ok(m) => cells.push(format!("{} cyc", m.stats.cycles())),
                Err(tie_tensor::TensorError::InvalidArgument { .. }) => {
                    cells.push("does not fit".to_string())
                }
                Err(e) => return Err(e),
            }
        }
        r.row(cells);
    }
    r.note("the Table 5 sizing (16/384) is the smallest sweep point that runs all four benchmarks — smaller working SRAMs reject VGG-FC6's 100k-element peak intermediate, smaller weight SRAMs reject the padded core footprints");
    Ok(r)
}

/// Pipeline-overhead sensitivity: how much the Table-8 style throughput
/// depends on the idealized zero fill/drain assumption.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn overhead_sweep() -> Result<Report> {
    let shape = TtShape::uniform_rank(vec![4; 6], vec![4; 6], 4)?;
    let mut r = Report::new(
        "ablation_overhead",
        "Ablation: pipeline fill/drain overhead per tile pass (VGG-FC7)",
        "(extension) the paper's Fig. 7 schedule assumes steady state; this bounds the error of that assumption",
    );
    r.headers([
        "overhead (cyc/pass)",
        "cycles",
        "eq. TOPS",
        "throughput loss",
    ]);
    let mut base_tops = None;
    for overhead in [0u64, 1, 2, 4, 8] {
        let cfg = TieConfig {
            pass_overhead_cycles: overhead,
            ..TieConfig::default()
        };
        let m = measure_tie_layer(&cfg, &shape, 1300 + overhead)?;
        let tops = m.equivalent_ops_per_sec / 1e12;
        let base = *base_tops.get_or_insert(tops);
        r.row([
            overhead.to_string(),
            m.stats.cycles().to_string(),
            fnum(tops),
            format!("{:.1}%", 100.0 * (1.0 - tops / base)),
        ]);
    }
    r.note("FC7's stage matrices are short (N_Gcol = 4-16 cycles per pass), so per-pass overhead bites quickly — quantifying how far the idealized model could sit above silicon");
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_sweep_is_monotone() {
        let r = overhead_sweep().unwrap();
        let tops: Vec<f64> = r.rows.iter().map(|row| row[2].parse().unwrap()).collect();
        assert!(tops.windows(2).all(|w| w[0] >= w[1]), "{tops:?}");
    }

    #[test]
    fn quant_sweep_sqnr_is_monotone_in_precision() {
        let r = quant_sweep().unwrap();
        let sqnr: Vec<f64> = r
            .rows
            .iter()
            .map(|row| row[1].parse::<f64>().unwrap_or(f64::INFINITY))
            .collect();
        assert!(
            sqnr.windows(2).all(|w| w[0] <= w[1] + 3.0),
            "SQNR should broadly improve with precision: {sqnr:?}"
        );
    }
}
