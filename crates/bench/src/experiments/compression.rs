//! Tables 1–4: compression ratios and the accuracy analogs.

use crate::experiments::accuracy;
use crate::report::{ratio, Report};
use tie_nn::zoo;
use tie_tensor::Result;
use tie_workloads::table4_benchmarks;

/// Table 1: FC-dominated CNN (TT-VGG-16) compression + accuracy analog.
///
/// # Errors
///
/// Propagates training errors (none expected for the fixed setup).
pub fn table1() -> Result<Report> {
    let mut r = Report::new(
        "table1",
        "Table 1: FC-dominated CNN (TT-VGG-16 on ImageNet)",
        "VGG-16 69.1% vs TT-VGG-16 67.8%; CR 30.9x (FC layers), 7.4x (overall)",
    );
    let net = zoo::vgg16_tt_compression();
    let fc_cr = zoo::vgg16_fc_group_ratio(&net);
    let overall = net.overall_ratio();
    let acc = accuracy::fc_comparison(42)?;
    r.headers([
        "model",
        "accuracy (synthetic analog)",
        "CR for FC layers",
        "CR overall",
    ]);
    r.row([
        "dense baseline".to_string(),
        format!("{:.1}%", acc.dense_acc * 100.0),
        "1x".into(),
        "1x".into(),
    ]);
    r.row([
        "TT model".to_string(),
        format!("{:.1}%", acc.tt_acc * 100.0),
        ratio(fc_cr),
        ratio(overall),
    ]);
    r.note(format!(
        "compression computed from the paper's exact §2.3 layouts: FC CR {:.1}x (paper 30.9x), overall {:.2}x (paper 7.4x)",
        fc_cr, overall
    ));
    r.note(format!(
        "accuracy analog: 4-class 64-d Gaussian clusters, dense 64-64-4 MLP vs TT(64->64, d=3, r=4, layer CR {:.0}x) — ImageNet training is substituted per DESIGN.md",
        acc.layer_cr
    ));
    Ok(r)
}

/// Table 2: CONV-dominated CNN compression + accuracy analog.
///
/// # Errors
///
/// Propagates training errors (none expected for the fixed setup).
pub fn table2() -> Result<Report> {
    let mut r = Report::new(
        "table2",
        "Table 2: CONV-dominated CNN on CIFAR-10",
        "CNN 90.7% vs TT-CNN 89.3%; CR 3.3x (CONV layers), 3.27x (overall)",
    );
    let net = zoo::cifar_cnn_compression();
    let conv_cr = net.compressed_layers_ratio();
    let overall = net.overall_ratio();
    let acc = accuracy::conv_comparison(43)?;
    r.headers([
        "model",
        "accuracy (synthetic analog)",
        "CR for CONV layers",
        "CR overall",
    ]);
    r.row([
        "dense CNN".to_string(),
        format!("{:.1}%", acc.dense_acc * 100.0),
        "1x".into(),
        "1x".into(),
    ]);
    r.row([
        "TT-CNN".to_string(),
        format!("{:.1}%", acc.tt_acc * 100.0),
        ratio(conv_cr),
        ratio(overall),
    ]);
    for l in net.layers() {
        if l.compressed {
            r.note(format!(
                "{}: dense {} -> TT {} params ({})",
                l.name,
                l.dense,
                l.stored,
                ratio(l.ratio())
            ));
        }
    }
    r.note("TT CONV layouts are the paper's printed §2.3 settings (d=4, r up to 27); the uncompressed fringe of [23]'s baseline is modeled per zoo::cifar_cnn_compression docs");
    Ok(r)
}

/// Table 3: TT-RNN compression + the dense-vs-TT sequence experiment.
///
/// # Errors
///
/// Propagates training errors (none expected for the fixed setup).
pub fn table3() -> Result<Report> {
    let mut r = Report::new(
        "table3",
        "Table 3: RNNs on Youtube Celebrities Faces",
        "LSTM 33.2% vs TT-LSTM 75.5% (CR 15283x FC / 196x overall); GRU 34.2% vs TT-GRU 80.0% (11683x / 195x)",
    );
    let lstm = zoo::tt_rnn_compression(4, 47);
    let gru = zoo::tt_rnn_compression(3, 47);
    let acc = accuracy::rnn_comparison(44)?;
    r.headers([
        "model",
        "accuracy (synthetic analog)",
        "CR for FC layers",
        "CR overall",
    ]);
    r.row([
        "LSTM (dense)".to_string(),
        format!("{:.1}%", acc.dense_acc * 100.0),
        "1x".into(),
        "1x".into(),
    ]);
    r.row([
        "TT-LSTM".to_string(),
        format!("{:.1}%", acc.tt_acc * 100.0),
        ratio(lstm.compressed_layers_ratio()),
        ratio(lstm.overall_ratio()),
    ]);
    r.row([
        "TT-GRU (compression only)".to_string(),
        "-".to_string(),
        ratio(gru.compressed_layers_ratio()),
        ratio(gru.overall_ratio()),
    ]);
    r.note(format!(
        "sequence analog: 3-class, 3840-d frames, 5 steps; TT input-to-hidden CR {:.0}x — demonstrates accuracy parity at high compression. The paper's stronger claim (TT *above* dense on raw video) is a natural-data effect a linear synthetic task cannot recreate; see EXPERIMENTS.md",
        acc.layer_cr
    ));
    r.note("[77] does not publish where the gate factor enters the TT mode list; the fused-gate layout here reproduces the magnitude, not the last digit (see EXPERIMENTS.md)");
    Ok(r)
}

/// Table 4: the benchmark workload definitions and their CRs.
///
/// # Errors
///
/// None in practice (pure metadata).
pub fn table4() -> Result<Report> {
    let mut r = Report::new(
        "table4",
        "Table 4: evaluated benchmarks",
        "CRs: 50972x (VGG-FC6), 14564x (VGG-FC7), 4954x (LSTM-UCF11), 4608x (LSTM-Youtube)",
    );
    r.headers([
        "layer",
        "size",
        "d",
        "n",
        "m",
        "r",
        "CR (computed)",
        "CR (paper)",
    ]);
    for b in table4_benchmarks() {
        let (rows, cols) = b.size();
        r.row([
            b.name.to_string(),
            format!("({rows}, {cols})"),
            b.shape.ndim().to_string(),
            format!("{:?}", b.shape.col_modes),
            format!("{:?}", b.shape.row_modes),
            format!("{:?}", &b.shape.ranks),
            ratio(b.shape.compression_ratio()),
            ratio(b.paper_cr),
        ]);
    }
    r.note("computed CRs are parameter-count ratios of the printed layouts; they match the paper within rounding");
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_reproduces_paper_ratios() {
        let r = table4().unwrap();
        assert_eq!(r.rows.len(), 4);
        // Row 0 computed CR ~ paper CR.
        assert!(r.rows[0][6].starts_with("509") || r.rows[0][6].starts_with("510"));
    }

    #[test]
    fn table1_report_structure() {
        let r = table1().unwrap();
        assert_eq!(r.rows.len(), 2);
        assert!(r.rows[1][2].contains('x'));
    }
}
