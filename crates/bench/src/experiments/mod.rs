//! One module per regenerated table / figure.
//!
//! | module | experiments |
//! |---|---|
//! | [`accuracy`] | shared dense-vs-TT training analogs (Tables 1–3) |
//! | [`compression`] | Tables 1, 2, 3, 4 |
//! | [`hardware`] | Table 5, Table 6, Fig. 11 |
//! | [`comparisons`] | Table 7 (EIE), Table 8 (CirCNN), Table 9 (Eyeriss), Fig. 12 |
//! | [`flexibility`] | Fig. 13 rank sweep, §3.1 redundancy analysis, §3.2 storage analysis |
//! | [`ablations`] | PE-count sweep, quantization-width sweep, SRAM-bank sweep |

pub mod ablations;
pub mod accuracy;
pub mod comparisons;
pub mod compression;
pub mod flexibility;
pub mod hardware;

use crate::report::Report;

/// Runs every experiment in paper order.
///
/// # Errors
///
/// Propagates the first failing experiment's error.
pub fn run_all() -> tie_tensor::Result<Vec<Report>> {
    Ok(vec![
        compression::table1()?,
        compression::table2()?,
        compression::table3()?,
        compression::table4()?,
        hardware::table5()?,
        hardware::table6()?,
        comparisons::table7()?,
        comparisons::table8()?,
        comparisons::table9()?,
        hardware::fig11()?,
        comparisons::fig12()?,
        flexibility::fig13()?,
        flexibility::analysis_redundancy()?,
        flexibility::analysis_storage()?,
        flexibility::analysis_memory()?,
        ablations::pe_sweep()?,
        ablations::quant_sweep()?,
        ablations::sram_sweep()?,
        ablations::overhead_sweep()?,
    ])
}
