//! Table 5 (design configuration), Table 6 (power/area breakdown) and
//! Fig. 11 (prototype headline metrics).

use crate::measure::{measure_tie_layer, tie_power_model};
use crate::report::{fnum, Report};
use tie_energy::TieAreaPowerModel;
use tie_sim::TieConfig;
use tie_tensor::Result;
use tie_workloads::table4_benchmarks;

/// Table 5: the prototype design configuration.
///
/// # Errors
///
/// None in practice (pure metadata).
pub fn table5() -> Result<Report> {
    let cfg = TieConfig::default();
    let mut r = Report::new(
        "table5",
        "Table 5: design configuration",
        "16 PEs x 16 MACs, 16-bit mult / 24-bit accum, 16 KB weight SRAM, 2 x 384 KB working SRAM",
    );
    r.headers(["parameter", "value"]);
    r.row(["PEs", &cfg.n_pe.to_string()]);
    r.row(["MACs per PE", &cfg.n_mac.to_string()]);
    r.row(["multiplier width", "16-bit"]);
    r.row(["accumulator width", "24-bit"]);
    r.row(["quantization", "16-bit"]);
    r.row([
        "weight SRAM",
        &format!(
            "{} KB ({} 16-bit weights)",
            cfg.weight_sram_bytes / 1024,
            cfg.weight_capacity_elems()
        ),
    ]);
    r.row([
        "working SRAM",
        &format!("2 x {} KB (ping-pong)", cfg.working_sram_bytes / 1024),
    ]);
    r.row(["frequency", &format!("{} MHz", cfg.freq_mhz)]);
    r.row([
        "peak throughput",
        &format!("{:.3} TOPS", cfg.peak_ops_per_sec() / 1e12),
    ]);
    Ok(r)
}

/// Table 6: power and area breakdowns of the calibrated model.
///
/// # Errors
///
/// None in practice (pure model evaluation).
pub fn table6() -> Result<Report> {
    let model = TieAreaPowerModel::paper_prototype();
    let p = model.power_at_utilization(1.0);
    let a = model.area();
    let mut r = Report::new(
        "table6",
        "Table 6: power and area breakdowns",
        "154.8 mW / 1.744 mm2: memory 60.8 mW / 1.29 mm2, register 10.9 / 0.019, combinational 54 / 0.082, clock 29.1 / 0.0035, other - / 0.35",
    );
    r.headers(["component", "power (mW)", "area (mm2)"]);
    r.row(["memory", &fnum(p.memory), &fnum(a.memory)]);
    r.row(["register", &fnum(p.register), &fnum(a.register)]);
    r.row([
        "combinational",
        &fnum(p.combinational),
        &fnum(a.combinational),
    ]);
    r.row([
        "clock network",
        &fnum(p.clock_network),
        &fnum(a.clock_network),
    ]);
    r.row(["other", "-", &fnum(a.other)]);
    r.row(["total", &fnum(p.total()), &fnum(a.total())]);
    r.note("the component model is calibrated to these Table 6 values and extrapolates for the PE/SRAM ablations — the CAD-flow substitution of DESIGN.md");
    Ok(r)
}

/// Fig. 11: layout-level headline metrics plus measured per-workload
/// throughput of the prototype.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig11() -> Result<Report> {
    let cfg = TieConfig::default();
    let model = tie_power_model(&cfg);
    let mut r = Report::new(
        "fig11",
        "Fig. 11: prototype metrics",
        "28 nm, 1000 MHz, 1.74 mm2, 154.8 mW, 16 PEs",
    );
    r.headers(["metric", "value"]);
    r.row(["technology", "28 nm CMOS (modeled)"]);
    r.row(["frequency", &format!("{} MHz", cfg.freq_mhz)]);
    r.row(["area", &format!("{:.3} mm2", model.area().total())]);
    r.row([
        "power (full load)",
        &format!("{:.1} mW", model.power_at_utilization(1.0).total()),
    ]);
    let activity_model = tie_energy::ActivityEnergy::default();
    for (i, b) in table4_benchmarks().iter().enumerate() {
        let m = measure_tie_layer(&cfg, &b.shape, 500 + i as u64)?;
        let activity = crate::measure::activity_of(&m.stats, cfg.n_mac);
        r.row([
            format!("{} latency / eq. throughput", b.name),
            format!(
                "{:.2} us / {:.2} TOPS (util {:.0}%, {:.0} nJ/inference)",
                m.latency_s * 1e6,
                m.equivalent_ops_per_sec / 1e12,
                m.utilization * 100.0,
                activity_model.energy_nj(&activity)
            ),
        ]);
    }
    r.note("per-inference energies use the activity model (pJ/MAC and pJ/SRAM-element derived from the Table 6 calibration)");
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table6_totals_match_paper() {
        let r = table6().unwrap();
        let total = r.rows.last().unwrap();
        assert_eq!(total[1], "154.8");
        assert!(total[2].starts_with("1.74"));
    }

    #[test]
    fn table5_mentions_all_resources() {
        let r = table5().unwrap();
        let flat = format!("{r}");
        assert!(flat.contains("16 KB") && flat.contains("384 KB") && flat.contains("1000 MHz"));
    }
}
