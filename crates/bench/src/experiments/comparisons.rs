//! Tables 7–9 and Fig. 12: comparisons against EIE, CirCNN and Eyeriss.

use crate::measure::{batched_cycles, measure_eie, measure_tie_layer, tie_power_model};
use crate::report::{fnum, ratio, Report};
use tie_baselines::eyeriss::EyerissModel;
use tie_baselines::specs;
use tie_core::{counts, InferencePlan};
use tie_energy::{project, Metrics, TechNode};
use tie_sim::TieConfig;
use tie_tensor::Result;
use tie_workloads::sparsity;
use tie_workloads::table4_benchmarks;
use tie_workloads::vgg_conv::vgg16_conv_workloads;

/// Table 7: EIE vs TIE design parameters (with node projection).
///
/// # Errors
///
/// None in practice (spec arithmetic).
pub fn table7() -> Result<Report> {
    let eie = specs::eie();
    let eie28 = project(&eie, TechNode::NM28);
    let tie = specs::tie();
    let mut r = Report::new(
        "table7",
        "Table 7: EIE and TIE design comparison",
        "EIE: 45 nm / 800 MHz / 40.8 mm2 / 590 mW -> projected 28 nm / 1285 MHz / 15.7 mm2 / 590 mW; TIE: 28 nm / 1000 MHz / 1.74 mm2 / 154.8 mW",
    );
    r.headers([
        "design",
        "tech",
        "freq (MHz)",
        "area (mm2)",
        "power (mW)",
        "quantization",
    ]);
    r.row([
        "EIE (reported)".to_string(),
        "45 nm".into(),
        fnum(eie.freq_mhz),
        fnum(eie.area_mm2.unwrap()),
        fnum(eie.power_mw),
        "4-bit idx + 16-bit shared".into(),
    ]);
    r.row([
        "EIE (projected)".to_string(),
        "28 nm".into(),
        fnum(eie28.freq_mhz),
        fnum(eie28.area_mm2.unwrap()),
        fnum(eie28.power_mw),
        "4-bit idx + 16-bit shared".into(),
    ]);
    r.row([
        "TIE".to_string(),
        "28 nm".into(),
        fnum(tie.freq_mhz),
        fnum(tie.area_mm2.unwrap()),
        fnum(tie.power_mw),
        "16-bit".into(),
    ]);
    Ok(r)
}

/// Shared Fig. 12 measurement: per-workload TIE vs EIE metrics.
fn fc_workload_metrics() -> Result<Vec<(String, Metrics, Metrics)>> {
    let cfg = TieConfig::default();
    let eie28 = project(&specs::eie(), TechNode::NM28);
    let profiles = [sparsity::VGG_FC6, sparsity::VGG_FC7];
    let mut out = Vec::new();
    for (i, b) in table4_benchmarks().iter().take(2).enumerate() {
        let tie_m = measure_tie_layer(&cfg, &b.shape, 600 + i as u64)?;
        let tie = Metrics::new(
            format!("TIE {}", b.name),
            tie_m.equivalent_ops_per_sec,
            tie_m.area_mm2,
            tie_m.power_mw,
        );
        let (rows, cols) = b.size();
        let eie_m = measure_eie(rows, cols, &profiles[i], eie28.freq_mhz, 700 + i as u64)?;
        let eie = Metrics::new(
            format!("EIE {}", b.name),
            eie_m.equivalent_ops_per_sec,
            eie28.area_mm2.unwrap(),
            eie28.power_mw,
        );
        out.push((b.name.to_string(), tie, eie));
    }
    Ok(out)
}

/// Fig. 12: throughput / area efficiency / energy efficiency, EIE vs TIE
/// on VGG-FC6 and VGG-FC7.
///
/// # Errors
///
/// Propagates simulator/model errors.
pub fn fig12() -> Result<Report> {
    let mut r = Report::new(
        "fig12",
        "Fig. 12: EIE vs TIE on VGG-FC6/FC7",
        "comparable throughput; TIE 7.22x-10.66x better area efficiency and 3.03x-4.48x better energy efficiency",
    );
    r.headers([
        "workload",
        "design",
        "eq. throughput (TOPS)",
        "area eff (GOPS/mm2)",
        "energy eff (TOPS/W)",
        "TIE advantage (thr/area/energy)",
    ]);
    for (name, tie, eie) in fc_workload_metrics()? {
        r.row([
            name.clone(),
            "EIE (28 nm proj.)".to_string(),
            fnum(eie.tops()),
            fnum(eie.gops_per_mm2()),
            fnum(eie.tops_per_watt()),
            "-".to_string(),
        ]);
        r.row([
            name.clone(),
            "TIE".to_string(),
            fnum(tie.tops()),
            fnum(tie.gops_per_mm2()),
            fnum(tie.tops_per_watt()),
            format!(
                "{} / {} / {}",
                ratio(tie.throughput_ratio(&eie)),
                ratio(tie.area_efficiency_ratio(&eie)),
                ratio(tie.energy_efficiency_ratio(&eie))
            ),
        ]);
    }
    r.note("EIE is the functional CSC model at the published sparsity profile, projected to 28 nm (linear freq / quadratic area / constant power); TIE is the cycle-accurate simulator plus the Table 6-calibrated power model");
    Ok(r)
}

/// Table 8: CirCNN vs TIE throughput and energy efficiency.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn table8() -> Result<Report> {
    let cfg = TieConfig::default();
    let circnn = specs::circnn();
    let circnn28 = project(&circnn, TechNode::NM28);
    let circnn_tops = specs::CIRCNN_TOPS_NATIVE * circnn28.freq_mhz / circnn.freq_mhz / 1e12;
    let circnn_eff = circnn_tops / (circnn28.power_mw / 1e3);

    // TIE: mean equivalent throughput across the Table 4 workloads.
    let mut tops_sum = 0.0;
    let mut util_sum = 0.0;
    let benches = table4_benchmarks();
    for (i, b) in benches.iter().enumerate() {
        let m = measure_tie_layer(&cfg, &b.shape, 800 + i as u64)?;
        tops_sum += m.equivalent_ops_per_sec / 1e12;
        util_sum += m.utilization;
    }
    let tie_tops = tops_sum / benches.len() as f64;
    let tie_util = util_sum / benches.len() as f64;
    let tie_power = tie_power_model(&cfg).power_at_utilization(tie_util).total();
    let tie_eff = tie_tops / (tie_power / 1e3);

    let mut r = Report::new(
        "table8",
        "Table 8: CirCNN and TIE comparison",
        "CirCNN projected 1.28 TOPS / 16 TOPS/W; TIE 7.64 TOPS / 72.9 TOPS/W -> 5.96x and 4.56x",
    );
    r.headers([
        "design",
        "freq (MHz)",
        "power (mW)",
        "throughput (TOPS)",
        "energy eff (TOPS/W)",
    ]);
    r.row([
        "CirCNN (reported, 45 nm)".to_string(),
        fnum(circnn.freq_mhz),
        fnum(circnn.power_mw),
        fnum(specs::CIRCNN_TOPS_NATIVE / 1e12),
        fnum(specs::CIRCNN_TOPS_NATIVE / 1e12 / (circnn.power_mw / 1e3)),
    ]);
    r.row([
        "CirCNN (projected, 28 nm)".to_string(),
        fnum(circnn28.freq_mhz),
        fnum(circnn28.power_mw),
        fnum(circnn_tops),
        fnum(circnn_eff),
    ]);
    r.row([
        "TIE (measured)".to_string(),
        fnum(cfg.freq_mhz),
        fnum(tie_power),
        fnum(tie_tops),
        fnum(tie_eff),
    ]);
    r.row([
        "TIE advantage".to_string(),
        "-".to_string(),
        "-".to_string(),
        ratio(tie_tops / circnn_tops),
        ratio(tie_eff / circnn_eff),
    ]);
    r.note("TIE throughput is the mean dense-equivalent TOPS over the four Table 4 workloads from the cycle simulator; the paper quotes 7.64 TOPS / 72.9 TOPS/W from synthesis");
    Ok(r)
}

/// Table 9: Eyeriss vs TIE on the VGG-16 CONV stack.
///
/// # Errors
///
/// Propagates model errors.
pub fn table9() -> Result<Report> {
    let cfg = TieConfig::default();
    // Eyeriss: calibrated model, native then projected.
    let eyeriss_model = EyerissModel::default();
    let stack = tie_baselines::eyeriss::vgg16_conv_stack();
    let fps_native = eyeriss_model.frames_per_sec(&stack)?;
    let ey = specs::eyeriss();
    let ey28 = project(&ey, TechNode::NM28);
    let fps_projected = fps_native * ey28.freq_mhz / ey.freq_mhz;

    // TIE: batched compact-scheme execution of the TT CONV stack.
    let rank = 8;
    let mut total_cycles = 0u64;
    let mut total_macs = 0u64;
    for w in vgg16_conv_workloads(rank) {
        let plan = InferencePlan::new(&w.shape)?;
        total_cycles += batched_cycles(&plan, w.pixels, cfg.n_pe, cfg.n_mac);
        total_macs += counts::mul_compact(&w.shape) * w.pixels as u64;
    }
    let tie_seconds = total_cycles as f64 / (cfg.freq_mhz * 1e6);
    let tie_fps = 1.0 / tie_seconds;
    let tie_util = total_macs as f64 / (total_cycles as f64 * (cfg.n_pe * cfg.n_mac) as f64);
    let model = tie_power_model(&cfg);
    let tie_power = model.power_at_utilization(tie_util).total();
    let tie_area = model.area().total();

    let mut r = Report::new(
        "table9",
        "Table 9: Eyeriss and TIE on VGG CONV layers",
        "Eyeriss projected 1.86 fps / 0.82 fps/W; TIE 6.72 fps (3.61x), 3.86 fps/W (4.71x), 39.5 fps/mm2 (5.01x)",
    );
    r.headers([
        "design",
        "freq (MHz)",
        "area (mm2)",
        "power (mW)",
        "throughput (fps)",
        "fps/W",
        "fps/mm2",
    ]);
    let ey_fps_w = fps_native / (ey.power_mw / 1e3);
    let ey_fps_mm2 = fps_native / ey.area_mm2.unwrap();
    r.row([
        "Eyeriss (reported, 65 nm)".to_string(),
        fnum(ey.freq_mhz),
        fnum(ey.area_mm2.unwrap()),
        fnum(ey.power_mw),
        fnum(fps_native),
        fnum(ey_fps_w),
        fnum(ey_fps_mm2),
    ]);
    let eyp_fps_w = fps_projected / (ey28.power_mw / 1e3);
    let eyp_fps_mm2 = fps_projected / ey28.area_mm2.unwrap();
    r.row([
        "Eyeriss (projected, 28 nm)".to_string(),
        fnum(ey28.freq_mhz),
        fnum(ey28.area_mm2.unwrap()),
        fnum(ey28.power_mw),
        fnum(fps_projected),
        fnum(eyp_fps_w),
        fnum(eyp_fps_mm2),
    ]);
    let tie_fps_w = tie_fps / (tie_power / 1e3);
    let tie_fps_mm2 = tie_fps / tie_area;
    r.row([
        format!("TIE (TT CONV, r={rank})"),
        fnum(cfg.freq_mhz),
        fnum(tie_area),
        fnum(tie_power),
        fnum(tie_fps),
        fnum(tie_fps_w),
        fnum(tie_fps_mm2),
    ]);
    r.row([
        "TIE advantage vs projected".to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        ratio(tie_fps / fps_projected),
        ratio(tie_fps_w / eyp_fps_w),
        ratio(tie_fps_mm2 / eyp_fps_mm2),
    ]);
    r.note("the paper prints no VGG CONV TT settings; rank 8 is the largest uniform rank fitting the 16 KB weight SRAM (tie-workloads::vgg_conv). Our idealized batched scheduling over-achieves the paper's 6.72 fps; the win-direction and factor-of-several advantage over Eyeriss is preserved (EXPERIMENTS.md)");
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig12_shape_holds() {
        // The paper's headline: comparable throughput, large area/energy
        // advantage. Verify the *direction* on FC7 (fast enough for CI).
        let rows = fc_workload_metrics().unwrap();
        for (name, tie, eie) in rows {
            let area_adv = tie.area_efficiency_ratio(&eie);
            let energy_adv = tie.energy_efficiency_ratio(&eie);
            assert!(
                area_adv > 2.0,
                "{name}: TIE area advantage should be large, got {area_adv:.2}"
            );
            assert!(
                energy_adv > 1.5,
                "{name}: TIE energy advantage should be clear, got {energy_adv:.2}"
            );
        }
    }

    #[test]
    fn table9_tie_beats_projected_eyeriss() {
        let r = table9().unwrap();
        let last = r.rows.last().unwrap();
        let fps_adv: f64 = last[4].trim_end_matches('x').parse().unwrap();
        assert!(
            fps_adv > 1.0,
            "TIE must outperform projected Eyeriss: {fps_adv}"
        );
    }
}
