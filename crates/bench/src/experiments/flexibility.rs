//! Fig. 13 (rank flexibility) and the §3.1 / §3.2 analytical studies.

use crate::measure::measure_tie_layer;
use crate::report::{fnum, ratio, Report};
use tie_core::{counts, InferencePlan};
use tie_sim::TieConfig;
use tie_tensor::Result;
use tie_workloads::sweep::{rank_sweep, FIG13_RANKS};
use tie_workloads::table4_benchmarks;

/// Fig. 13: TIE throughput across decomposition ranks on every Table 4
/// workload.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig13() -> Result<Report> {
    let cfg = TieConfig::default();
    let mut r = Report::new(
        "fig13",
        "Fig. 13: flexibility across decomposition ranks",
        "the same TIE hardware executes all workloads across r values with useful throughput (no reconfiguration)",
    );
    let mut headers = vec!["workload".to_string()];
    headers.extend(FIG13_RANKS.iter().map(|r| format!("r={r} (TOPS)")));
    headers.push("conflict overhead at r=2".into());
    r.headers(headers);
    for (i, b) in table4_benchmarks().iter().enumerate() {
        let mut cells = vec![b.name.to_string()];
        let mut conflict_note = String::from("-");
        for (j, (rank, shape)) in rank_sweep(&b.shape, &FIG13_RANKS)?.into_iter().enumerate() {
            match measure_tie_layer(&cfg, &shape, 900 + (i * 10 + j) as u64) {
                Ok(m) => {
                    cells.push(fnum(m.equivalent_ops_per_sec / 1e12));
                    if rank == 2 {
                        let conflicts: u64 = m.stats.stages.iter().map(|s| s.conflict_cycles).sum();
                        conflict_note = format!(
                            "{:.1}%",
                            100.0 * conflicts as f64 / m.stats.cycles().max(1) as f64
                        );
                    }
                }
                // High ranks can genuinely exceed the prototype's SRAM
                // budgets (a real hardware limit, reported as such).
                Err(tie_tensor::TensorError::InvalidArgument { .. }) => {
                    cells.push("n/a (SRAM)".to_string());
                }
                Err(e) => return Err(e),
            }
        }
        cells.push(conflict_note);
        r.row(cells);
    }
    r.note("equivalent TOPS fall as rank grows (more real work per output) — the same shape as the paper's Fig. 13; the write-side ReArrange keeps every read conflict-free (last column)");
    r.note("'n/a (SRAM)' marks rank points whose peak intermediate or weight footprint exceeds the prototype's 384 KB / 16 KB budgets — a real constraint of the Table 5 sizing");
    Ok(r)
}

/// §3.1: redundant-computation analysis — Eqn. (3) vs Eqn. (7) vs the
/// compact scheme, including the paper's FC6 headline.
///
/// # Errors
///
/// None in practice (pure arithmetic).
pub fn analysis_redundancy() -> Result<Report> {
    let mut r = Report::new(
        "analysis_redundancy",
        "Sec. 3.1: multiplication-count analysis",
        "naive Eqn.(2) costs ~1073x the theoretical minimum on VGG-FC6",
    );
    r.headers([
        "workload",
        "dense muls",
        "naive TT muls (Eqn.3)",
        "partial (Fig.5)",
        "compact muls (Alg.1)",
        "Eqn.7 (as printed)",
        "naive/compact",
        "compact/dense",
    ]);
    for b in table4_benchmarks() {
        let s = &b.shape;
        r.row([
            b.name.to_string(),
            fnum(counts::mul_dense(s) as f64),
            fnum(counts::mul_naive(s) as f64),
            fnum(counts::mul_partial(s) as f64),
            fnum(counts::mul_compact(s) as f64),
            fnum(counts::mul_theoretical_eqn7(s) as f64),
            ratio(counts::redundancy_ratio(s)),
            format!(
                "{:.4}",
                counts::mul_compact(s) as f64 / counts::mul_dense(s) as f64
            ),
        ]);
    }
    r.note("Eqn. (7) as printed undercounts slightly (it yields (m-1)n at d=1 where a mat-vec needs mn); the compact scheme's count is the executable minimum. The FC6 naive/compact ratio is ~2x the paper's 1073x under the printed formulas — same three-orders-of-magnitude conclusion (see DESIGN.md)");
    Ok(r)
}

/// §3.2: intermediate-storage analysis — working-set sizes against the
/// 2 × 384 KB budget, and weight footprints against 16 KB.
///
/// # Errors
///
/// None in practice (pure arithmetic).
pub fn analysis_storage() -> Result<Report> {
    let cfg = TieConfig::default();
    let mut r = Report::new(
        "analysis_storage",
        "Sec. 3.2: storage overhead of the compact scheme",
        "intermediate buffering needs 2 x max_h |V_h|; the prototype's 2 x 384 KB covers the benchmarks",
    );
    r.headers([
        "workload",
        "peak |V_h| (elems)",
        "working set (KB, 16-bit)",
        "budget (KB)",
        "TT weights (elems)",
        "weight SRAM (KB)",
    ]);
    for b in table4_benchmarks() {
        let plan = InferencePlan::new(&b.shape)?;
        let peak = plan.max_intermediate_elems();
        let ws_kb = (plan.working_set_elems() * 2) as f64 / 1024.0;
        r.row([
            b.name.to_string(),
            fnum(peak as f64),
            fnum(ws_kb),
            fnum((2 * cfg.working_sram_bytes) as f64 / 1024.0),
            fnum(b.shape.num_params() as f64),
            fnum((cfg.weight_sram_bytes) as f64 / 1024.0),
        ]);
        assert!(peak <= cfg.working_capacity_elems());
    }
    r.note("every benchmark's peak intermediate fits one 384 KB copy — the sizing rationale behind Table 5's working-SRAM budget");
    Ok(r)
}

/// §1 / §3.2: memory-access analysis — the naive scheme's core re-reads
/// versus the compact scheme's one-pass streaming plus intermediate
/// traffic, with the energy implication from the calibrated SRAM model.
///
/// # Errors
///
/// None in practice (pure arithmetic).
pub fn analysis_memory() -> Result<Report> {
    let mut r = Report::new(
        "analysis_memory",
        "Sec. 1/3.2: tensor-core memory traffic, naive vs compact",
        "\"the multi-stage processing scheme reduces the intensive memory access to all tensor cores, bringing significant energy saving\"",
    );
    r.headers([
        "workload",
        "core reads (naive)",
        "core reads (compact)",
        "intermediate traffic",
        "total compact",
        "traffic reduction",
    ]);
    for b in table4_benchmarks() {
        let s = &b.shape;
        let naive = counts::core_reads_naive(s);
        let compact = counts::core_reads_compact(s);
        let inter = counts::intermediate_traffic_compact(s);
        r.row([
            b.name.to_string(),
            fnum(naive as f64),
            fnum(compact as f64),
            fnum(inter as f64),
            fnum((compact + inter) as f64),
            ratio(naive as f64 / (compact + inter) as f64),
        ]);
    }
    r.note("counts are scalar element accesses at the functional level; the cycle simulator's word-level weight/working-SRAM counters (RunStats) refine these with tiling re-reads");
    r.note("the compact scheme trades >10^6x core re-reads for a bounded intermediate stream — the mechanism behind the paper's energy-efficiency advantage");
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_analysis_shows_huge_reduction() {
        let r = analysis_memory().unwrap();
        let red: f64 = r.rows[0][5].trim_end_matches('x').parse().unwrap();
        assert!(red > 100.0, "traffic reduction {red}");
    }

    #[test]
    fn redundancy_table_reproduces_magnitude() {
        let r = analysis_redundancy().unwrap();
        // FC6 row: naive/compact ratio has 4 digits.
        let ratio_cell = &r.rows[0][6];
        let v: f64 = ratio_cell.trim_end_matches('x').parse().unwrap();
        assert!((1000.0..4000.0).contains(&v), "{v}");
    }

    #[test]
    fn storage_analysis_all_fit() {
        // The asserts inside the function are the test.
        analysis_storage().unwrap();
    }
}
