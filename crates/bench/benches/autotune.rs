//! Tuned-vs-default deployment plans on every Table 4 layer.
//!
//! Runs the `tie-workloads` design-space autotuner over each Table 4
//! layer and writes `BENCH_autotune.json` at the repository root with,
//! per layer:
//!
//! * **modeled cycles/sample** of the default plan (paper layout, batch
//!   1, sequential) vs the tuned plan (searched layout/batch/pipeline
//!   knobs) and the resulting modeled speedup,
//! * **measured wall-clock** per sample of the quantized engine each plan
//!   describes, serving `batch` samples on this host (best of 3),
//! * the measured validation **saturation rate** of both plans' engines
//!   and the calibration margin the tuned plan validated at,
//! * the winning candidate's measured compile seconds.
//!
//! Plain `main` bench (no criterion): one tuning run per layer is the
//! benchmark — paper-scale TT-SVD compiles dominate, and best-of-N
//! applies only to the serving wall-clock rows.

use std::path::Path;
use std::time::Instant;

use tie_bench::report::{fnum, Report};
use tie_core::{plans_to_json, DeploymentPlan};
use tie_sim::{PipelinedEngine, QuantizedEngine};
use tie_tensor::linalg::SvdMethod;
use tie_workloads::autotune::{autotune_layer, compile_plan_matrix, SearchSpace, TunerConfig};
use tie_workloads::compile::spec_weights;
use tie_workloads::table4_layer_specs;

const REPS: usize = 3;

/// Best-of-`reps` wall-clock seconds for `f` (one untimed warm-up call).
fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    std::hint::black_box(f());
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Measured wall-clock seconds **per sample** of the quantized engine a
/// plan describes, serving `plan.batch` samples per call.
fn serve_seconds_per_sample(plan: &DeploymentPlan, engine: &QuantizedEngine) -> f64 {
    let (n, m, b) = (engine.num_cols(), engine.num_rows(), plan.batch);
    let xs: Vec<f64> = (0..n * b)
        .map(|i| ((i % 23) as f64 - 11.0) / 17.0)
        .collect();
    let mut ys = vec![0.0f64; m * b];
    let secs = if plan.is_pipelined() {
        let pipe = PipelinedEngine::quantized(
            engine,
            tie_core::PipelineConfig {
                depth: plan.pipeline_depth,
                micro_batch: plan.micro_batch,
            },
        )
        .expect("valid pipeline config");
        best_of(REPS, || pipe.matvec_batch_into(&xs, b, &mut ys).unwrap())
    } else {
        best_of(REPS, || engine.matvec_batch_into(&xs, b, &mut ys).unwrap())
    };
    secs / b as f64
}

fn main() {
    let cfg = TunerConfig {
        space: SearchSpace {
            layouts_per_dim: 3,
            ..SearchSpace::default()
        },
        top_k: 2,
        ..TunerConfig::default()
    };

    let mut report = Report::new(
        "BENCH_autotune",
        "Design-space autotuner: tuned vs default deployment plans (Table 4)",
        "per-layer DSE over TT layouts/ranks/knobs yields latency wins on the \
         same hardware model (cf. the paper's hand-picked Table 4 settings)",
    );
    report.headers([
        "layer",
        "default cyc/smp",
        "tuned cyc/smp",
        "speedup",
        "default us/smp",
        "tuned us/smp",
        "default sat rate",
        "tuned sat rate",
        "margin",
        "compile s",
    ]);

    let mut plans: Vec<DeploymentPlan> = Vec::new();
    let mut modeled_wins = 0usize;
    for spec in table4_layer_specs() {
        let t0 = Instant::now();
        let tuned = autotune_layer(&spec, &cfg).expect("tuning must succeed");
        let tuned_secs = t0.elapsed().as_secs_f64();

        // Build both plans' quantized engines once for the wall-clock rows.
        let w = spec_weights(&spec).expect("synthesize weights");
        let quantized = |plan: &DeploymentPlan| {
            let matrix = compile_plan_matrix(plan, &w).expect("compile plan layout");
            QuantizedEngine::new(matrix, cfg.quant.with_probe_margin(plan.quant_margin))
                .expect("quantize")
                .with_activation(plan.activation)
        };
        let default_engine = quantized(&tuned.default_plan);
        let tuned_engine = quantized(&tuned.plan);
        let default_us = serve_seconds_per_sample(&tuned.default_plan, &default_engine) * 1e6;
        let tuned_us = serve_seconds_per_sample(&tuned.plan, &tuned_engine) * 1e6;

        if tuned.tuned_cycles_per_sample < tuned.default_cycles_per_sample {
            modeled_wins += 1;
        }
        report.row([
            spec.name.to_string(),
            fnum(tuned.default_cycles_per_sample),
            fnum(tuned.tuned_cycles_per_sample),
            format!("{:.2}x", tuned.modeled_speedup()),
            fnum(default_us),
            fnum(tuned_us),
            format!("{:.2e}", tuned.default_saturation_rate.unwrap_or(0.0)),
            format!("{:.2e}", tuned.tuned_saturation_rate.unwrap_or(0.0)),
            format!("{:.2}", tuned.plan.quant_margin),
            fnum(tuned.compile_seconds),
        ]);
        report.note(format!(
            "{}: tuned layout m={:?} n={:?} r<={} batch={} depth={} (search {:.1}s, \
             {} layout-knob points, {} compiled)",
            spec.name,
            tuned.plan.shape.row_modes,
            tuned.plan.shape.col_modes,
            tuned.plan.shape.ranks.iter().max().unwrap(),
            tuned.plan.batch,
            tuned.plan.pipeline_depth,
            tuned_secs,
            tuned.candidates_scored,
            tuned.candidates.len(),
        ));
        plans.push(tuned.plan);
    }
    report.note(format!(
        "modeled-cycle wins: {modeled_wins}/4 layers (acceptance: >= 2); svd = {:?}; \
         wall-clock rows are best-of-{REPS} on this host, quantized datapath, \
         batch = each plan's batch",
        SvdMethod::default(),
    ));
    report.note(
        "saturation rates measured on the held-out validation probe set \
         (seed distinct from calibration); tuned margin is the value that \
         validated clean, not the requested one",
    );

    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    report.save_json(&root).expect("write BENCH_autotune.json");
    std::fs::write(root.join("tuned_plans_table4.json"), plans_to_json(&plans))
        .expect("write tuned plans");
    println!("{report}");
}
