//! Dispatch-latency benchmark for the persistent pool (pool PR acceptance
//! evidence).
//!
//! Two families of rows, both run at `TIE_THREADS=8` (pinned via
//! `set_num_threads`) on a pre-warmed pool:
//!
//! * **GEMM rows** — the same blocked kernel through both dispatch paths
//!   (`gemm_into` on the pool vs `gemm_into_scoped`, the pre-pool
//!   per-call `std::thread::scope` implementation kept as baseline) over
//!   a 128³–512³ cube sweep. Outputs are asserted bit-identical before
//!   any timing, so a speedup can never come from computing different
//!   bits. Small cubes are dispatch-dominated (where the pool pays off);
//!   large cubes are compute-dominated (both paths converge — the pool
//!   must never lose there).
//! * **Pure dispatch rows** — an 8-slab no-op through both paths, i.e.
//!   the per-call overhead itself with zero compute to hide it.
//!
//! Writes `BENCH_pool.json` at the repository root.

use std::path::Path;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tie_bench::report::{fnum, Report};
use tie_tensor::{linalg, parallel, pool};

const THREADS: usize = 8;
const GEMM_SIZES: [usize; 5] = [128, 192, 256, 384, 512];
const REPS: usize = 40;

fn median_secs(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

struct GemmRow {
    pooled_ms: f64,
    scoped_ms: f64,
}

/// Interleaved median timing of both dispatch paths on one cube, with a
/// bit-identity check up front.
fn measure_gemm(size: usize) -> GemmRow {
    let (m, k, n) = (size, size, size);
    let a: Vec<f64> = (0..m * k)
        .map(|i| ((i % 97) as f64) * 0.013 - 0.5)
        .collect();
    let b: Vec<f64> = (0..k * n)
        .map(|i| ((i % 89) as f64) * 0.017 - 0.7)
        .collect();
    let mut c_pool = vec![0.0; m * n];
    let mut c_scoped = vec![0.0; m * n];

    linalg::gemm_into(&a, &b, &mut c_pool, m, k, n).unwrap();
    linalg::gemm_into_scoped(&a, &b, &mut c_scoped, m, k, n).unwrap();
    for (i, (p, s)) in c_pool.iter().zip(&c_scoped).enumerate() {
        assert!(
            p.to_bits() == s.to_bits(),
            "{size}^3 element {i}: pooled {p:e} != scoped {s:e}"
        );
    }

    let mut pooled = Vec::with_capacity(REPS);
    let mut scoped = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        let t = Instant::now();
        linalg::gemm_into(&a, &b, &mut c_pool, m, k, n).unwrap();
        pooled.push(t.elapsed().as_secs_f64());
        let t = Instant::now();
        linalg::gemm_into_scoped(&a, &b, &mut c_scoped, m, k, n).unwrap();
        scoped.push(t.elapsed().as_secs_f64());
    }
    GemmRow {
        pooled_ms: median_secs(pooled) * 1e3,
        scoped_ms: median_secs(scoped) * 1e3,
    }
}

/// Per-call overhead of an 8-slab dispatch with (near-)zero work per slab.
fn measure_dispatch_overhead() -> (f64, f64) {
    let rows = THREADS;
    let mut buf = vec![0u8; rows];
    let mut pooled = Vec::with_capacity(REPS * 4);
    let mut scoped = Vec::with_capacity(REPS * 4);
    for _ in 0..REPS * 4 {
        let t = Instant::now();
        parallel::for_each_row_slab(&mut buf, rows, 1, THREADS, |_, slab| {
            slab[0] = slab[0].wrapping_add(1);
        });
        pooled.push(t.elapsed().as_secs_f64());
        let t = Instant::now();
        parallel::for_each_row_slab_scoped(&mut buf, rows, 1, THREADS, |_, slab| {
            slab[0] = slab[0].wrapping_add(1);
        });
        scoped.push(t.elapsed().as_secs_f64());
    }
    (median_secs(pooled) * 1e6, median_secs(scoped) * 1e6)
}

fn bench(c: &mut Criterion) {
    let prev = parallel::set_num_threads(THREADS);
    pool::prewarm(THREADS);

    let mut group = c.benchmark_group("pool");
    group.sample_size(10);
    for &size in &GEMM_SIZES[..2] {
        group.bench_with_input(BenchmarkId::new("gemm_pooled", size), &size, |bch, &s| {
            let a = vec![0.5f64; s * s];
            let b = vec![0.25f64; s * s];
            let mut cbuf = vec![0.0f64; s * s];
            bch.iter(|| linalg::gemm_into(&a, &b, &mut cbuf, s, s, s).unwrap());
        });
    }
    group.finish();

    write_json();
    parallel::set_num_threads(prev);
}

fn write_json() {
    let mut report = Report::new(
        "BENCH_pool",
        "Persistent-pool vs scoped-spawn dispatch (blocked GEMM, 8 threads)",
        "not a paper figure — acceptance evidence for the pool PR (warm-pool \
         dispatch must beat per-call std::thread::scope spawning, with \
         bit-identical outputs)",
    );
    report.headers(["kernel", "pooled_ms", "scoped_ms", "speedup"]);

    for &size in &GEMM_SIZES {
        let row = measure_gemm(size);
        report.row([
            format!("gemm {size}^3"),
            fnum(row.pooled_ms),
            fnum(row.scoped_ms),
            fnum(row.scoped_ms / row.pooled_ms),
        ]);
    }
    let (pooled_us, scoped_us) = measure_dispatch_overhead();
    report.row([
        "dispatch only (8 slabs, no-op)".to_string(),
        fnum(pooled_us / 1e3),
        fnum(scoped_us / 1e3),
        fnum(scoped_us / pooled_us),
    ]);

    report.note(format!(
        "TIE_THREADS pinned to {THREADS} via set_num_threads, pool pre-warmed; \
         medians of {REPS} interleaved reps; outputs asserted bit-identical \
         between both paths before timing"
    ));
    report.note(format!(
        "host available_parallelism = {} — on few-core hosts large cubes are \
         compute-bound and the two paths converge; the pool's win is the \
         dispatch overhead (see the no-op row and the small cubes), which is \
         what let PARALLEL_MIN_WORK drop 8x (1<<17 -> 1<<14)",
        parallel::available_parallelism()
    ));
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    report.save_json(&root).expect("write BENCH_pool.json");
    println!("{report}");
}

criterion_group!(benches, bench);
criterion_main!(benches);
