//! Baseline accelerator kernels: EIE sparse mat-vec and CirCNN
//! block-circulant FFT mat-vec.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tie_baselines::circnn::BlockCirculantMatrix;
use tie_baselines::eie::{CscMatrix, EieModel};
use tie_tensor::{init, Tensor};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_kernels");
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let csc = CscMatrix::random(&mut rng, 1024, 1024, 0.04, 16);
    let x: Tensor<f64> = init::uniform(&mut rng, vec![1024], 1.0);
    let model = EieModel::default();
    group.bench_function("eie_sparse_matvec_1024_4pct", |bch| {
        bch.iter(|| model.run(&csc, &x).unwrap())
    });
    let circ = BlockCirculantMatrix::random(&mut rng, 1024, 1024, 64).unwrap();
    group.bench_function("circnn_fft_matvec_1024_b64", |bch| {
        bch.iter(|| circ.matvec(&x).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
