//! Quantized-path throughput benchmark (quantized-path PR acceptance
//! evidence).
//!
//! Two families of rows:
//!
//! * **Kernel rows** — the vectorized [`tie_quant::qmatmul`] (runtime
//!   AVX-512/AVX2/portable dispatch + thread pool) against the naive
//!   per-output reference over representative GEMM shapes. Codes and
//!   saturation reports are asserted bit-identical before any timing, so
//!   a speedup can never come from computing different bits.
//! * **Simulated batch rows** — Table 4 FC layers on the cycle-accurate
//!   [`TieAccelerator`], batch 16: the seed path (per-batch float-trace
//!   calibration + MAC-by-MAC PE-array walk, `run_batch_walk`) against
//!   the fast path (one-shot load-time calibration + one `qmatmul` stage
//!   GEMM per batch). Both report identical cycle/activity stats by
//!   construction (the differential suite proves it); the rows measure
//!   the *host* simulation throughput.
//!
//! Writes `BENCH_quant.json` at the repository root.

use std::path::Path;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tie_bench::report::{fnum, Report};
use tie_quant::{qmatmul, qmatmul_naive, QFormat, QTensor};
use tie_sim::{CalibrationMode, QuantConfig, TieAccelerator, TieConfig};
use tie_tensor::{init, Tensor};
use tie_tt::TtMatrix;
use tie_workloads::benchmarks::table4_benchmarks;

const KERNEL_SHAPES: [(usize, usize, usize); 4] = [
    (64, 64, 64),
    (128, 128, 128),
    (256, 256, 256),
    (64, 256, 1024),
];
const KERNEL_REPS: usize = 30;
const BATCH: usize = 16;
const WALK_REPS: usize = 3;
const FAST_REPS: usize = 30;

fn median_secs(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn qtensor(rows: usize, cols: usize, seed: u64, frac_bits: u32) -> QTensor {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let t: Tensor<f64> = init::uniform(&mut rng, vec![rows, cols], 1.0);
    QTensor::quantize(&t, QFormat::new(frac_bits).expect("valid"))
}

/// Median times of the dispatched kernel vs the naive reference on one
/// GEMM shape, with a bit-identity check up front.
fn measure_kernel(m: usize, k: usize, n: usize) -> (f64, f64) {
    let a = qtensor(m, k, 1000 + m as u64, 12);
    let b = qtensor(k, n, 2000 + n as u64, 8);
    let out = QFormat::new(8).expect("valid");

    let (c_fast, r_fast) = qmatmul(&a, &b, out).unwrap();
    let (c_naive, r_naive) = qmatmul_naive(&a, &b, out).unwrap();
    assert_eq!(
        c_fast.codes(),
        c_naive.codes(),
        "{m}x{k}x{n}: codes diverge"
    );
    assert_eq!(r_fast, r_naive, "{m}x{k}x{n}: saturation reports diverge");

    let mut fast = Vec::with_capacity(KERNEL_REPS);
    let mut naive = Vec::with_capacity(KERNEL_REPS);
    let naive_reps = KERNEL_REPS.min(8); // the reference is slow; medians stabilize fast
    for i in 0..KERNEL_REPS {
        let t = Instant::now();
        let _ = qmatmul(&a, &b, out).unwrap();
        fast.push(t.elapsed().as_secs_f64());
        if i < naive_reps {
            let t = Instant::now();
            let _ = qmatmul_naive(&a, &b, out).unwrap();
            naive.push(t.elapsed().as_secs_f64());
        }
    }
    (median_secs(fast) * 1e3, median_secs(naive) * 1e3)
}

/// Simulated batch-16 throughput of one Table 4 layer, before vs after.
///
/// *Before*: per-batch calibration + the MAC-walk executor (the seed
/// behavior). *After*: one-shot calibration + the batched stage-GEMM fast
/// path (the default). Returns `(before, after)` in samples/second.
fn measure_sim(name: &str) -> (f64, f64) {
    let bench = table4_benchmarks()
        .into_iter()
        .find(|b| b.name == name)
        .expect("known Table 4 layer");
    let mut rng = ChaCha8Rng::seed_from_u64(0x51e5);
    let matrix = TtMatrix::<f64>::random(&mut rng, &bench.shape, 0.3).unwrap();
    let n = bench.shape.num_cols();
    let xs: Tensor<f64> = init::uniform(&mut rng, vec![n, BATCH], 1.0);

    // Table 5's 384 KB working SRAMs hold one sample's intermediates, not
    // 16: scale them up identically on both sides so the batch fits —
    // memory provisioning, not datapath, and common to before/after.
    let base_cfg = TieConfig {
        working_sram_bytes: 8 * 1024 * 1024,
        ..TieConfig::default()
    };
    let before_cfg = TieConfig {
        quant: QuantConfig {
            calibration: CalibrationMode::PerBatch,
            ..QuantConfig::default()
        },
        ..base_cfg
    };
    let mut before_tie = TieAccelerator::new(before_cfg).unwrap();
    let before_layer = before_tie.load_layer(matrix.clone()).unwrap();
    let mut before = Vec::with_capacity(WALK_REPS);
    for _ in 0..WALK_REPS {
        let t = Instant::now();
        let (ys, _) = before_tie
            .run_batch_walk(&before_layer, &xs, false)
            .unwrap();
        before.push(t.elapsed().as_secs_f64());
        assert!(ys.data().iter().all(|v| v.is_finite()));
    }

    let mut after_tie = TieAccelerator::new(base_cfg).unwrap();
    let after_layer = after_tie.load_layer(matrix).unwrap();
    let mut after = Vec::with_capacity(FAST_REPS);
    for _ in 0..FAST_REPS {
        let t = Instant::now();
        let (ys, _) = after_tie.run_batch(&after_layer, &xs, false).unwrap();
        after.push(t.elapsed().as_secs_f64());
        assert!(ys.data().iter().all(|v| v.is_finite()));
    }

    (
        BATCH as f64 / median_secs(before),
        BATCH as f64 / median_secs(after),
    )
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("quant");
    group.sample_size(10);
    for &(m, k, n) in &KERNEL_SHAPES[..2] {
        group.bench_with_input(
            BenchmarkId::new("qmatmul", format!("{m}x{k}x{n}")),
            &(m, k, n),
            |bch, &(m, k, n)| {
                let a = qtensor(m, k, 1, 12);
                let b = qtensor(k, n, 2, 8);
                let out = QFormat::new(8).expect("valid");
                bch.iter(|| qmatmul(&a, &b, out).unwrap());
            },
        );
    }
    group.finish();

    write_json();
}

fn write_json() {
    let mut report = Report::new(
        "BENCH_quant",
        "Quantized path: SIMD kernel vs naive, one-shot + batched sim vs seed path",
        "not a paper figure — acceptance evidence for the quantized-path PR \
         (vectorized qmatmul must beat the naive reference bit-identically; \
         one-shot calibration + batched stage GEMMs must lift simulated \
         FC batch-16 throughput at least 4x over the per-batch-calibrated \
         MAC-walk seed path)",
    );
    report.headers(["workload", "before", "after", "speedup", "unit"]);

    for &(m, k, n) in &KERNEL_SHAPES {
        let (fast_ms, naive_ms) = measure_kernel(m, k, n);
        report.row([
            format!("qmatmul {m}x{k}x{n}"),
            fnum(naive_ms),
            fnum(fast_ms),
            fnum(naive_ms / fast_ms),
            "ms (naive -> dispatched)".to_string(),
        ]);
    }
    for name in ["VGG-FC7", "VGG-FC6"] {
        let (before_sps, after_sps) = measure_sim(name);
        report.row([
            format!("{name} sim batch-{BATCH}"),
            fnum(before_sps),
            fnum(after_sps),
            fnum(after_sps / before_sps),
            "samples/s (seed -> fast path)".to_string(),
        ]);
    }

    report.note(format!(
        "kernel rows: medians of {KERNEL_REPS} reps (naive capped at 8), codes \
         and saturation reports asserted bit-identical before timing; sim \
         rows: medians of {WALK_REPS} walk / {FAST_REPS} fast reps, batch \
         {BATCH}, random Table 4 layers at unit-amplitude inputs; working \
         SRAMs scaled to 8 MB on BOTH sides so batch-{BATCH} intermediates \
         fit (memory provisioning, identical before/after)"
    ));
    report.note(
        "before = CalibrationMode::PerBatch + run_batch_walk (the seed \
         behavior: float traces every batch, MAC-by-MAC PE walk); after = \
         CalibrationMode::OneShot + run_batch (load-time probe calibration, \
         one qmatmul stage GEMM per batch); both produce identical RunStats \
         activity counts (differential suite)",
    );
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    report.save_json(&root).expect("write BENCH_quant.json");
    println!("{report}");
}

criterion_group!(benches, bench);
criterion_main!(benches);
