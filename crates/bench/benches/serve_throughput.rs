//! Serving-layer throughput benchmark (serving PR acceptance evidence).
//!
//! Sweeps the dynamic batcher's `max_batch` over {1, 4, 16, 64} with a
//! fixed offered load (8 client threads pipelining requests against one
//! VGG-FC6-shaped layer) and records completed requests per second plus
//! the realized mean batch occupancy and latency. `max_batch = 1`
//! degrades the service to per-request dispatch, so the sweep isolates
//! exactly what batching buys: every request still costs the same
//! per-stage GEMM *rows*, but batched requests share the per-dispatch
//! overhead and the per-stage weight streaming (`core_reads ==
//! num_params` for any B — the paper's Eqn. 10 batching argument).
//!
//! Writes `BENCH_serve.json` at the repository root.

use std::path::Path;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use tie_bench::report::{fnum, Report};
use tie_core::CompactEngine;
use tie_serve::{EngineRegistry, InferenceService, ServeConfig, ServiceStats};
use tie_tt::{TtMatrix, TtShape};

const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 256;
/// Tickets a client keeps in flight before reaping the oldest: without
/// pipelining, per-client round trips serialize and no batch ever forms.
const PIPELINE_DEPTH: usize = 32;
const MAX_BATCH_SWEEP: [usize; 4] = [1, 4, 16, 64];

fn fc6_engine() -> CompactEngine<f64> {
    let mut rng = ChaCha8Rng::seed_from_u64(31);
    // VGG-FC6 (Table 4): 25088 -> 4096, d = 6, r = 4.
    let shape = TtShape::uniform_rank(vec![4; 6], vec![2, 7, 8, 8, 7, 4], 4).unwrap();
    CompactEngine::new(TtMatrix::random(&mut rng, &shape, 0.5).unwrap()).unwrap()
}

fn inputs_for(n: usize, count: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..count)
        .map(|_| (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect()
}

/// One offered-load run at the given `max_batch`; returns the final
/// counters and the wall-clock seconds for all CLIENTS × `per_client`
/// requests.
fn run_load(
    engine: &CompactEngine<f64>,
    max_batch: usize,
    per_client: usize,
) -> (ServiceStats, f64) {
    let mut registry = EngineRegistry::new();
    registry.insert("fc6", engine.clone());
    let config = ServeConfig {
        max_batch,
        max_wait: Duration::from_micros(200),
        queue_capacity: 1024,
        workers: 0, // resolve from tie_tensor::parallel
    };
    let service = InferenceService::start(registry, config).unwrap();
    let n = engine.matrix().shape().num_cols();

    let started = Instant::now();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|t| {
            let client = service.client();
            let inputs = inputs_for(n, per_client, 100 + t as u64);
            std::thread::spawn(move || {
                let mut in_flight = std::collections::VecDeque::new();
                for x in inputs {
                    in_flight.push_back(client.submit("fc6", x).unwrap());
                    if in_flight.len() >= PIPELINE_DEPTH {
                        in_flight.pop_front().unwrap().wait().unwrap();
                    }
                }
                for ticket in in_flight {
                    ticket.wait().unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let elapsed = started.elapsed().as_secs_f64();
    (service.shutdown(), elapsed)
}

fn bench(c: &mut Criterion) {
    let engine = fc6_engine();
    let mut group = c.benchmark_group("serve");
    group.sample_size(10);
    // Criterion pass at a reduced load (service start/stop included in
    // the measurement); the JSON numbers below use the full load.
    for &mb in &MAX_BATCH_SWEEP {
        group.bench_with_input(BenchmarkId::new("throughput", mb), &mb, |bch, &mb| {
            bch.iter(|| run_load(&engine, mb, 32));
        });
    }
    group.finish();

    write_json(&engine);
}

fn write_json(engine: &CompactEngine<f64>) {
    let total = (CLIENTS * REQUESTS_PER_CLIENT) as f64;
    let mut report = Report::new(
        "BENCH_serve",
        "Dynamic-batching service throughput vs max_batch (VGG-FC6 layer)",
        "not a paper figure — acceptance evidence for the serving PR \
         (batched dispatch must beat max_batch=1 at fixed offered load)",
    );
    report.headers([
        "max_batch",
        "req_per_s",
        "mean_occupancy",
        "mean_latency_us",
        "p_full_batches",
        "speedup_vs_b1",
    ]);

    let mut base_rps = 0.0;
    for &mb in &MAX_BATCH_SWEEP {
        let (stats, elapsed) = run_load(engine, mb, REQUESTS_PER_CLIENT);
        assert_eq!(stats.completed, total as u64, "all requests must complete");
        assert_eq!(stats.failed, 0);
        let rps = total / elapsed;
        if mb == 1 {
            base_rps = rps;
        }
        let full_share = if stats.batches == 0 {
            0.0
        } else {
            stats.full_batches as f64 / stats.batches as f64
        };
        report.row([
            mb.to_string(),
            fnum(rps),
            fnum(stats.mean_occupancy()),
            fnum(stats.mean_latency().as_secs_f64() * 1e6),
            fnum(full_share),
            fnum(rps / base_rps),
        ]);
    }
    report.note(format!(
        "{CLIENTS} client threads x {REQUESTS_PER_CLIENT} requests, pipeline depth \
         {PIPELINE_DEPTH}, max_wait 200us, workers auto"
    ));
    report.note(
        "occupancy > 1 shares per-dispatch overhead and per-stage weight \
         streaming across the batch (core_reads == num_params for any B)",
    );
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    report.save_json(&root).expect("write BENCH_serve.json");
    println!("{report}");
}

criterion_group!(benches, bench);
criterion_main!(benches);
