//! Fixed-point vs float matrix multiplication kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tie_quant::{qmatmul, QFormat, QTensor};
use tie_tensor::{init, linalg::matmul, Tensor};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("quantized_matmul");
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let a: Tensor<f64> = init::uniform(&mut rng, vec![64, 64], 1.0);
    let b: Tensor<f64> = init::uniform(&mut rng, vec![64, 64], 1.0);
    let fmt = QFormat::new(12).unwrap();
    let qa = QTensor::quantize(&a, fmt);
    let qb = QTensor::quantize(&b, fmt);
    group.bench_function("float64_matmul_64", |bch| {
        bch.iter(|| matmul(&a, &b).unwrap())
    });
    group.bench_function("fixed16_matmul_64", |bch| {
        bch.iter(|| qmatmul(&qa, &qb, QFormat::new(10).unwrap()).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
