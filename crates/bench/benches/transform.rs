//! The inter-stage Transform (Eqn. 10): fused write-epilogue pipeline vs
//! the legacy gather-table pipeline (fused-transform PR acceptance
//! evidence).
//!
//! For every Table 4 layer at batch 16, times the float compact engine's
//! default fused path (`matvec_batch_into` — each stage GEMM's write loop
//! evaluates the composed Transform map, no permutation pass, no
//! transform intermediate) against the retained gather-table oracle
//! (`matvec_batch_into_gather` — GEMM into scratch, then a precomputed
//! gather copy per stage). Outputs are asserted **bit-identical** before
//! any timing, so a win can never come from computing different bits.
//! Alongside the latency rows, reports the copy traffic the fusion
//! eliminates (bytes/sample the legacy pipeline re-copied through the
//! Transform and output assembly vs the Eqn. 8 input preparation that
//! remains).
//!
//! Writes `BENCH_transform.json` at the repository root.

use std::path::Path;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use tie_bench::report::{fnum, Report};
use tie_core::CompactEngine;
use tie_tt::TtMatrix;
use tie_workloads::benchmarks::table4_benchmarks;

const BATCH: usize = 16;
const REPS: usize = 20;

fn median_secs(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

struct Row {
    name: &'static str,
    gather_ms: f64,
    fused_ms: f64,
    legacy_bytes: u64,
    fused_bytes: u64,
}

/// Fused vs gather-oracle batch-16 latency on one Table 4 layer, with a
/// bit-identity check up front and the per-sample traffic accounting.
fn measure(name: &'static str) -> Row {
    let bench = table4_benchmarks()
        .into_iter()
        .find(|b| b.name == name)
        .expect("known Table 4 layer");
    let mut rng = ChaCha8Rng::seed_from_u64(0x7f05ed);
    let matrix = TtMatrix::<f64>::random(&mut rng, &bench.shape, 0.5).unwrap();
    let engine = CompactEngine::new(matrix).unwrap();
    let (n, m) = (bench.shape.num_cols(), bench.shape.num_rows());
    let xs: Vec<f64> = (0..n * BATCH).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut fused = vec![0.0f64; m * BATCH];
    let mut oracle = vec![0.0f64; m * BATCH];

    engine.matvec_batch_into(&xs, BATCH, &mut fused).unwrap();
    engine
        .matvec_batch_into_gather(&xs, BATCH, &mut oracle)
        .unwrap();
    for (i, (f, o)) in fused.iter().zip(&oracle).enumerate() {
        assert!(f.to_bits() == o.to_bits(), "{name}: element {i} diverges");
    }

    let mut fused_t = Vec::with_capacity(REPS);
    let mut gather_t = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        let t = Instant::now();
        engine.matvec_batch_into(&xs, BATCH, &mut fused).unwrap();
        fused_t.push(t.elapsed().as_secs_f64());
        let t = Instant::now();
        engine
            .matvec_batch_into_gather(&xs, BATCH, &mut oracle)
            .unwrap();
        gather_t.push(t.elapsed().as_secs_f64());
    }

    let moved = engine.bytes_moved_per_sample();
    let elided = engine.transform_elided_bytes_per_sample();
    Row {
        name,
        gather_ms: median_secs(gather_t) * 1e3,
        fused_ms: median_secs(fused_t) * 1e3,
        legacy_bytes: moved + elided,
        fused_bytes: moved,
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("transform");
    group.sample_size(10);
    let fc7 = table4_benchmarks()
        .into_iter()
        .find(|b| b.name == "VGG-FC7")
        .expect("FC7 present");
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    let matrix = TtMatrix::<f64>::random(&mut rng, &fc7.shape, 0.5).unwrap();
    let engine = CompactEngine::new(matrix).unwrap();
    let n = fc7.shape.num_cols();
    let m = fc7.shape.num_rows();
    let xs: Vec<f64> = (0..n * BATCH).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut ys = vec![0.0f64; m * BATCH];
    group.bench_function("fc7_batch16_fused", |bch| {
        bch.iter(|| engine.matvec_batch_into(&xs, BATCH, &mut ys).unwrap())
    });
    group.bench_function("fc7_batch16_gather_oracle", |bch| {
        bch.iter(|| {
            engine
                .matvec_batch_into_gather(&xs, BATCH, &mut ys)
                .unwrap()
        })
    });
    group.finish();

    write_json();
}

fn write_json() {
    let mut report = Report::new(
        "BENCH_transform",
        "Fused Transform write epilogue vs gather-table pipeline, Table 4 batch-16",
        "not a paper figure — acceptance evidence for the fused-transform PR \
         (the paper's Fig. 10 write-side ReArrange makes the Transform free \
         in hardware; fusing the composed indexing map into the GEMM write \
         loop must eliminate the host pipeline's permutation pass and its \
         memory traffic, bit-identically)",
    );
    report.headers([
        "workload",
        "gather ms/batch",
        "fused ms/batch",
        "speedup",
        "copied B/sample (gather)",
        "copied B/sample (fused)",
        "traffic reduction",
    ]);
    for name in ["VGG-FC6", "VGG-FC7", "LSTM-UCF11", "LSTM-Youtube"] {
        let r = measure(name);
        report.row([
            r.name.to_string(),
            fnum(r.gather_ms),
            fnum(r.fused_ms),
            fnum(r.gather_ms / r.fused_ms),
            r.legacy_bytes.to_string(),
            r.fused_bytes.to_string(),
            fnum(r.legacy_bytes as f64 / r.fused_bytes as f64),
        ]);
    }
    report.note(format!(
        "medians of {REPS} reps, batch {BATCH}, float engine, random Table 4 \
         layers; fused and gather outputs asserted bit-identical before \
         timing (the differential + indexmap_fused suites prove the same at \
         pool sizes 1/2/8)"
    ));
    report.note(
        "copied bytes/sample counts pure data movement outside the GEMMs: \
         gather = input preparation + every inter-stage Transform copy + \
         output assembly; fused = input preparation only (the one \
         permutation with no producing GEMM to fuse into) — the reduction \
         factor is the permutation traffic the fused write epilogue elides",
    );
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    report.save_json(&root).expect("write BENCH_transform.json");
    println!("{report}");
}

criterion_group!(benches, bench);
criterion_main!(benches);
