//! The inter-stage Transform (Eqn. 10) and input/output permutations.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tie_core::transform::{assemble_output_inverse, prepare_input, TransformMap};
use tie_tensor::{init, Tensor};
use tie_tt::TtShape;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("transform");
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    // FC7-sized stage transform.
    let shape = TtShape::uniform_rank(vec![4; 6], vec![4; 6], 4).unwrap();
    let t = TransformMap::new(&shape, 4).unwrap();
    let v: Tensor<f64> = init::uniform(&mut rng, vec![t.rows_in, t.cols_in], 1.0);
    group.bench_function("stage_transform_fc7_h4", |bch| {
        bch.iter(|| t.apply(&v).unwrap())
    });
    let x: Tensor<f64> = init::uniform(&mut rng, vec![4096], 1.0);
    group.bench_function("prepare_input_fc7", |bch| {
        bch.iter(|| prepare_input(&x, &shape).unwrap())
    });
    let y: Tensor<f64> = init::uniform(&mut rng, vec![4096], 1.0);
    group.bench_function("assemble_output_inverse_fc7", |bch| {
        bch.iter(|| assemble_output_inverse(&y, &shape).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
