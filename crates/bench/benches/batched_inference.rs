//! Fast-kernel layer benchmarks (perf PR acceptance evidence).
//!
//! Measures the two headline speedups of the kernel layer:
//!
//! 1. blocked/multiversioned [`linalg::matmul`] vs the reference
//!    [`linalg::matmul_naive`] on a 512×512×512 product, and
//! 2. the batched compact engine (`matvec_batch`, one GEMM per stage for
//!    the whole batch) vs looping `matvec` over the columns.
//!
//! Besides the criterion console output, the bench re-times both pairs
//! with a best-of-N wall clock and writes `BENCH_kernels.json` at the
//! repository root so the measured ratios are recorded machine-readably.

use std::path::Path;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tie_bench::report::{fnum, Report};
use tie_core::CompactEngine;
use tie_tensor::{init, linalg, Tensor};
use tie_tt::{TtMatrix, TtShape};

const GEMM_DIM: usize = 512;
const BATCH: usize = 32;
const REPS: usize = 5;

/// Best-of-`reps` wall-clock seconds for `f` (one untimed warm-up call).
fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    std::hint::black_box(f());
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn gemm_inputs() -> (Tensor<f64>, Tensor<f64>) {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let a = init::uniform(&mut rng, vec![GEMM_DIM, GEMM_DIM], 1.0);
    let b = init::uniform(&mut rng, vec![GEMM_DIM, GEMM_DIM], 1.0);
    (a, b)
}

fn engine_inputs() -> (CompactEngine<f64>, Tensor<f64>, Vec<Tensor<f64>>) {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let shape = TtShape::uniform_rank(vec![4, 4, 4, 4], vec![4, 4, 4, 4], 4).unwrap();
    let ttm = TtMatrix::<f64>::random(&mut rng, &shape, 0.5).unwrap();
    let engine = CompactEngine::new(ttm).unwrap();
    let n = shape.num_cols();
    let xs: Tensor<f64> = init::uniform(&mut rng, vec![n, BATCH], 1.0);
    // Per-column views for the looped baseline (batch is inner-most, so
    // column b of `xs` is the strided slice xs[j * BATCH + b]).
    let cols = (0..BATCH)
        .map(|b| {
            let data = (0..n).map(|j| xs.data()[j * BATCH + b]).collect();
            Tensor::from_vec(vec![n], data).unwrap()
        })
        .collect();
    (engine, xs, cols)
}

fn bench(c: &mut Criterion) {
    let (a, b) = gemm_inputs();
    let mut group = c.benchmark_group("kernels");
    group.sample_size(10);
    group.bench_with_input(
        BenchmarkId::new("gemm_blocked", format!("{GEMM_DIM}^3")),
        &(),
        |bch, ()| bch.iter(|| linalg::matmul(&a, &b).unwrap()),
    );
    group.bench_with_input(
        BenchmarkId::new("gemm_naive", format!("{GEMM_DIM}^3")),
        &(),
        |bch, ()| bch.iter(|| linalg::matmul_naive(&a, &b).unwrap()),
    );

    let (engine, xs, cols) = engine_inputs();
    group.bench_with_input(
        BenchmarkId::new("engine_batched", format!("b{BATCH}")),
        &(),
        |bch, ()| bch.iter(|| engine.matvec_batch(&xs).unwrap()),
    );
    group.bench_with_input(
        BenchmarkId::new("engine_looped", format!("b{BATCH}")),
        &(),
        |bch, ()| {
            bch.iter(|| {
                cols.iter()
                    .map(|x| engine.matvec(x).unwrap())
                    .collect::<Vec<_>>()
            })
        },
    );
    group.finish();

    write_json(&a, &b, &engine, &xs, &cols);
}

/// Re-times both pairs with a best-of-N wall clock and records the
/// speedups in `BENCH_kernels.json` at the repository root.
fn write_json(
    a: &Tensor<f64>,
    b: &Tensor<f64>,
    engine: &CompactEngine<f64>,
    xs: &Tensor<f64>,
    cols: &[Tensor<f64>],
) {
    let blocked_s = best_of(REPS, || linalg::matmul(a, b).unwrap());
    let naive_s = best_of(REPS, || linalg::matmul_naive(a, b).unwrap());
    let batched_s = best_of(REPS, || engine.matvec_batch(xs).unwrap());
    let looped_s = best_of(REPS, || {
        cols.iter()
            .map(|x| engine.matvec(x).unwrap())
            .collect::<Vec<_>>()
    });

    let mut report = Report::new(
        "BENCH_kernels",
        "Fast kernel layer: blocked GEMM and batched compact engine",
        "not a paper figure — acceptance evidence for the perf PR \
         (blocked matmul >= 3x naive on 512^3; batched >= looped)",
    );
    report.headers(["pair", "baseline_ms", "optimized_ms", "speedup"]);
    report.row([
        format!("gemm_{GEMM_DIM}x{GEMM_DIM}x{GEMM_DIM}"),
        fnum(naive_s * 1e3),
        fnum(blocked_s * 1e3),
        fnum(naive_s / blocked_s),
    ]);
    report.row([
        format!("engine_batch{BATCH}"),
        fnum(looped_s * 1e3),
        fnum(batched_s * 1e3),
        fnum(looped_s / batched_s),
    ]);
    report.note(format!("best-of-{REPS} wall clock, one warm-up call per pair"));
    report.note(
        "blocked kernel dispatches at runtime to AVX-512/AVX/portable \
         instantiations of one generic body; all paths bit-match matmul_naive",
    );
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    report.save_json(&root).expect("write BENCH_kernels.json");
    println!("{report}");
}

criterion_group!(benches, bench);
criterion_main!(benches);
