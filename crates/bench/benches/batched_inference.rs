//! Fast-kernel layer benchmarks (perf PR acceptance evidence).
//!
//! Measures the two headline speedups of the kernel layer:
//!
//! 1. blocked/multiversioned [`linalg::matmul`] vs the reference
//!    [`linalg::matmul_naive`] on a 512×512×512 product, and
//! 2. the batched compact engine (`matvec_batch`, one GEMM per stage for
//!    the whole batch) vs looping `matvec` over the columns.
//!
//! Besides the criterion console output, the bench re-times both pairs
//! with a best-of-N wall clock and writes `BENCH_kernels.json` at the
//! repository root so the measured ratios are recorded machine-readably.

use std::path::Path;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tie_bench::report::{fnum, Report};
use tie_core::{Activation, CompactEngine};
use tie_sim::{QuantConfig, QuantizedEngine};
use tie_tensor::{init, linalg, Tensor};
use tie_tt::{TtMatrix, TtShape};
use tie_workloads::table4_benchmarks;

const GEMM_DIM: usize = 512;
const BATCH: usize = 32;
const EPI_BATCH: usize = 16;
const REPS: usize = 5;

/// Best-of-`reps` wall-clock seconds for `f` (one untimed warm-up call).
fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    std::hint::black_box(f());
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn gemm_inputs() -> (Tensor<f64>, Tensor<f64>) {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let a = init::uniform(&mut rng, vec![GEMM_DIM, GEMM_DIM], 1.0);
    let b = init::uniform(&mut rng, vec![GEMM_DIM, GEMM_DIM], 1.0);
    (a, b)
}

fn engine_inputs() -> (CompactEngine<f64>, Tensor<f64>, Vec<Tensor<f64>>) {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let shape = TtShape::uniform_rank(vec![4, 4, 4, 4], vec![4, 4, 4, 4], 4).unwrap();
    let ttm = TtMatrix::<f64>::random(&mut rng, &shape, 0.5).unwrap();
    let engine = CompactEngine::new(ttm).unwrap();
    let n = shape.num_cols();
    let xs: Tensor<f64> = init::uniform(&mut rng, vec![n, BATCH], 1.0);
    // Per-column views for the looped baseline (batch is inner-most, so
    // column b of `xs` is the strided slice xs[j * BATCH + b]).
    let cols = (0..BATCH)
        .map(|b| {
            let data = (0..n).map(|j| xs.data()[j * BATCH + b]).collect();
            Tensor::from_vec(vec![n], data).unwrap()
        })
        .collect();
    (engine, xs, cols)
}

fn bench(c: &mut Criterion) {
    let (a, b) = gemm_inputs();
    let mut group = c.benchmark_group("kernels");
    group.sample_size(10);
    group.bench_with_input(
        BenchmarkId::new("gemm_blocked", format!("{GEMM_DIM}^3")),
        &(),
        |bch, ()| bch.iter(|| linalg::matmul(&a, &b).unwrap()),
    );
    group.bench_with_input(
        BenchmarkId::new("gemm_naive", format!("{GEMM_DIM}^3")),
        &(),
        |bch, ()| bch.iter(|| linalg::matmul_naive(&a, &b).unwrap()),
    );

    let (engine, xs, cols) = engine_inputs();
    group.bench_with_input(
        BenchmarkId::new("engine_batched", format!("b{BATCH}")),
        &(),
        |bch, ()| bch.iter(|| engine.matvec_batch(&xs).unwrap()),
    );
    group.bench_with_input(
        BenchmarkId::new("engine_looped", format!("b{BATCH}")),
        &(),
        |bch, ()| {
            bch.iter(|| {
                cols.iter()
                    .map(|x| engine.matvec(x).unwrap())
                    .collect::<Vec<_>>()
            })
        },
    );
    let fc6 = EpilogueFixture::new("VGG-FC6", 0xfc6);
    let fc7 = EpilogueFixture::new("VGG-FC7", 0xfc7);
    let mut ys = vec![0.0f64; fc6.m.max(fc7.m) * EPI_BATCH];
    group.bench_with_input(
        BenchmarkId::new("fc6_float_epilogue_unfused", format!("b{EPI_BATCH}")),
        &(),
        |bch, ()| bch.iter(|| fc6.float_unfused(&mut ys[..fc6.m * EPI_BATCH])),
    );
    group.bench_with_input(
        BenchmarkId::new("fc6_float_epilogue_fused", format!("b{EPI_BATCH}")),
        &(),
        |bch, ()| {
            bch.iter(|| {
                fc6.fused_f
                    .matvec_batch_into(&fc6.xs, EPI_BATCH, &mut ys[..fc6.m * EPI_BATCH])
                    .unwrap()
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("fc7_quant_epilogue_unfused", format!("b{EPI_BATCH}")),
        &(),
        |bch, ()| bch.iter(|| fc7.quant_unfused(&mut ys[..fc7.m * EPI_BATCH])),
    );
    group.bench_with_input(
        BenchmarkId::new("fc7_quant_epilogue_fused", format!("b{EPI_BATCH}")),
        &(),
        |bch, ()| {
            bch.iter(|| {
                fc7.fused_q
                    .matvec_batch_into(&fc7.xs, EPI_BATCH, &mut ys[..fc7.m * EPI_BATCH])
                    .unwrap()
            })
        },
    );
    group.finish();

    write_json(&a, &b, &engine, &xs, &cols, &fc6, &fc7);
}

/// Fused-vs-unfused epilogue fixtures for one Table 4 layer: a plain
/// engine pair (float with bias+ReLU, quantized with ReLU), their fused
/// twins, and a batch-16 input. Bit-identity of fused output vs
/// unfused-then-separate-pass is asserted here, **before** any timing.
struct EpilogueFixture {
    plain_f: CompactEngine<f64>,
    fused_f: CompactEngine<f64>,
    bias: Vec<f64>,
    plain_q: QuantizedEngine,
    fused_q: QuantizedEngine,
    xs: Vec<f64>,
    m: usize,
}

impl EpilogueFixture {
    fn new(layer: &str, seed: u64) -> Self {
        let bench = table4_benchmarks()
            .into_iter()
            .find(|b| b.name == layer)
            .expect("Table 4 layer");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let ttm = TtMatrix::<f64>::random(&mut rng, &bench.shape, 0.3).unwrap();
        let (n, m) = (bench.shape.num_cols(), bench.shape.num_rows());
        let bias: Vec<f64> = (0..m).map(|o| (o as f64 / m as f64) - 0.5).collect();
        let plain_f = CompactEngine::new(ttm.clone()).unwrap();
        let fused_f = plain_f
            .clone()
            .with_bias(bias.clone())
            .unwrap()
            .with_activation(Activation::Relu);
        let plain_q = QuantizedEngine::new(ttm, QuantConfig::default()).unwrap();
        let fused_q = plain_q.clone().with_activation(Activation::Relu);
        let xs: Vec<f64> = (0..n * EPI_BATCH)
            .map(|i| ((i * 2_654_435_761) % 1000) as f64 / 1000.0 - 0.5)
            .collect();
        let fx = EpilogueFixture {
            plain_f,
            fused_f,
            bias,
            plain_q,
            fused_q,
            xs,
            m,
        };
        fx.assert_bit_identity();
        fx
    }

    /// Unfused float reference: plain engine, then bias + ReLU as a
    /// separate pass over the batch-inner output.
    fn float_unfused(&self, ys: &mut [f64]) {
        self.plain_f
            .matvec_batch_into(&self.xs, EPI_BATCH, ys)
            .unwrap();
        for o in 0..self.m {
            for cb in 0..EPI_BATCH {
                let v = ys[o * EPI_BATCH + cb] + self.bias[o];
                ys[o * EPI_BATCH + cb] = if v > 0.0 { v } else { 0.0 };
            }
        }
    }

    /// Unfused quantized reference: plain engine, then ReLU as a separate
    /// pass over the dequantized output.
    fn quant_unfused(&self, ys: &mut [f64]) {
        self.plain_q
            .matvec_batch_into(&self.xs, EPI_BATCH, ys)
            .unwrap();
        for v in ys.iter_mut() {
            *v = if *v > 0.0 { *v } else { 0.0 };
        }
    }

    fn assert_bit_identity(&self) {
        let len = self.m * EPI_BATCH;
        let (mut want, mut got) = (vec![0.0f64; len], vec![0.0f64; len]);
        self.float_unfused(&mut want);
        self.fused_f
            .matvec_batch_into(&self.xs, EPI_BATCH, &mut got)
            .unwrap();
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(
                g.to_bits(),
                w.to_bits(),
                "float fused epilogue must be bit-identical"
            );
        }
        self.quant_unfused(&mut want);
        self.fused_q
            .matvec_batch_into(&self.xs, EPI_BATCH, &mut got)
            .unwrap();
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(
                g.to_bits(),
                w.to_bits(),
                "quant fused epilogue must be bit-identical"
            );
        }
    }
}

/// Re-times both pairs with a best-of-N wall clock and records the
/// speedups in `BENCH_kernels.json` at the repository root.
fn write_json(
    a: &Tensor<f64>,
    b: &Tensor<f64>,
    engine: &CompactEngine<f64>,
    xs: &Tensor<f64>,
    cols: &[Tensor<f64>],
    fc6: &EpilogueFixture,
    fc7: &EpilogueFixture,
) {
    let blocked_s = best_of(REPS, || linalg::matmul(a, b).unwrap());
    let naive_s = best_of(REPS, || linalg::matmul_naive(a, b).unwrap());
    let batched_s = best_of(REPS, || engine.matvec_batch(xs).unwrap());
    let looped_s = best_of(REPS, || {
        cols.iter()
            .map(|x| engine.matvec(x).unwrap())
            .collect::<Vec<_>>()
    });

    let mut ys = vec![0.0f64; fc6.m.max(fc7.m) * EPI_BATCH];
    let f_unfused_s = best_of(REPS, || fc6.float_unfused(&mut ys[..fc6.m * EPI_BATCH]));
    let f_fused_s = best_of(REPS, || {
        fc6.fused_f
            .matvec_batch_into(&fc6.xs, EPI_BATCH, &mut ys[..fc6.m * EPI_BATCH])
            .unwrap()
    });
    let q_unfused_s = best_of(REPS, || fc7.quant_unfused(&mut ys[..fc7.m * EPI_BATCH]));
    let q_fused_s = best_of(REPS, || {
        fc7.fused_q
            .matvec_batch_into(&fc7.xs, EPI_BATCH, &mut ys[..fc7.m * EPI_BATCH])
            .unwrap()
    });

    let mut report = Report::new(
        "BENCH_kernels",
        "Fast kernel layer: blocked GEMM and batched compact engine",
        "not a paper figure — acceptance evidence for the perf PR \
         (blocked matmul >= 3x naive on 512^3; batched >= looped)",
    );
    report.headers(["pair", "baseline_ms", "optimized_ms", "speedup"]);
    report.row([
        format!("gemm_{GEMM_DIM}x{GEMM_DIM}x{GEMM_DIM}"),
        fnum(naive_s * 1e3),
        fnum(blocked_s * 1e3),
        fnum(naive_s / blocked_s),
    ]);
    report.row([
        format!("engine_batch{BATCH}"),
        fnum(looped_s * 1e3),
        fnum(batched_s * 1e3),
        fnum(looped_s / batched_s),
    ]);
    report.row([
        format!("fc6_float_bias_relu_epilogue_b{EPI_BATCH}"),
        fnum(f_unfused_s * 1e3),
        fnum(f_fused_s * 1e3),
        fnum(f_unfused_s / f_fused_s),
    ]);
    report.row([
        format!("fc7_quant_relu_epilogue_b{EPI_BATCH}"),
        fnum(q_unfused_s * 1e3),
        fnum(q_fused_s * 1e3),
        fnum(q_unfused_s / q_fused_s),
    ]);
    report.note(format!(
        "best-of-{REPS} wall clock, one warm-up call per pair"
    ));
    report.note(
        "epilogue rows: fused bias/ReLU applied at the 32-bit accumulator \
         inside the final-stage GEMM store vs engine-then-separate-pass; \
         bit-identity of the two paths is asserted before timing",
    );
    report.note(
        "blocked kernel dispatches at runtime to AVX-512/AVX/portable \
         instantiations of one generic body; all paths bit-match matmul_naive",
    );
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    report.save_json(&root).expect("write BENCH_kernels.json");
    println!("{report}");
}

criterion_group!(benches, bench);
criterion_main!(benches);
