//! Cycle-accurate simulator throughput on the paper's Table 4 workloads
//! (how fast the software model simulates one inference).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tie_sim::{TieAccelerator, TieConfig};
use tie_tensor::{init, Tensor};
use tie_tt::TtMatrix;
use tie_workloads::table4_benchmarks;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    for b in table4_benchmarks() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let ttm = TtMatrix::<f64>::random(&mut rng, &b.shape, 0.5).unwrap();
        let mut tie = TieAccelerator::new(TieConfig::default()).unwrap();
        let layer = tie.load_layer(ttm).unwrap();
        let x: Tensor<f64> = init::uniform(&mut rng, vec![b.shape.num_cols()], 1.0);
        group.bench_with_input(BenchmarkId::new("run", b.name), &(), |bch, ()| {
            bch.iter(|| tie.run(&layer, &x, false).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
