//! TT-SVD decomposition cost (offline model compilation).
//!
//! Criterion benches compare exact Jacobi against the method-dispatched
//! fast paths (Gram route, randomized sketch) on mid-scale unfoldings.
//! Besides the console output, `write_json` re-times the acceptance pairs
//! with a best-of-N wall clock and writes `BENCH_decompose.json` at the
//! repository root, including per-layer Table 4 compile times.
//!
//! The 4096×4096 Jacobi baseline alone takes on the order of an hour on
//! one core, so by default that row records the fully measured fast path
//! against a lower-bound baseline extrapolated from the measured 512→1024
//! Jacobi scaling (clearly labeled in the JSON); set `TIE_BENCH_PAPER=1`
//! to time the real 4096² Jacobi baseline instead.

use std::path::Path;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tie_bench::report::{fnum, Report};
use tie_tensor::linalg::{self, truncated_svd, truncated_svd_with, SvdMethod, Truncation};
use tie_tensor::{init, Tensor};
use tie_tt::{decompose::tt_svd, TtMatrix};
use tie_workloads::{
    compile_dense_layer, layer_weight_seed, synthetic_layer_weights, table4_benchmarks,
    CompileOptions, ErrorCheck,
};

const REPS: usize = 3;

/// Best-of-`reps` wall-clock seconds for `f` (one untimed warm-up call).
fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    std::hint::black_box(f());
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Planted rank-`r` matrix plus uniform noise — the spectrum every
/// compression-regime bench uses: `r` dominant directions, then a flat
/// noise tail whose mass is the optimal truncation error.
fn low_rank_plus_noise(
    rng: &mut ChaCha8Rng,
    m: usize,
    n: usize,
    r: usize,
    noise: f64,
) -> Tensor<f64> {
    let u: Tensor<f64> = init::uniform(rng, vec![m, r], 1.0);
    let v: Tensor<f64> = init::uniform(rng, vec![r, n], 1.0);
    let e: Tensor<f64> = init::uniform(rng, vec![m, n], noise);
    linalg::matmul(&u, &v).unwrap().add(&e).unwrap()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("tt_decompose");
    group.sample_size(10);
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    for dims in [vec![8usize, 8, 8], vec![4, 4, 4, 4, 4]] {
        let a: Tensor<f64> = init::uniform(&mut rng, dims.clone(), 1.0);
        group.bench_with_input(
            BenchmarkId::new("tt_svd_exact", format!("{dims:?}")),
            &(),
            |b, ()| b.iter(|| tt_svd(&a, Truncation::none()).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("tt_svd_rank4", format!("{dims:?}")),
            &(),
            |b, ()| b.iter(|| tt_svd(&a, Truncation::rank(4)).unwrap()),
        );
    }
    let w: Tensor<f64> = init::uniform(&mut rng, vec![64, 64], 1.0);
    group.bench_function("matrix_from_dense_64x64_r8", |b| {
        b.iter(|| TtMatrix::from_dense(&w, &[4, 4, 4], &[4, 4, 4], Truncation::rank(8)).unwrap())
    });

    // Method pair on a mid-scale thin unfolding (the FC-layer regime):
    // exact Jacobi vs the Auto dispatch (Gram route at this short side).
    let thin = low_rank_plus_noise(&mut rng, 128, 2048, 4, 1e-3);
    group.bench_function("unfold_128x2048_r4_jacobi", |b| {
        b.iter(|| truncated_svd(&thin, Truncation::rank(4)).unwrap())
    });
    group.bench_function("unfold_128x2048_r4_auto", |b| {
        b.iter(|| truncated_svd_with(&thin, Truncation::rank(4), SvdMethod::default()).unwrap())
    });
    group.finish();

    write_json();
}

/// One timed pair: Jacobi baseline vs the fast path on the same matrix,
/// returning `(jacobi_s, fast_s, fast_err, jacobi_err)`. The baseline is
/// timed once (a multi-second measurement needs no warm-up); the fast
/// path is best-of-`REPS`. The Jacobi reconstruction error doubles as
/// the optimal rank-`rank` truncation error.
fn time_pair(a: &Tensor<f64>, rank: usize, method: SvdMethod) -> (f64, f64, f64, f64) {
    let trunc = Truncation::rank(rank);
    let t = Instant::now();
    let exact = truncated_svd(a, trunc).unwrap();
    let jacobi_s = t.elapsed().as_secs_f64();
    let fast_s = best_of(REPS, || truncated_svd_with(a, trunc, method).unwrap());
    let fast = truncated_svd_with(a, trunc, method).unwrap();
    let err = fast.reconstruct().unwrap().sub(a).unwrap().frobenius_norm();
    let jerr = exact
        .reconstruct()
        .unwrap()
        .sub(a)
        .unwrap()
        .frobenius_norm();
    (jacobi_s, fast_s, err, jerr)
}

/// Records the acceptance pairs and the Table 4 compile times in
/// `BENCH_decompose.json` at the repository root.
fn write_json() {
    let mut rng = ChaCha8Rng::seed_from_u64(40);
    let mut report = Report::new(
        "BENCH_decompose",
        "Model compilation: truncated-SVD method pairs and Table 4 compile times",
        "not a paper figure — acceptance evidence for the compile-path perf PR \
         (randomized >= 5x Jacobi on a 4096x4096 rank-16 unfolding, error \
         within the optimal truncation bound)",
    );
    report.headers(["pair", "baseline_ms", "optimized_ms", "speedup"]);

    // Gram route on the thin short-side regime (FC unfolding shape).
    let thin = low_rank_plus_noise(&mut rng, 128, 8192, 4, 1e-3);
    let (j_s, f_s, err, jerr) = time_pair(&thin, 4, SvdMethod::default());
    report.row([
        "unfold_128x8192_r4_gram".to_string(),
        fnum(j_s * 1e3),
        fnum(f_s * 1e3),
        fnum(j_s / f_s),
    ]);
    report.note(format!(
        "128x8192 r4 Gram-route error {:.3e} vs Jacobi truncation {:.3e} (ratio {:.4})",
        err,
        jerr,
        err / jerr
    ));

    // Randomized sketch in the square rank-capped regime. Jacobi is fully
    // measured at 512 and 1024 (the largest sides where a one-core run
    // stays in the minutes); their timings also pin the Jacobi scaling
    // exponent used to bound the 4096 baseline below.
    let method = SvdMethod::default();
    let mut jacobi_scaling = Vec::new();
    for side in [512usize, 1024] {
        let a = low_rank_plus_noise(&mut rng, side, side, 16, 1e-3);
        let (j_s, f_s, err, jerr) = time_pair(&a, 16, method);
        jacobi_scaling.push(j_s);
        report.row([
            format!("unfold_{side}x{side}_r16_rsvd"),
            fnum(j_s * 1e3),
            fnum(f_s * 1e3),
            fnum(j_s / f_s),
        ]);
        report.note(format!(
            "{side}x{side} r16 randomized error {:.3e} vs Jacobi truncation {:.3e} (ratio {:.4})",
            err,
            jerr,
            err / jerr
        ));
    }

    // Paper scale: 4096x4096 rank-16. The fast path is always measured.
    // The Jacobi baseline takes on the order of an hour on one core, so
    // by default it is recorded as a lower bound extrapolated from the
    // measured 512->1024 scaling; TIE_BENCH_PAPER=1 measures it for real.
    let big = low_rank_plus_noise(&mut rng, 4096, 4096, 16, 1e-3);
    let trunc = Truncation::rank(16);
    let f_s = best_of(REPS, || truncated_svd_with(&big, trunc, method).unwrap());
    let fast = truncated_svd_with(&big, trunc, method).unwrap();
    let err = fast
        .reconstruct()
        .unwrap()
        .sub(&big)
        .unwrap()
        .frobenius_norm();
    let rel = err / big.frobenius_norm();
    if std::env::var("TIE_BENCH_PAPER").as_deref() == Ok("1") {
        let t = Instant::now();
        let exact = truncated_svd(&big, trunc).unwrap();
        let j_s = t.elapsed().as_secs_f64();
        let jerr = exact
            .reconstruct()
            .unwrap()
            .sub(&big)
            .unwrap()
            .frobenius_norm();
        report.row([
            "unfold_4096x4096_r16_rsvd".to_string(),
            fnum(j_s * 1e3),
            fnum(f_s * 1e3),
            fnum(j_s / f_s),
        ]);
        report.note(format!(
            "4096x4096 r16 randomized error {:.3e} vs Jacobi truncation {:.3e} (ratio {:.4})",
            err,
            jerr,
            err / jerr
        ));
    } else {
        let exponent = (jacobi_scaling[1] / jacobi_scaling[0]).log2();
        let j_est = jacobi_scaling[1] * 4.0f64.powf(exponent);
        report.row([
            "unfold_4096x4096_r16_rsvd".to_string(),
            format!("{} (extrapolated)", fnum(j_est * 1e3)),
            fnum(f_s * 1e3),
            format!(">= {}", fnum(j_est / f_s)),
        ]);
        report.note(format!(
            "4096x4096 Jacobi baseline extrapolated from the measured 512->1024 \
             scaling (exponent {exponent:.2}); per-sweep cost grows ~n^3 and cache \
             behaviour worsens with n, so the true baseline and speedup are higher. \
             Set TIE_BENCH_PAPER=1 to measure it (~1 h on one core). Randomized \
             relative error {rel:.3e} on the planted rank-16-plus-noise input."
        ));
    }

    // Table 4 compile times (one run each; Auto method, sampled error).
    let opts = CompileOptions {
        method: SvdMethod::default(),
        error_check: ErrorCheck::Skip,
    };
    for bench in table4_benchmarks().iter() {
        let w = synthetic_layer_weights(&bench.shape, 1e-4, layer_weight_seed(bench.name)).unwrap();
        let compiled =
            compile_dense_layer(bench.name, &w, &bench.shape, Some(bench.paper_cr), &opts).unwrap();
        report.row([
            format!("compile_{}", bench.name),
            "-".to_string(),
            fnum(compiled.report.seconds * 1e3),
            "-".to_string(),
        ]);
    }
    report.note(
        "compile_* rows time TtMatrix::from_dense + CompactEngine::new on \
         synthetic planted-rank Table 4 weights (single run, no baseline)",
    );
    report.note(format!(
        "svd pairs: best-of-{REPS} wall clock, one warm-up call"
    ));

    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    report.save_json(&root).expect("write BENCH_decompose.json");
    println!("{report}");
}

criterion_group!(benches, bench);
criterion_main!(benches);
