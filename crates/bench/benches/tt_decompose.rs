//! TT-SVD decomposition cost (offline model preparation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tie_tensor::linalg::Truncation;
use tie_tensor::{init, Tensor};
use tie_tt::{decompose::tt_svd, TtMatrix};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("tt_decompose");
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    for dims in [vec![8usize, 8, 8], vec![4, 4, 4, 4, 4]] {
        let a: Tensor<f64> = init::uniform(&mut rng, dims.clone(), 1.0);
        group.bench_with_input(
            BenchmarkId::new("tt_svd_exact", format!("{dims:?}")),
            &(),
            |b, ()| b.iter(|| tt_svd(&a, Truncation::none()).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("tt_svd_rank4", format!("{dims:?}")),
            &(),
            |b, ()| b.iter(|| tt_svd(&a, Truncation::rank(4)).unwrap()),
        );
    }
    let w: Tensor<f64> = init::uniform(&mut rng, vec![64, 64], 1.0);
    group.bench_function("matrix_from_dense_64x64_r8", |b| {
        b.iter(|| TtMatrix::from_dense(&w, &[4, 4, 4], &[4, 4, 4], Truncation::rank(8)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
