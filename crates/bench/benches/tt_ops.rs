//! TT-algebra kernels (the extension module): add, Hadamard, dot,
//! rounding.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tie_tensor::linalg::Truncation;
use tie_tt::arithmetic::{tt_add, tt_dot, tt_hadamard};
use tie_tt::TtTensor;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("tt_ops");
    let mut rng = ChaCha8Rng::seed_from_u64(8);
    let modes = [8usize, 8, 8, 8];
    let ranks = [1usize, 6, 6, 6, 1];
    let a = TtTensor::<f64>::random(&mut rng, &modes, &ranks, 1.0).unwrap();
    let b = TtTensor::<f64>::random(&mut rng, &modes, &ranks, 1.0).unwrap();
    group.bench_function("tt_add_8x8x8x8_r6", |bch| {
        bch.iter(|| tt_add(&a, &b).unwrap())
    });
    group.bench_function("tt_hadamard_8x8x8x8_r6", |bch| {
        bch.iter(|| tt_hadamard(&a, &b).unwrap())
    });
    group.bench_function("tt_dot_8x8x8x8_r6", |bch| {
        bch.iter(|| tt_dot(&a, &b).unwrap())
    });
    let fat = tt_add(&a, &b).unwrap();
    group.bench_function("tt_round_r12_to_tol", |bch| {
        bch.iter(|| fat.rounded(Truncation::tolerance(1e-8)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
