//! Pipeline-parallel layer throughput (pipelining PR acceptance
//! evidence).
//!
//! Batch-16 forward passes through the two VGG fully-connected layers of
//! Table 4, sequential vs pipelined at cut depths 1, 2 and 4 (micro-batch
//! 1, so every sample streams as its own chunk). Bit-identity against the
//! sequential engine is asserted **before** any timing — the speedup
//! column is only meaningful because the numerics are provably unchanged.
//!
//! Writes `BENCH_pipeline.json` at the repository root.

use std::path::Path;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use tie_bench::report::{fnum, Report};
use tie_core::pipeline::PipelineConfig;
use tie_core::CompactEngine;
use tie_sim::PipelinedEngine;
use tie_tt::TtMatrix;
use tie_workloads::table4_benchmarks;

const BATCH: usize = 16;
const DEPTHS: [usize; 3] = [1, 2, 4];
const ITERS: u32 = 30;

struct Layer {
    name: &'static str,
    engine: CompactEngine<f64>,
    xs: Vec<f64>,
    rows: usize,
}

/// The two VGG FC layers of Table 4, with a fixed batch-16 input block.
fn build_layers() -> Vec<Layer> {
    table4_benchmarks()
        .iter()
        .filter(|b| b.name.starts_with("VGG"))
        .enumerate()
        .map(|(i, b)| {
            let mut rng = ChaCha8Rng::seed_from_u64(7100 + i as u64);
            let engine =
                CompactEngine::new(TtMatrix::random(&mut rng, &b.shape, 0.5).unwrap()).unwrap();
            let n = b.shape.num_cols();
            let xs: Vec<f64> = (0..n * BATCH).map(|_| rng.gen_range(-1.0..1.0)).collect();
            Layer {
                name: b.name,
                engine,
                xs,
                rows: b.shape.num_rows(),
            }
        })
        .collect()
}

fn sequential_secs_per_pass(layer: &Layer, ys: &mut [f64]) -> f64 {
    layer
        .engine
        .matvec_batch_into(&layer.xs, BATCH, ys)
        .unwrap(); // warm-up
    let started = Instant::now();
    for _ in 0..ITERS {
        layer
            .engine
            .matvec_batch_into(&layer.xs, BATCH, ys)
            .unwrap();
    }
    started.elapsed().as_secs_f64() / f64::from(ITERS)
}

/// Asserts bit-identity against `want`, then returns `(secs_per_pass,
/// handoffs, send_stalls, recv_stalls)` of the last timed run.
fn pipelined_secs_per_pass(
    layer: &Layer,
    pipe: &PipelinedEngine,
    want: &[f64],
    ys: &mut [f64],
) -> (f64, u64, u64, u64) {
    let rep = pipe.matvec_batch_into(&layer.xs, BATCH, ys).unwrap(); // warm-up + check
    for (i, (g, w)) in ys.iter().zip(want).enumerate() {
        assert!(
            g.to_bits() == w.to_bits(),
            "{} depth {}: element {i} diverged from sequential",
            layer.name,
            pipe.depth()
        );
    }
    let mut last = rep.run;
    let started = Instant::now();
    for _ in 0..ITERS {
        last = pipe.matvec_batch_into(&layer.xs, BATCH, ys).unwrap().run;
    }
    let secs = started.elapsed().as_secs_f64() / f64::from(ITERS);
    (secs, last.handoffs, last.send_stalls, last.recv_stalls)
}

fn bench(c: &mut Criterion) {
    let layers = build_layers();
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    for layer in &layers {
        let mut ys = vec![0.0f64; layer.rows * BATCH];
        group.bench_function(BenchmarkId::new("sequential", layer.name), |bch| {
            bch.iter(|| {
                layer
                    .engine
                    .matvec_batch_into(&layer.xs, BATCH, &mut ys)
                    .unwrap()
            });
        });
        for &depth in &DEPTHS {
            let pipe = PipelinedEngine::float(
                &layer.engine,
                PipelineConfig {
                    depth,
                    micro_batch: 1,
                },
            )
            .unwrap();
            group.bench_function(
                BenchmarkId::new(format!("depth{depth}"), layer.name),
                |bch| {
                    bch.iter(|| pipe.matvec_batch_into(&layer.xs, BATCH, &mut ys).unwrap());
                },
            );
        }
    }
    group.finish();

    write_json(&layers);
}

fn write_json(layers: &[Layer]) {
    let mut report = Report::new(
        "BENCH_pipeline",
        "Pipelined vs sequential batch-16 layer throughput (VGG FC6/FC7)",
        "not a paper figure — acceptance evidence for the pipelining PR \
         (bit-identity is asserted before every timed configuration)",
    );
    report.headers([
        "layer",
        "config",
        "samples_per_s",
        "speedup_vs_sequential",
        "handoffs_per_pass",
        "send_stalls",
        "recv_stalls",
    ]);

    // Two pool regimes: the default shared GEMM pool (pipelining on top of
    // intra-stage parallelism, competing for the same cores), and the pool
    // pinned to one thread (stage GEMMs serial, so the depth rows isolate
    // the pure inter-stage overlap the pipeline adds).
    for (suffix, pool) in [("", None), ("-pool1", Some(1))] {
        let prev = pool.map(tie_tensor::parallel::set_num_threads);
        for layer in layers {
            let mut want = vec![0.0f64; layer.rows * BATCH];
            let base = sequential_secs_per_pass(layer, &mut want);
            report.row([
                layer.name.into(),
                format!("sequential{suffix}"),
                fnum(BATCH as f64 / base),
                fnum(1.0),
                fnum(0.0),
                fnum(0.0),
                fnum(0.0),
            ]);
            let mut ys = vec![0.0f64; layer.rows * BATCH];
            for &depth in &DEPTHS {
                let pipe = PipelinedEngine::float(
                    &layer.engine,
                    PipelineConfig {
                        depth,
                        micro_batch: 1,
                    },
                )
                .unwrap();
                let (secs, handoffs, send, recv) =
                    pipelined_secs_per_pass(layer, &pipe, &want, &mut ys);
                report.row([
                    layer.name.into(),
                    format!("pipelined-d{depth}{suffix}"),
                    fnum(BATCH as f64 / secs),
                    fnum(base / secs),
                    fnum(handoffs as f64),
                    fnum(send as f64),
                    fnum(recv as f64),
                ]);
            }
        }
        if let Some(prev) = prev {
            tie_tensor::parallel::set_num_threads(prev);
        }
    }
    report.note(format!(
        "batch {BATCH}, micro-batch 1 (one chunk per sample), {ITERS} timed passes per row; \
         cut points from the MAC/SRAM-balancing planner (see golden_pipeline_cuts.json)"
    ));
    report.note(
        "depth 1 isolates executor overhead (same choreography, no worker threads); in the \
         default rows stage GEMMs inside each segment still parallelize on the shared pool, \
         so pipelining competes for the same cores — the -pool1 rows pin the pool to one \
         thread and isolate the pure inter-stage overlap (speedup there is the pipeline's)",
    );
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    report.save_json(&root).expect("write BENCH_pipeline.json");
    println!("{report}");
}

criterion_group!(benches, bench);
criterion_main!(benches);
