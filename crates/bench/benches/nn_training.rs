//! Training-step cost of dense vs TT layers (the §2.2 "train from
//! scratch" path).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tie_nn::{Dense, Layer, Trainable, TtDense};
use tie_tensor::{init, Tensor};
use tie_tt::TtShape;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("nn_training");
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let xs: Tensor<f32> = init::uniform(&mut rng, vec![16, 256], 1.0);
    let gout: Tensor<f32> = init::uniform(&mut rng, vec![16, 256], 0.1);

    let mut dense = Dense::new(&mut rng, 256, 256);
    group.bench_function("dense_256_fwd_bwd", |b| {
        b.iter(|| {
            dense.forward(&xs).unwrap();
            dense.zero_grads();
            dense.backward(&gout).unwrap()
        })
    });

    let shape = TtShape::uniform_rank(vec![4; 4], vec![4; 4], 4).unwrap();
    let mut tt = TtDense::new(&mut rng, &shape);
    group.bench_function("tt_dense_256_r4_fwd_bwd", |b| {
        b.iter(|| {
            tt.forward(&xs).unwrap();
            tt.zero_grads();
            tt.backward(&gout).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
