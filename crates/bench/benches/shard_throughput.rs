//! Sharded-serving throughput benchmark (sharding PR acceptance
//! evidence).
//!
//! A fixed offered load (8 client threads pipelining nonce-keyed
//! requests over a 16-layer registry) is driven through four topologies:
//! one plain `InferenceService` (no router), and a `ShardedService` at
//! 1, 2 and 4 shards (one replica each, one worker per replica). Every
//! topology sees the identical request stream, so the sweep isolates
//! what the shard router costs at S = 1 (hash + round-robin + retry
//! bookkeeping on top of the same single service) and what independent
//! per-shard queues/batchers buy as S grows.
//!
//! Writes `BENCH_shard.json` at the repository root.

use std::path::Path;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use tie_bench::report::{fnum, Report};
use tie_core::CompactEngine;
use tie_serve::{
    EngineRegistry, InferenceService, ServeConfig, ServiceStats, ShardConfig, ShardedService,
};
use tie_tt::{TtMatrix, TtShape};

const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 192;
const PIPELINE_DEPTH: usize = 32;
const LAYERS: usize = 16;
const SHARD_SWEEP: [usize; 3] = [1, 2, 4];

/// 16 mid-size layers (64 → 512, d = 3, r = 4): heavy enough that the
/// stage GEMMs dominate the router, small enough for a quick sweep.
fn build_layers() -> Vec<(String, std::sync::Arc<CompactEngine<f64>>)> {
    (0..LAYERS)
        .map(|i| {
            let mut rng = ChaCha8Rng::seed_from_u64(4200 + i as u64);
            let shape = TtShape::uniform_rank(vec![4, 4, 4], vec![8, 8, 8], 4).unwrap();
            let engine = CompactEngine::new(TtMatrix::random(&mut rng, &shape, 0.5).unwrap());
            (format!("layer{i}"), std::sync::Arc::new(engine.unwrap()))
        })
        .collect()
}

fn registry_of(layers: &[(String, std::sync::Arc<CompactEngine<f64>>)]) -> EngineRegistry {
    let mut registry = EngineRegistry::new();
    for (name, engine) in layers {
        registry.insert_shared(name.clone(), std::sync::Arc::clone(engine));
    }
    registry
}

fn input_for(nonce: u64, n: usize) -> Vec<f64> {
    let mut rng = ChaCha8Rng::seed_from_u64(0x5EED ^ nonce.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

fn replica_config() -> ServeConfig {
    ServeConfig {
        max_batch: 16,
        max_wait: Duration::from_micros(200),
        queue_capacity: 1024,
        workers: 1,
    }
}

/// Drives the fixed load through `submit`; the closure abstracts over
/// the plain `Client` and the `ShardedClient`.
fn drive<C, F>(
    make_client: C,
    layers: &[(String, std::sync::Arc<CompactEngine<f64>>)],
    per_client: usize,
) -> f64
where
    C: Fn() -> F,
    F: FnMut(&str, Vec<f64>) -> tie_serve::Ticket + Send + 'static,
{
    let started = Instant::now();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|t| {
            let mut submit = make_client();
            let names: Vec<String> = layers.iter().map(|(n, _)| n.clone()).collect();
            let cols: Vec<usize> = layers
                .iter()
                .map(|(_, e)| e.matrix().shape().num_cols())
                .collect();
            std::thread::spawn(move || {
                let mut in_flight = std::collections::VecDeque::new();
                for i in 0..per_client {
                    let nonce = (t * per_client + i) as u64;
                    let li = nonce as usize % names.len();
                    in_flight.push_back(submit(&names[li], input_for(nonce, cols[li])));
                    if in_flight.len() >= PIPELINE_DEPTH {
                        in_flight.pop_front().unwrap().wait().unwrap();
                    }
                }
                for ticket in in_flight {
                    ticket.wait().unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    started.elapsed().as_secs_f64()
}

fn run_single(
    layers: &[(String, std::sync::Arc<CompactEngine<f64>>)],
    per_client: usize,
) -> (ServiceStats, f64) {
    let service = InferenceService::start(registry_of(layers), replica_config()).unwrap();
    let elapsed = drive(
        || {
            let client = service.client();
            move |name: &str, x: Vec<f64>| client.submit(name, x).unwrap()
        },
        layers,
        per_client,
    );
    (service.shutdown(), elapsed)
}

fn run_sharded(
    layers: &[(String, std::sync::Arc<CompactEngine<f64>>)],
    shards: usize,
    per_client: usize,
) -> (ServiceStats, f64) {
    let config = ShardConfig {
        shards,
        replicas: 1,
        replica: replica_config(),
        ..ShardConfig::default()
    };
    let service = ShardedService::start(registry_of(layers), config).unwrap();
    let elapsed = drive(
        || {
            let client = service.client();
            move |name: &str, x: Vec<f64>| client.submit(name, x).unwrap()
        },
        layers,
        per_client,
    );
    (service.shutdown().global(), elapsed)
}

fn bench(c: &mut Criterion) {
    let layers = build_layers();
    let mut group = c.benchmark_group("shard");
    group.sample_size(10);
    group.bench_function("single_service", |bch| {
        bch.iter(|| run_single(&layers, 24));
    });
    for &shards in &SHARD_SWEEP {
        group.bench_with_input(BenchmarkId::new("sharded", shards), &shards, |bch, &s| {
            bch.iter(|| run_sharded(&layers, s, 24));
        });
    }
    group.finish();

    write_json(&layers);
}

fn write_json(layers: &[(String, std::sync::Arc<CompactEngine<f64>>)]) {
    let total = (CLIENTS * REQUESTS_PER_CLIENT) as f64;
    let mut report = Report::new(
        "BENCH_shard",
        "Sharded vs single-service throughput at fixed offered load (16 layers)",
        "not a paper figure — acceptance evidence for the sharding PR \
         (the router must cost little at S=1 and scale with independent shards)",
    );
    report.headers([
        "topology",
        "req_per_s",
        "mean_occupancy",
        "mean_latency_us",
        "speedup_vs_single",
    ]);

    let (stats, elapsed) = run_single(layers, REQUESTS_PER_CLIENT);
    assert_eq!(stats.completed, total as u64);
    assert_eq!(stats.failed, 0);
    let base_rps = total / elapsed;
    report.row([
        "single-service".into(),
        fnum(base_rps),
        fnum(stats.mean_occupancy()),
        fnum(stats.mean_latency().as_secs_f64() * 1e6),
        fnum(1.0),
    ]);

    for &shards in &SHARD_SWEEP {
        let (stats, elapsed) = run_sharded(layers, shards, REQUESTS_PER_CLIENT);
        assert_eq!(stats.completed, total as u64, "all requests must complete");
        assert_eq!(stats.failed, 0);
        let rps = total / elapsed;
        report.row([
            format!("{shards}-shard"),
            fnum(rps),
            fnum(stats.mean_occupancy()),
            fnum(stats.mean_latency().as_secs_f64() * 1e6),
            fnum(rps / base_rps),
        ]);
    }
    report.note(format!(
        "{CLIENTS} client threads x {REQUESTS_PER_CLIENT} requests over {LAYERS} layers \
         (64->512, d=3, r=4), pipeline depth {PIPELINE_DEPTH}; one replica and one worker \
         per shard, max_batch 16, max_wait 200us"
    ));
    report.note(
        "each shard owns an independent queue + batcher + worker, so shard count scales \
         worker parallelism too — the S=1 row isolates pure router overhead vs the \
         no-router single service",
    );
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    report.save_json(&root).expect("write BENCH_shard.json");
    println!("{report}");
}

criterion_group!(benches, bench);
criterion_main!(benches);
