//! Software speedup of the compact inference scheme (Algorithm 1) over
//! the naive Eqn. (2) scheme — the §3.1 claim, as wall-clock.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tie_core::CompactEngine;
use tie_tensor::{init, Tensor};
use tie_tt::{inference::naive_matvec, TtMatrix, TtShape};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("compact_vs_naive");
    // The naive scheme is O(M N Σ r r'): keep sizes small enough to time.
    for (name, m, n, r) in [
        ("16x16_r2", vec![4usize, 4], vec![4usize, 4], 2usize),
        ("64x64_r4", vec![4, 4, 4], vec![4, 4, 4], 4),
        ("256x240_r4", vec![4, 4, 4, 4], vec![4, 4, 15], 4),
    ] {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut ranks = vec![r; m.len().max(n.len()) + 1];
        ranks[0] = 1;
        let d = m.len().min(n.len());
        let (m, n) = (m[..d].to_vec(), n[..d].to_vec());
        let shape = TtShape::uniform_rank(m, n, r).unwrap();
        let ttm = TtMatrix::<f64>::random(&mut rng, &shape, 0.5).unwrap();
        let x: Tensor<f64> = init::uniform(&mut rng, vec![shape.num_cols()], 1.0);
        let engine = CompactEngine::new(ttm.clone()).unwrap();
        let _ = ranks;
        group.bench_with_input(BenchmarkId::new("compact", name), &(), |b, ()| {
            b.iter(|| engine.matvec(&x).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("naive_eqn2", name), &(), |b, ()| {
            b.iter(|| naive_matvec(&ttm, &x).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
