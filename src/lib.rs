//! # tie — a from-scratch Rust reproduction of TIE (ISCA '19)
//!
//! *TIE: Energy-efficient Tensor Train-based Inference Engine for Deep
//! Neural Network*, Deng, Sun, Qian, Lin, Wang & Yuan, ISCA 2019.
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`tensor`] | `tie-tensor` | dense tensors, matmul, QR, Jacobi SVD |
//! | [`tt`] | `tie-tt` | TT-SVD, TT tensors/matrices, naive Eqn. (2) inference, tensor-ring |
//! | [`core`] | `tie-core` | **the paper's compact inference scheme** (Algorithm 1), transforms, op counting |
//! | [`quant`] | `tie-quant` | 16-bit fixed point with 24-bit saturating accumulators |
//! | [`nn`] | `tie-nn` | trainable dense/conv/recurrent layers, TT layers with exact backprop |
//! | [`sim`] | `tie-sim` | cycle-accurate, bit-accurate TIE accelerator simulator |
//! | [`energy`] | `tie-energy` | Table 6-calibrated area/power model, node projection |
//! | [`baselines`] | `tie-baselines` | EIE, CirCNN (with from-scratch FFT), Eyeriss models |
//! | [`workloads`] | `tie-workloads` | Table 4 benchmarks, VGG CONV workloads, sweeps |
//! | [`serve`] | `tie-serve` | dynamic-batching multi-threaded inference service |
//!
//! # Quickstart
//!
//! ```
//! use tie::prelude::*;
//!
//! # fn main() -> Result<(), tie::TensorError> {
//! // 1. A weight matrix, TT-decomposed at full rank (lossless here).
//! let w = Tensor::<f64>::from_fn(vec![8, 12], |i| ((i[0] * 13 + i[1] * 7) % 10) as f64 * 0.1)?;
//! let ttm = TtMatrix::from_dense(&w, &[2, 4], &[3, 4], Truncation::none())?;
//!
//! // 2. The compact inference scheme (the paper's contribution).
//! let engine = CompactEngine::new(ttm.clone())?;
//! // Normalized activations: the accelerator's one-shot fixed-point
//! // calibration (see `tie::sim::CalibrationMode`) probes at unit
//! // amplitude by default.
//! let x = Tensor::<f64>::from_fn(vec![12], |i| i[0] as f64 / 11.0)?;
//! let (y, ops) = engine.matvec(&x)?;
//! assert!(y.approx_eq(&tie::tensor::linalg::matvec(&w, &x)?, 1e-9));
//!
//! // 3. The same layer on the cycle-accurate TIE accelerator.
//! let mut tie = TieAccelerator::new(TieConfig::default())?;
//! let layer = tie.load_layer(ttm)?;
//! let (y_hw, stats) = tie.run(&layer, &x, false)?;
//! assert!(y_hw.approx_eq(&y, 1e-2));
//! assert_eq!(stats.macs(), ops.mults);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use tie_baselines as baselines;
pub use tie_core as core;
pub use tie_energy as energy;
pub use tie_nn as nn;
pub use tie_quant as quant;
pub use tie_serve as serve;
pub use tie_sim as sim;
pub use tie_tensor as tensor;
pub use tie_tt as tt;
pub use tie_workloads as workloads;

pub use tie_tensor::{Result, TensorError};

/// The most common imports in one place.
pub mod prelude {
    pub use tie_core::{CompactEngine, InferencePlan};
    pub use tie_energy::{Metrics, TieAreaPowerModel};
    pub use tie_quant::{QFormat, QTensor};
    pub use tie_serve::{
        EngineRegistry, HashRing, InferenceService, ServeConfig, ShardConfig, ShardedService,
    };
    pub use tie_sim::{TieAccelerator, TieConfig};
    pub use tie_tensor::linalg::Truncation;
    pub use tie_tensor::{Scalar, Shape, Tensor};
    pub use tie_tt::{TtMatrix, TtShape, TtTensor};
}
