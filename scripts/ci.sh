#!/usr/bin/env bash
# Tier-1 gate for the TIE reproduction, run at two thread settings.
#
# The dense kernels are bit-identical at any thread count (see DESIGN.md
# §8), so the whole suite must pass both serial (TIE_THREADS=1) and at
# the default thread count. Usage: scripts/ci.sh [--offline]
set -euo pipefail
cd "$(dirname "$0")/.."

CARGO_FLAGS=()
if [[ "${1:-}" == "--offline" ]]; then
  CARGO_FLAGS+=(--offline)
fi

echo "== tier-1: release build =="
cargo build --release --workspace "${CARGO_FLAGS[@]}"

echo "== tier-1: tests, TIE_THREADS=1 (serial) =="
TIE_THREADS=1 cargo test -q --workspace "${CARGO_FLAGS[@]}"

echo "== tier-1: tests, default thread count =="
cargo test -q --workspace "${CARGO_FLAGS[@]}"

# The verification suites (PR 2) also run above as part of the workspace
# sweep; this stanza re-runs them by name with a pinned stress seed so a
# test-filter regression can't silently skip them, and so a failure here
# is reproducible from the logged seed.
TIE_STRESS_SEED="${TIE_STRESS_SEED:-3735928559}"
export TIE_STRESS_SEED
echo "== tier-2: verification suites (TIE_STRESS_SEED=${TIE_STRESS_SEED}) =="
for suite in differential golden properties serve_stress; do
  echo "-- ${suite}, TIE_THREADS=1 --"
  TIE_THREADS=1 cargo test -q --test "${suite}" "${CARGO_FLAGS[@]}"
  echo "-- ${suite}, default thread count --"
  cargo test -q --test "${suite}" "${CARGO_FLAGS[@]}"
done

echo "ci.sh: all green"
