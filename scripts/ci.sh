#!/usr/bin/env bash
# Tier-1 gate for the TIE reproduction, run at two thread settings.
#
# The dense kernels are bit-identical at any thread count (see DESIGN.md
# §8), so the whole suite must pass both serial (TIE_THREADS=1) and at
# the default thread count. Usage: scripts/ci.sh [--offline]
set -euo pipefail
cd "$(dirname "$0")/.."

CARGO_FLAGS=()
if [[ "${1:-}" == "--offline" ]]; then
  CARGO_FLAGS+=(--offline)
fi

echo "== tier-1: release build =="
cargo build --release --workspace "${CARGO_FLAGS[@]}"

echo "== tier-1: tests, TIE_THREADS=1 (serial) =="
TIE_THREADS=1 cargo test -q --workspace "${CARGO_FLAGS[@]}"

echo "== tier-1: tests, default thread count =="
cargo test -q --workspace "${CARGO_FLAGS[@]}"

echo "ci.sh: all green"
