#!/usr/bin/env bash
# Tier-1 gate for the TIE reproduction, run at two thread settings.
#
# The dense kernels are bit-identical at any thread count (see DESIGN.md
# §8), so the whole suite must pass both serial (TIE_THREADS=1) and at
# the default thread count. Usage: scripts/ci.sh [--offline]
set -euo pipefail
cd "$(dirname "$0")/.."

CARGO_FLAGS=()
if [[ "${1:-}" == "--offline" ]]; then
  CARGO_FLAGS+=(--offline)
fi

echo "== tier-1: rustfmt check =="
cargo fmt --check

echo "== tier-1: release build =="
cargo build --release --workspace "${CARGO_FLAGS[@]}"

echo "== tier-1: clippy, -D warnings =="
cargo clippy --workspace --all-targets "${CARGO_FLAGS[@]}" -- -D warnings

echo "== tier-1: tests, TIE_THREADS=1 (serial) =="
TIE_THREADS=1 cargo test -q --workspace "${CARGO_FLAGS[@]}"

echo "== tier-1: tests, default thread count =="
cargo test -q --workspace "${CARGO_FLAGS[@]}"

# The verification suites (PR 2) also run above as part of the workspace
# sweep; this stanza re-runs them by name with a pinned stress seed so a
# test-filter regression can't silently skip them, and so a failure here
# is reproducible from the logged seed.
TIE_STRESS_SEED="${TIE_STRESS_SEED:-3735928559}"
export TIE_STRESS_SEED
echo "== tier-2: verification suites (TIE_STRESS_SEED=${TIE_STRESS_SEED}) =="
for suite in differential epilogue_differential pipeline_differential golden properties serve_stress quant_kernels zero_alloc indexmap_fused shard_stress shard_chaos autotune_plans; do
  echo "-- ${suite}, TIE_THREADS=1 --"
  TIE_THREADS=1 cargo test -q --test "${suite}" "${CARGO_FLAGS[@]}"
  echo "-- ${suite}, default thread count --"
  cargo test -q --test "${suite}" "${CARGO_FLAGS[@]}"
done

# Compile-path acceptance (PR 3, DESIGN.md §10.5): VGG-FC6 at paper scale
# must compile into a registered engine within the wall-clock budget and
# reproduce the Table 4 compression ratio. Needs --release — the budget is
# real time — and runs at both thread settings like everything else.
TIE_COMPILE_BUDGET_S="${TIE_COMPILE_BUDGET_S:-9}"
export TIE_COMPILE_BUDGET_S
echo "== tier-2: paper-scale FC6 compile (budget ${TIE_COMPILE_BUDGET_S}s), TIE_THREADS=1 =="
TIE_THREADS=1 cargo test -q --release -p tie-workloads --test compile_table4 \
  "${CARGO_FLAGS[@]}" fc6_compiles_at_paper_scale_within_budget -- --ignored
echo "== tier-2: paper-scale FC6 compile (budget ${TIE_COMPILE_BUDGET_S}s), default thread count =="
cargo test -q --release -p tie-workloads --test compile_table4 \
  "${CARGO_FLAGS[@]}" fc6_compiles_at_paper_scale_within_budget -- --ignored

# Quantized fast-path gate (quantized-path PR, DESIGN.md §12): a VGG-FC7
# batch-16 simulated run must finish inside the wall-clock budget — the
# one-shot-calibrated batched stage-GEMM path must never regress toward
# the per-sample MAC-walk cost. Needs --release; both thread settings,
# since the GEMM rides the pool.
TIE_QUANT_BUDGET_S="${TIE_QUANT_BUDGET_S:-5}"
export TIE_QUANT_BUDGET_S
echo "== tier-2: FC7 quantized batch budget (${TIE_QUANT_BUDGET_S}s), TIE_THREADS=1 =="
TIE_THREADS=1 cargo test -q --release --test quant_kernels \
  "${CARGO_FLAGS[@]}" fc7_quantized_batch_runs_within_budget -- --ignored
echo "== tier-2: FC7 quantized batch budget (${TIE_QUANT_BUDGET_S}s), default thread count =="
cargo test -q --release --test quant_kernels \
  "${CARGO_FLAGS[@]}" fc7_quantized_batch_runs_within_budget -- --ignored

# Fused-Transform gate (fused-transform PR, DESIGN.md §13): fused FC7
# batch-16 on the float compact engine must finish inside the wall-clock
# budget — the write-epilogue fusion must never regress toward the
# two-pass (GEMM + permutation copy) cost. Needs --release; both thread
# settings, since the mapped GEMM rides the pool.
TIE_TRANSFORM_BUDGET_S="${TIE_TRANSFORM_BUDGET_S:-2}"
export TIE_TRANSFORM_BUDGET_S
echo "== tier-2: fused FC7 batch budget (${TIE_TRANSFORM_BUDGET_S}s), TIE_THREADS=1 =="
TIE_THREADS=1 cargo test -q --release --test indexmap_fused \
  "${CARGO_FLAGS[@]}" fused_fc7_batch16_meets_wall_clock_budget -- --ignored
echo "== tier-2: fused FC7 batch budget (${TIE_TRANSFORM_BUDGET_S}s), default thread count =="
cargo test -q --release --test indexmap_fused \
  "${CARGO_FLAGS[@]}" fused_fc7_batch16_meets_wall_clock_budget -- --ignored

# Autotuner determinism + budget gate (autotune PR, DESIGN.md §17): the
# pinned LSTM-UCF11/LSTM-Youtube searches must reproduce the committed
# golden tuned-plan fixtures byte-for-byte at both thread settings (the
# same-seed ⇒ same-plan contract; the pool-{1,2,8} sweep on a small layer
# also runs un-ignored in the autotune_plans suite above), and each layer's
# search must finish inside the wall-clock budget. Needs --release — the
# searches TT-SVD-compile paper-scale LSTM weights.
TIE_AUTOTUNE_BUDGET_S="${TIE_AUTOTUNE_BUDGET_S:-30}"
export TIE_AUTOTUNE_BUDGET_S
echo "== tier-2: autotuner fixture reproduction (budget ${TIE_AUTOTUNE_BUDGET_S}s/layer), TIE_THREADS=1 =="
TIE_THREADS=1 cargo test -q --release --test autotune_plans \
  "${CARGO_FLAGS[@]}" tuned_plan_search_reproduces_the_fixtures -- --ignored
echo "== tier-2: autotuner fixture reproduction (budget ${TIE_AUTOTUNE_BUDGET_S}s/layer), default thread count =="
cargo test -q --release --test autotune_plans \
  "${CARGO_FLAGS[@]}" tuned_plan_search_reproduces_the_fixtures -- --ignored

# Pool dispatch regression gate (pool PR, DESIGN.md §11): the persistent
# pool must not be slower than the old per-call scoped-spawn path on a
# dispatch-sensitive GEMM (bit-identity of the two paths is asserted inside
# the test before any timing). Needs --release — it is a wall-clock gate.
echo "== tier-2: pooled vs scoped GEMM dispatch gate =="
cargo test -q --release --test pool_perf "${CARGO_FLAGS[@]}" -- --ignored

echo "ci.sh: all green"
